"""Figure 11: latency under homogeneous uniform traffic."""

from repro.experiments.figures import figure11
from repro.stats import detect_saturation_point

RATES = [0.05, 0.1, 0.2, 0.3, 0.45, 0.7]


def test_fig11_uniform_latency(run_once, bench_settings):
    figure = run_once(
        figure11,
        settings=bench_settings,
        node_counts=(16, 24),
        rates=RATES,
    )
    knees = {
        label: detect_saturation_point(RATES, values)
        for label, values in figure.series.items()
    }

    # Paper: "Ring topology saturates first".
    for ring, spider, mesh in (
        ("ring16", "spidergon16", "mesh4x4"),
        ("ring24", "spidergon24", "mesh4x6"),
    ):
        assert knees[ring] is not None
        for other in (spider, mesh):
            assert knees[other] is None or knees[other] >= knees[ring]

    # Paper: "the latency generally increases early when the number
    # of system nodes increases".
    if knees["ring24"] is not None and knees["ring16"] is not None:
        assert knees["ring24"] <= knees["ring16"]

    # Latency rises sharply past saturation for the ring.
    for ring in ("ring16", "ring24"):
        values = figure.column(ring)
        assert values[-1] > 5 * values[0]
