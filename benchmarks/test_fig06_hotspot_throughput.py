"""Figure 6: throughput under a single hot-spot destination."""

import pytest

from repro.experiments.figures import figure6

RATES = [0.02, 0.05, 0.1, 0.25, 0.4]


def test_fig6_single_hotspot_throughput(run_once, bench_settings):
    figure = run_once(
        figure6,
        settings=bench_settings,
        node_counts=(8, 24),
        rates=RATES,
    )
    by_n = {
        8: ["ring8", "spidergon8", "mesh2x4"],
        24: ["ring24", "spidergon24", "mesh4x6"],
    }
    for n, labels in by_n.items():
        columns = [figure.column(l) for l in labels]
        # Paper: "the throughput index presents no differences with
        # respect to the implemented topology".
        for i in range(len(RATES)):
            values = [c[i] for c in columns]
            assert max(values) - min(values) < 0.12
        # Saturation at the destination's ~1 flit/cycle absorption.
        for column in columns:
            assert column[-1] == pytest.approx(1.0, abs=0.1)
        # Linear absorption before saturation: throughput tracks the
        # aggregate offered load.
        sources = n - 1
        for i, rate in enumerate(RATES):
            offered = rate * sources
            if offered < 0.7:
                for column in columns:
                    assert column[i] == pytest.approx(offered, rel=0.2)

    # More sources -> saturation reached at lower per-source rates:
    # at rate 0.05, 23 sources already exceed the sink (thr ~ 1)
    # while 7 sources do not.
    assert figure.column("spidergon24")[1] > figure.column(
        "spidergon8"
    )[1]
