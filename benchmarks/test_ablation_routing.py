"""Ablation: across-first vs table-driven routing on the Spidergon.

Both schemes are minimal, so at low load they accept identical
traffic.  But table routing carries no dateline discipline: once load
builds up, the ring-segment channel-dependency cycle closes and the
network deadlocks — the collapse quantifies what the paper's
"simple management" routing scheme (plus its VC pair) is worth.
"""

import pytest

from repro.experiments.ablations import ablation_spidergon_routing

RATES = (0.02, 0.05, 0.25)


def test_ablation_spidergon_routing(run_once, bench_settings):
    figure = run_once(
        ablation_spidergon_routing,
        settings=bench_settings,
        num_nodes=16,
        rates=RATES,
    )
    across = figure.column("across-first")
    table = figure.column("table")
    # Minimal vs minimal: identical at low load.
    for i in (0, 1):
        assert across[i] == pytest.approx(table[i], rel=0.1)
    # Without deadlock protection the table scheme degrades toward
    # deadlock under sustained load (a full collapse needs a long
    # enough horizon for the cycle to close — at 10k cycles its
    # throughput drops below 1 flit/cycle) while across-first keeps
    # flowing.
    assert across[2] > 2.0
    assert table[2] < 0.7 * across[2]
