"""Figure 7: latency under a single hot-spot destination."""

from repro.experiments.figures import figure7
from repro.stats import detect_saturation_point

RATES = [0.02, 0.05, 0.1, 0.25, 0.4]


def test_fig7_single_hotspot_latency(run_once, bench_settings):
    figure = run_once(
        figure7,
        settings=bench_settings,
        node_counts=(8, 24),
        rates=RATES,
    )
    knees = {
        label: detect_saturation_point(RATES, values)
        for label, values in figure.series.items()
    }
    # Paper: latency sharply increases at target-node saturation,
    # "with little differences due to the NoC topology adopted".
    for n, labels in (
        (8, ("ring8", "spidergon8", "mesh2x4")),
        (24, ("ring24", "spidergon24", "mesh4x6")),
    ):
        topology_knees = {knees[l] for l in labels}
        assert len(topology_knees) == 1

    # Paper: "the latency increases early when the number of source
    # nodes increases".
    knee8 = knees["spidergon8"]
    knee24 = knees["spidergon24"]
    assert knee24 is not None
    assert knee8 is None or knee24 <= knee8

    # Latency blows up well past the knee.
    for label, values in figure.series.items():
        assert values[-1] > 3 * values[0]
