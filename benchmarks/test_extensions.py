"""Extension studies: torus comparison and traffic-pattern sweep."""

import pytest

from repro.experiments.extensions import (
    extension_torus_comparison,
    extension_traffic_patterns,
)

RATES = (0.1, 0.3, 0.6)


def test_extension_torus_comparison(run_once, bench_settings):
    figure = run_once(
        extension_torus_comparison,
        settings=bench_settings,
        rows=4,
        cols=4,
        rates=RATES,
    )
    high = len(RATES) - 1
    # Uniform traffic: torus >= mesh (wrap links only help) and both
    # far above the ring.
    assert (
        figure.column("torus4x4")[high]
        >= 0.95 * figure.column("mesh4x4")[high]
    )
    assert (
        figure.column("ring16")[high]
        < figure.column("torus4x4")[high]
    )
    # Low load: everything accepts the offered traffic.
    offered = RATES[0] * 16
    for label in figure.series:
        assert figure.column(label)[0] == pytest.approx(
            offered, rel=0.15
        ), label


def test_extension_traffic_patterns(run_once, bench_settings):
    figure = run_once(
        extension_traffic_patterns,
        settings=bench_settings,
        num_nodes=16,
        injection_rate=0.3,
    )
    ring = figure.column("ring16")
    spider = figure.column("spidergon16")
    mesh = figure.column("mesh4x4")
    # Pattern order: uniform, tornado, bit-complement, neighbor.
    # Nearest-neighbor is nearly free for every topology: all accept
    # the full offered load (~4.8 flits/cycle).
    for series in (ring, spider, mesh):
        assert series[3] == pytest.approx(0.3 * 16, rel=0.15)
    # Tornado punishes the ring far more than the others.
    assert ring[1] < 0.7 * spider[1]
    # Bit-complement (mirror traffic) still ranks ring worst.
    assert ring[2] <= spider[2] + 0.2
