"""Figure 2: network diameter vs N for all topology families."""

from repro.experiments.figures import figure2


def series(figure):
    return {label: dict(zip(figure.x_values, values))
            for label, values in figure.series.items()}


def test_fig2_network_diameter(run_once):
    figure = run_once(figure2, 4, 64)
    data = series(figure)

    # Paper: Spidergon has lower ND than real 2D meshes at least up
    # to 40-45 nodes.
    for n in range(6, 41, 2):
        assert data["spidergon"][n] <= data["real-mesh"][n]

    # Paper: real meshes fluctuate between the ideal-mesh and Ring
    # diameter values (N = 2 * prime hits the Ring's value).
    for n in (22, 26, 34, 46, 58, 62):
        assert data["real-mesh"][n] == data["ring"][n]
    for n in (16, 36, 64):
        assert data["real-mesh"][n] == 2 * (n ** 0.5 - 1)

    # Ring diameter is floor(N/2); Spidergon is ceil(N/4).
    for n in range(4, 65, 2):
        assert data["ring"][n] == n // 2
        assert data["spidergon"][n] == -(-n // 4)
