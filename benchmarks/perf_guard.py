#!/usr/bin/env python3
"""Kernel performance guard: fail CI if the unobserved event loop
regresses.

The guarded quantity is a *ratio*, not an absolute rate: kernel
events/second of the standard two-module ping-pong divided by the
events/second of a hand-inlined heapq loop doing the same amount of
raw queue work, measured back-to-back in the same process.  The
reference loop soaks up machine speed, interpreter version and CI
noise, so the ratio tracks only what this repository controls — the
overhead the `Simulator` event loop adds on top of the heap.  The
observer protocol's zero-cost-when-disabled claim lives or dies here:
adding per-event work to the unobserved fast path drops the ratio.

Usage::

    python benchmarks/perf_guard.py                    # check vs baseline
    python benchmarks/perf_guard.py --update-baseline  # rewrite baseline
    python benchmarks/perf_guard.py --tolerance 0.15   # custom slack

Exit codes: 0 pass, 1 regression, 2 missing baseline.
"""

from __future__ import annotations

import argparse
import heapq
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

BASELINE_PATH = pathlib.Path(__file__).parent / "kernel_baseline.json"
EVENTS = 20_000
REPEATS = 5


def kernel_rate() -> float:
    """Events/second of the ping-pong workload on the real kernel."""
    from repro.sim.kernel import Simulator
    from repro.sim.messages import Message
    from repro.sim.module import SimModule

    class PingPong(SimModule):
        def __init__(self, simulator, name):
            super().__init__(simulator, name)
            self.add_gate("out")

        def handle_message(self, message):
            self.send(Message("ball"), "out")

    sim = Simulator()
    a = PingPong(sim, "a")
    b = PingPong(sim, "b")
    a.gate("out").connect(b.add_gate("in"), delay=1)
    b.gate("out").connect(a.add_gate("in"), delay=1)
    sim.schedule(0, a, Message("serve"))
    start = time.perf_counter()
    sim.run(max_events=EVENTS)
    elapsed = time.perf_counter() - start
    assert sim.events_processed == EVENTS
    return EVENTS / elapsed


def reference_rate() -> float:
    """Events/second of a bare heapq push/pop loop with comparable
    per-event tuple traffic — the denominator of the guarded ratio."""
    heap: list = []
    push, pop = heapq.heappush, heapq.heappop
    push(heap, (0, 0, 0))
    processed = 0
    start = time.perf_counter()
    while processed < EVENTS:
        t, priority, sequence = pop(heap)
        processed += 1
        push(heap, (t + 1, priority, sequence + 1))
    elapsed = time.perf_counter() - start
    return EVENTS / elapsed


def measure() -> dict:
    """Best-of-N for both rates, interleaved to share thermal state."""
    kernel_best = 0.0
    reference_best = 0.0
    for _ in range(REPEATS):
        kernel_best = max(kernel_best, kernel_rate())
        reference_best = max(reference_best, reference_rate())
    return {
        "events": EVENTS,
        "kernel_events_per_second": round(kernel_best),
        "reference_events_per_second": round(reference_best),
        "ratio": round(kernel_best / reference_best, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"write the measured ratio to {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed relative drop in the ratio (default 0.10)",
    )
    args = parser.parse_args(argv)

    current = measure()
    print(
        f"kernel {current['kernel_events_per_second']:,} ev/s, "
        f"reference {current['reference_events_per_second']:,} ev/s, "
        f"ratio {current['ratio']}"
    )

    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(
            f"no baseline at {BASELINE_PATH}; run with "
            "--update-baseline first"
        )
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["ratio"] * (1.0 - args.tolerance)
    print(
        f"baseline ratio {baseline['ratio']}, floor {floor:.4f} "
        f"(tolerance {args.tolerance:.0%})"
    )
    if current["ratio"] < floor:
        print(
            "FAIL: kernel event loop slowed down relative to the "
            "raw-heap reference — check the fast path (the "
            "unobserved loop must stay at one observer check per "
            "event)."
        )
        return 1
    print("OK: no kernel regression.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
