#!/usr/bin/env python3
"""Benchmark trajectory: kernel micro-benchmarks + one figure point
per topology, written to ``BENCH_<date>.json`` at the repo root.

Complements ``perf_guard.py``: the guard checks a machine-independent
*ratio* and fails CI on regression; this script records *absolute*
numbers so the repository accumulates a performance trajectory over
time (one JSON per date, committed alongside the change that moved
the needle).

What it measures:

* ``kernel_ping_pong`` — events/second of the bare two-module
  ping-pong (the number ``kernel_baseline.json`` anchors);
* ``queue_churn`` — raw push/pop throughput of the default event
  queue at a realistic depth;
* ``figure_points`` — for one representative figure point per paper
  topology (ring16, spidergon16, mesh4x4 under uniform traffic),
  simulated cycles/second and kernel events/second **per engine**
  (the ``wheel`` event kernel and the ``batched`` cycle-synchronous
  engine), plus the batched-over-wheel speedup per point.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --min-speedup 1.3
    PYTHONPATH=src python benchmarks/run_bench.py \
        --min-batched-speedup 2.0
    PYTHONPATH=src python benchmarks/run_bench.py --out /tmp/b.json

Exit codes: 0 ok, 1 the ping-pong speedup vs the recorded baseline
fell below ``--min-speedup``, or the batched engine's mesh4x4
speedup over the wheel fell below ``--min-batched-speedup`` (both
default 0: informational only for absolute rates, but the batched
ratio is machine-independent, so CI pins it — see
``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

BASELINE_PATH = pathlib.Path(__file__).parent / "kernel_baseline.json"

PING_PONG_EVENTS = 20_000
REPEATS = 5
FIGURE_CYCLES = 2_000
FIGURE_RATE = 0.15
FIGURE_SEED = 11


def bench_ping_pong() -> float:
    """Best-of-N events/second of the standard ping-pong workload."""
    from repro.sim.kernel import Simulator
    from repro.sim.messages import Message
    from repro.sim.module import SimModule

    class PingPong(SimModule):
        def __init__(self, simulator, name):
            super().__init__(simulator, name)
            self.add_gate("out")

        def handle_message(self, message):
            self.send(Message("ball"), "out")

    best = 0.0
    for _ in range(REPEATS):
        sim = Simulator()
        a = PingPong(sim, "a")
        b = PingPong(sim, "b")
        a.gate("out").connect(b.add_gate("in"), delay=1)
        b.gate("out").connect(a.add_gate("in"), delay=1)
        sim.schedule(0, a, Message("serve"))
        start = time.perf_counter()
        sim.run(max_events=PING_PONG_EVENTS)
        elapsed = time.perf_counter() - start
        assert sim.events_processed == PING_PONG_EVENTS
        best = max(best, PING_PONG_EVENTS / elapsed)
    return best


def bench_queue_churn() -> float:
    """Best-of-N push+pop pairs/second at a depth of 2000 events."""
    from repro.sim.events import Event, EventQueue

    best = 0.0
    for _ in range(REPEATS):
        queue = EventQueue()
        start = time.perf_counter()
        for t in range(2_000):
            queue.push(
                Event(time=(t * 7919) % 1000, priority=0, sequence=0)
            )
        while queue:
            queue.pop()
        elapsed = time.perf_counter() - start
        best = max(best, 2_000 / elapsed)
    return best


FIGURE_ENGINES = ("wheel", "batched")


def bench_figure_points() -> dict:
    """One representative figure point per paper topology, measured
    once per engine; both engines produce byte-identical results
    (the equivalence suite pins that), so the comparison is purely
    cycles/second."""
    from repro.noc.config import NocConfig
    from repro.noc.network import Network
    from repro.topology import (
        MeshTopology,
        RingTopology,
        SpidergonTopology,
    )
    from repro.traffic import TrafficSpec, UniformTraffic

    factories = {
        "ring16": lambda: RingTopology(16),
        "spidergon16": lambda: SpidergonTopology(16),
        "mesh4x4": lambda: MeshTopology(4, 4),
    }
    points = {}
    for name, factory in factories.items():
        engines = {}
        for engine in FIGURE_ENGINES:
            best_cycles = 0.0
            events = 0
            for _ in range(3):
                topology = factory()
                network = Network(
                    topology,
                    config=NocConfig(source_queue_packets=16),
                    traffic=TrafficSpec(
                        UniformTraffic(topology), FIGURE_RATE
                    ),
                    seed=FIGURE_SEED,
                    engine=engine,
                )
                start = time.perf_counter()
                network.run(cycles=FIGURE_CYCLES)
                elapsed = time.perf_counter() - start
                events = network.simulator.events_processed
                best_cycles = max(
                    best_cycles, FIGURE_CYCLES / elapsed
                )
            engines[engine] = {
                "cycles_per_second": round(best_cycles),
                "events_per_second": round(
                    best_cycles * events / FIGURE_CYCLES
                ),
            }
        points[name] = {
            "cycles": FIGURE_CYCLES,
            "injection_rate": FIGURE_RATE,
            "seed": FIGURE_SEED,
            "events": events,
            "engines": engines,
            "batched_speedup": round(
                engines["batched"]["cycles_per_second"]
                / engines["wheel"]["cycles_per_second"],
                3,
            ),
        }
    return points


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0]
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="output path (default: BENCH_<date>.json at repo root)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help=(
            "fail (exit 1) if ping-pong events/sec divided by the "
            "recorded baseline is below this (default 0: report only)"
        ),
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=0.0,
        help=(
            "fail (exit 1) if the batched engine's mesh4x4 "
            "cycles/sec divided by the wheel engine's is below this "
            "(default 0: report only); the ratio is machine-"
            "independent, so CI can pin it"
        ),
    )
    args = parser.parse_args(argv)

    ping_pong = bench_ping_pong()
    churn = bench_queue_churn()
    points = bench_figure_points()

    baseline = None
    speedup = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        speedup = ping_pong / baseline["kernel_events_per_second"]

    record = {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "kernel_ping_pong": {
            "events": PING_PONG_EVENTS,
            "events_per_second": round(ping_pong),
            "baseline_events_per_second": (
                baseline["kernel_events_per_second"]
                if baseline
                else None
            ),
            "speedup_vs_baseline": (
                round(speedup, 3) if speedup is not None else None
            ),
        },
        "queue_churn_ops_per_second": round(churn),
        "figure_points": points,
    }

    out_path = args.out
    if out_path is None:
        out_path = REPO_ROOT / f"BENCH_{record['date']}.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")

    print(f"kernel ping-pong: {round(ping_pong):,} ev/s", end="")
    if speedup is not None:
        print(
            f" ({speedup:.2f}x vs baseline "
            f"{baseline['kernel_events_per_second']:,})"
        )
    else:
        print(" (no baseline recorded)")
    print(f"queue churn: {round(churn):,} ops/s")
    for name, point in points.items():
        per_engine = ", ".join(
            f"{engine} {stats['cycles_per_second']:,} cy/s"
            for engine, stats in point["engines"].items()
        )
        print(
            f"{name}: {per_engine} "
            f"(batched {point['batched_speedup']:.2f}x)"
        )
    print(f"wrote {out_path}")

    if args.min_speedup > 0:
        if speedup is None:
            print("FAIL: no baseline to compare against")
            return 1
        if speedup < args.min_speedup:
            print(
                f"FAIL: speedup {speedup:.2f}x is below the required "
                f"{args.min_speedup:.2f}x"
            )
            return 1
        print(
            f"OK: speedup {speedup:.2f}x meets the required "
            f"{args.min_speedup:.2f}x"
        )
    if args.min_batched_speedup > 0:
        ratio = points["mesh4x4"]["batched_speedup"]
        if ratio < args.min_batched_speedup:
            print(
                f"FAIL: batched mesh4x4 speedup {ratio:.2f}x is "
                f"below the required {args.min_batched_speedup:.2f}x"
            )
            return 1
        print(
            f"OK: batched mesh4x4 speedup {ratio:.2f}x meets the "
            f"required {args.min_batched_speedup:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
