"""Ablation: the deadlock-avoidance virtual-channel pair.

Removing the second output queue from Ring/Spidergon removes the
dateline escape class; under sustained uniform load the ring deadlocks
and throughput collapses — demonstrating why the paper provisions "a
pair of output buffers ... used both for virtual channel management
and deadlock avoidance".
"""

from repro.experiments.ablations import ablation_virtual_channels

RATES = (0.1, 0.25, 0.45)


def test_ablation_virtual_channels(run_once, bench_settings):
    figure = run_once(
        ablation_virtual_channels,
        settings=bench_settings,
        num_nodes=16,
        rates=RATES,
    )
    high = RATES.index(0.45)
    # With the pair, sustained load flows.
    assert figure.column("ring16-2vc")[high] > 1.0
    assert figure.column("spidergon16-2vc")[high] > 1.0
    # Without it, the ring collapses (deadlock starves the sinks).
    assert (
        figure.column("ring16-1vc")[high]
        < 0.5 * figure.column("ring16-2vc")[high]
    )
