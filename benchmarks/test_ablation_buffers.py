"""Ablation: output-buffer depth (paper: "small buffer tuning ha[s]
some marginal impact on the peak performances")."""

import pytest

from repro.experiments.ablations import ablation_output_buffer_depth

DEPTHS = (1, 2, 3, 4, 6, 8)


def test_ablation_output_buffer_depth(run_once, bench_settings):
    figure = run_once(
        ablation_output_buffer_depth,
        settings=bench_settings,
        depths=DEPTHS,
        num_nodes=16,
        injection_rate=0.45,
    )
    for label, values in figure.series.items():
        # Deeper buffers never hurt...
        assert values[DEPTHS.index(8)] >= values[DEPTHS.index(1)] * 0.95
        # ...but beyond the paper's 3 flits the gain is marginal
        # (<25% from 3 to 8).
        at3 = values[DEPTHS.index(3)]
        at8 = values[DEPTHS.index(8)]
        assert at8 <= at3 * 1.25, label
