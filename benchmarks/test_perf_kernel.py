"""Micro-benchmarks of the simulation substrate itself.

Unlike the figure benchmarks (one long round), these use
pytest-benchmark's statistics over repeated rounds: they exist to
catch performance regressions in the event kernel and the router's
per-cycle phases, which dominate every experiment's wall-clock.
"""

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule
from repro.topology import SpidergonTopology
from repro.traffic import TrafficSpec, UniformTraffic


class PingPong(SimModule):
    """Two of these bounce one message back and forth forever."""

    def __init__(self, simulator, name):
        super().__init__(simulator, name)
        self.add_gate("out")

    def handle_message(self, message):
        self.send(Message("ball"), "out")


def test_kernel_event_throughput(benchmark):
    """Events/second of the bare kernel (two-module ping-pong)."""

    def run_pingpong():
        sim = Simulator()
        a = PingPong(sim, "a")
        b = PingPong(sim, "b")
        a.gate("out").connect(b.add_gate("in"), delay=1)
        b.gate("out").connect(a.add_gate("in"), delay=1)
        sim.schedule(0, a, Message("serve"))
        sim.run(max_events=20_000)
        return sim.events_processed

    events = benchmark(run_pingpong)
    assert events == 20_000


def _run_pingpong(observer=None):
    sim = Simulator()
    a = PingPong(sim, "a")
    b = PingPong(sim, "b")
    a.gate("out").connect(b.add_gate("in"), delay=1)
    b.gate("out").connect(a.add_gate("in"), delay=1)
    if observer is not None:
        sim.add_observer(observer)
    sim.schedule(0, a, Message("serve"))
    sim.run(max_events=20_000)
    return sim.events_processed


def test_kernel_event_throughput_noop_observer(benchmark):
    """Ping-pong with one no-op observer attached: the full price of
    observing (two snapshot tuples + two calls per event).  Compare
    against ``test_kernel_event_throughput`` — the gap is what
    detaching buys back.  The *unobserved* loop's cost is guarded
    separately and absolutely by ``perf_guard.py``: with zero
    observers the only addition to the historical loop is one
    list-truthiness check per event."""
    from repro.sim.observers import Observer

    events = benchmark(_run_pingpong, Observer())
    assert events == 20_000


def test_kernel_event_throughput_detached_observer(benchmark):
    """Ping-pong after attach + detach: must sit with the bare-kernel
    benchmark, not the observed one — detaching restores the fast
    path exactly (empty list, falsy, no snapshots)."""
    from repro.sim.tracing import EventTracer

    def run_detached():
        sim = Simulator()
        a = PingPong(sim, "a")
        b = PingPong(sim, "b")
        a.gate("out").connect(b.add_gate("in"), delay=1)
        b.gate("out").connect(a.add_gate("in"), delay=1)
        EventTracer(sim).detach()
        sim.schedule(0, a, Message("serve"))
        sim.run(max_events=20_000)
        return sim.events_processed

    events = benchmark(run_detached)
    assert events == 20_000


def test_event_queue_push_pop(benchmark):
    """Raw heap operation cost at realistic queue depths."""
    from repro.sim.events import Event, EventQueue

    def churn():
        queue = EventQueue()
        for t in range(2_000):
            queue.push(
                Event(time=(t * 7919) % 1000, priority=0, sequence=0)
            )
        while queue:
            queue.pop()

    benchmark(churn)


def test_saturated_network_cycles_per_second(benchmark):
    """End-to-end model speed: cycles/second of a loaded 16-node
    Spidergon (the workhorse configuration of every figure)."""

    def run_network():
        topology = SpidergonTopology(16)
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(topology), 0.4),
            seed=1,
        )
        net.run(cycles=2_000)
        return net.stats.flits_consumed

    flits = benchmark(run_network)
    assert flits > 0
