"""Shared settings for the figure-regeneration benchmarks.

Each benchmark regenerates one paper figure (at reduced but
shape-preserving scale), asserts the paper's qualitative claims on
the data, and reports the generation time through pytest-benchmark.
Simulation benchmarks run a single round — the workload is seconds to
minutes, and the measurement of interest is the figure data itself.

Set ``REPRO_BENCH_SCALE`` (default 0.25) to trade fidelity for time;
1.0 reproduces the full-length runs used in EXPERIMENTS.md.
"""

import os

import pytest

from repro.experiments.report import format_table
from repro.experiments.runner import SimulationSettings
from repro.noc.config import NocConfig

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def bench_settings() -> SimulationSettings:
    return SimulationSettings(
        cycles=20_000,
        warmup=4_000,
        config=NocConfig(source_queue_packets=64),
        seed=1,
    ).scaled(SCALE)


@pytest.fixture
def run_once(benchmark):
    """Run *fn* exactly once under pytest-benchmark and print the
    resulting figure table."""

    def runner(fn, *args, **kwargs):
        figure = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        print()
        print(format_table(figure))
        return figure

    return runner
