"""Ablation: real-mesh construction policy (factorized vs irregular)."""

from repro.experiments.ablations import ablation_mesh_policy


def test_ablation_mesh_policy(run_once):
    figure = run_once(ablation_mesh_policy, 4, 64)
    ns = figure.x_values
    fact_nd = dict(zip(ns, figure.column("factorized-ND")))
    irr_nd = dict(zip(ns, figure.column("irregular-ND")))
    # The irregular near-square grid never degenerates: its diameter
    # is bounded by ~2*sqrt(N) while factorization can hit N/2.
    for n in ns:
        assert irr_nd[n] <= fact_nd[n]
    assert fact_nd[22] == 11  # 2 x 11 strip
    assert irr_nd[22] == 8  # 5 x 5 grid missing 3 cells
