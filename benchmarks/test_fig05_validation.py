"""Figure 5: analytical vs simulation-based average distance."""

import pytest

from repro.experiments.figures import figure5


def test_fig5_model_validation(run_once, bench_settings):
    figure = run_once(
        figure5,
        settings=bench_settings,
        node_counts=(8, 16, 24, 32),
        injection_rate=0.05,
    )
    # Simulation tracks the analytical model for every topology and
    # size (paper: "the figure confirms ..." despite stochastic
    # variability).
    for label in ("ring", "spidergon", "mesh"):
        analytic = figure.column(f"{label}-analytic")
        simulated = figure.column(f"{label}-sim")
        for a, s in zip(analytic, simulated):
            assert s == pytest.approx(a, rel=0.15)

    # Ring worst; Spidergon and Mesh close to each other in 8..32.
    ns = figure.x_values
    for i, n in enumerate(ns):
        assert figure.column("ring-sim")[i] > figure.column(
            "spidergon-sim"
        )[i]
        assert figure.column("spidergon-sim")[i] == pytest.approx(
            figure.column("mesh-sim")[i], rel=0.45
        )
