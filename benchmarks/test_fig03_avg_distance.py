"""Figure 3: average network distance vs N for all topology families."""

import pytest

from repro.experiments.figures import figure3


def series(figure):
    return {label: dict(zip(figure.x_values, values))
            for label, values in figure.series.items()}


def test_fig3_average_distance(run_once):
    figure = run_once(figure3, 4, 64)
    data = series(figure)

    # Paper: "Spidergon outperforms Ring".
    for n in range(6, 65, 2):
        assert data["spidergon"][n] < data["ring"][n]

    # Paper: Ring E[D] = N/4; ideal mesh E[D] ~ 2*sqrt(N)/3.
    for n in range(4, 65, 2):
        assert data["ring"][n] == pytest.approx(n / 4)

    # Paper: ideal mesh behaviour is obtained by real meshes only for
    # specific N (perfect squares / near-square factorizations).
    assert data["real-mesh"][36] == pytest.approx(
        data["ideal-mesh"][36], rel=0.05
    )
    assert data["real-mesh"][22] > 1.25 * data["ideal-mesh"][22]

    # Spidergon sits between ideal mesh and ring for moderate N.
    for n in range(16, 65, 2):
        assert data["spidergon"][n] <= data["ring"][n]
        assert data["spidergon"][n] >= 0.5 * data["ideal-mesh"][n]
