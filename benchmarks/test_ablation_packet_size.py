"""Ablation: packet length (paper fixes 6 flits)."""

from repro.experiments.ablations import ablation_packet_size

SIZES = (2, 4, 6, 10, 16)


def test_ablation_packet_size(run_once, bench_settings):
    figure = run_once(
        ablation_packet_size,
        settings=bench_settings,
        sizes=SIZES,
        num_nodes=16,
        injection_rate=0.3,
    )
    latency = figure.column("latency")
    throughput = figure.column("throughput")
    # At fixed flit rate, longer packets mean longer serialisation
    # and longer wormhole path holding: latency grows monotonically
    # (within noise)...
    assert latency[SIZES.index(16)] > latency[SIZES.index(2)]
    # ...while accepted throughput stays within 30% across sizes
    # (the offered flit load is constant).
    assert max(throughput) < 1.3 * min(throughput)
