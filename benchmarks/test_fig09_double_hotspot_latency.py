"""Figure 9: latency under two hot-spot destinations (A/B/C)."""

from repro.experiments.figures import figure9
from repro.stats import detect_saturation_point

RATES = [0.05, 0.1, 0.25, 0.5]


def test_fig9_double_hotspot_latency(run_once, bench_settings):
    figure = run_once(
        figure9,
        settings=bench_settings,
        node_counts=(24,),
        rates=RATES,
    )
    knees = {
        label: detect_saturation_point(RATES, values)
        for label, values in figure.series.items()
    }
    # Every scenario saturates within the sweep...
    assert all(knee is not None for knee in knees.values())
    # ...and at the same rate regardless of topology or placement
    # (the sinks, not the NoC, are the bottleneck).
    assert len(set(knees.values())) == 1

    # With two sinks the knee comes later than with one (compare to
    # the single-hotspot knee at the same size, which is ~1/23 per
    # source ~ 0.04-0.05; with two sinks ~0.09): the first rate in
    # the sweep must still be below saturation.
    for label, values in figure.series.items():
        assert values[0] < 3 * min(values), label
