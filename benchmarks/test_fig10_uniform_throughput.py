"""Figure 10: throughput under homogeneous uniform traffic."""

import pytest

from repro.experiments.figures import figure10

RATES = [0.05, 0.1, 0.2, 0.3, 0.45, 0.7]


def test_fig10_uniform_throughput(run_once, bench_settings):
    figure = run_once(
        figure10,
        settings=bench_settings,
        node_counts=(16, 24),
        rates=RATES,
    )

    def at(label, rate):
        return figure.column(label)[RATES.index(rate)]

    # Paper: "Spidergon and 2D Mesh topologies outperform Ring".
    for n, ring, spider, mesh in (
        (16, "ring16", "spidergon16", "mesh4x4"),
        (24, "ring24", "spidergon24", "mesh4x6"),
    ):
        assert at(ring, 0.7) < at(spider, 0.7)
        assert at(ring, 0.7) < at(mesh, 0.7)

    # Paper: "2D Mesh shows a better throughput than Spidergon only
    # with many nodes and when the local injection rate ... is
    # greater than 0.3 flits/cycle".
    assert at("mesh4x6", 0.05) == pytest.approx(
        at("spidergon24", 0.05), rel=0.1
    )
    assert at("mesh4x6", 0.7) > at("spidergon24", 0.7)

    # At low load every topology accepts the offered traffic.
    for label in figure.series:
        n = 16 if "16" in label or label == "mesh4x4" else 24
        offered = 0.05 * n
        assert figure.column(label)[0] == pytest.approx(
            offered, rel=0.2
        ), label
