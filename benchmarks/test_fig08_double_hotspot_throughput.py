"""Figure 8: throughput under two hot-spot destinations (A/B/C)."""

import pytest

from repro.experiments.figures import figure8

RATES = [0.05, 0.1, 0.25, 0.5]


def test_fig8_double_hotspot_throughput(run_once, bench_settings):
    figure = run_once(
        figure8,
        settings=bench_settings,
        node_counts=(24,),
        rates=RATES,
    )
    # Paper: results "basically confirm the system behavior and
    # conclusions discussed for one hot-spot target", with twice the
    # absorption ceiling.
    for label, values in figure.series.items():
        assert values[-1] == pytest.approx(2.0, abs=0.3), label

    # Placement (A vs B vs C) is a second-order effect at saturation.
    saturated = [values[-1] for values in figure.series.values()]
    assert max(saturated) - min(saturated) < 0.5

    # Below saturation absorption is linear in offered load.
    for label, values in figure.series.items():
        offered = RATES[0] * 22
        assert values[0] == pytest.approx(offered, rel=0.25), label
