"""Capacity-bound validation: analytical predictions vs simulation.

The channel-load model (`repro.analysis.capacity`) predicts where
each topology saturates before running any simulation.  This
benchmark checks the predictions against measured saturation for the
paper's two scenario families:

* hot-spot: predicted knee ``1/num_sources`` matches the measured
  throughput clip (figure 6);
* uniform: the analytical ordering ring << {spidergon, mesh} matches
  figure 10, and every measured throughput stays below its bound.
"""

import pytest

from repro.analysis.capacity import (
    hotspot_saturation_rate,
    uniform_capacity,
)
from repro.experiments.runner import run_simulation
from repro.routing import routing_for
from repro.topology import MeshTopology, RingTopology, SpidergonTopology
from repro.traffic import HotspotTraffic, UniformTraffic


def topologies(n):
    return (
        RingTopology(n),
        SpidergonTopology(n),
        MeshTopology.factorized(n),
    )


def test_capacity_bounds(run_once, bench_settings, benchmark=None):
    del benchmark  # run_once wraps the benchmark fixture already

    def compute():
        from repro.experiments.report import FigureData

        figure = FigureData(
            "capacity",
            "Analytical capacity bound vs measured saturated "
            "throughput (uniform traffic)",
            "row",
            [0, 1, 2],
        )
        bounds, measured = [], []
        for topology in topologies(16):
            routing = routing_for(topology)
            bounds.append(uniform_capacity(routing))
            result = run_simulation(
                topology,
                UniformTraffic(topology),
                0.9,
                bench_settings,
            )
            measured.append(result.throughput)
        figure.add_series("bound", bounds)
        figure.add_series("measured", measured)
        figure.notes.append("rows: ring16, spidergon16, mesh4x4")
        return figure

    figure = run_once(compute)
    bounds = figure.column("bound")
    measured = figure.column("measured")
    # Measured throughput never exceeds its bound, and achieves a
    # reasonable fraction of it (wormhole inefficiency is bounded).
    for bound, value in zip(bounds, measured):
        assert value <= bound
        assert value > 0.3 * bound
    # The analytical ordering predicts figure 10's ranking.
    assert bounds[0] < bounds[1]
    assert measured[0] < measured[1]
    assert measured[0] < measured[2]


def test_hotspot_knee_prediction(run_once, bench_settings):
    # The predicted knee 1/num_sources: below it throughput tracks
    # offered load; above it throughput clips at the sink rate.
    topology = SpidergonTopology(16)
    routing = routing_for(topology)
    knee = hotspot_saturation_rate(routing, [0])
    assert knee == pytest.approx(1 / 15)

    def compute():
        from repro.experiments.report import FigureData

        figure = FigureData(
            "capacity-hotspot",
            "Hot-spot throughput around the predicted knee "
            "(spidergon16, target 0)",
            "lambda",
            [knee * 0.6, knee * 2.5],
        )
        values = [
            run_simulation(
                topology,
                HotspotTraffic(topology, [0]),
                rate,
                bench_settings,
            ).throughput
            for rate in figure.x_values
        ]
        figure.add_series("throughput", values)
        return figure

    figure = run_once(compute)
    below, above = figure.column("throughput")
    assert below == pytest.approx(knee * 0.6 * 15, rel=0.15)
    assert above == pytest.approx(1.0, abs=0.08)
