#!/usr/bin/env python3
"""Observability tour: watch a hot-spot saturate, link by link.

Runs a 16-node ring with every source firing at node 0 and attaches
the :mod:`repro.obs` instrumentation: a windowed per-link utilization
timeline, a bounded flit-lifecycle trace, and a kernel profile.  The
heat table printed at the end shows the congestion concentrating on
the hot-spot's two incoming links — the mechanism behind the paper's
Fig. 6 hot-spot results — without touching any router internals:
everything is observed through the kernel's observer protocol.

Run::

    python examples/observability_tour.py
"""

import json

from repro import (
    FlitTracer,
    KernelProfiler,
    Network,
    NocConfig,
    RingTopology,
    TimelineObserver,
    TraceSink,
    TrafficSpec,
)
from repro.traffic import HotspotTraffic

CYCLES = 4_000
WINDOW = 200


def main() -> None:
    topology = RingTopology(16)
    traffic = TrafficSpec(
        HotspotTraffic(topology, targets=[0]), injection_rate=0.1
    )
    network = Network(
        topology,
        config=NocConfig(source_queue_packets=64),
        traffic=traffic,
        seed=1,
    )

    # Attach the instrumentation before running.  Each observer
    # registers itself with the network's simulator.
    sink = TraceSink.in_memory(limit=200)
    tracer = FlitTracer(network, sink)
    timeline_observer = TimelineObserver(network, window=WINDOW)
    profiler = KernelProfiler(network.simulator)

    print(f"Simulating {CYCLES} cycles of hotspot:0 on ring16...")
    result = network.run(cycles=CYCLES, warmup=0)
    tracer.detach()

    print()
    print(f"Throughput:        {result.throughput:.3f} flits/cycle")
    print(f"Packets delivered: {result.packets_delivered}")
    print(f"Kernel events:     {result.events_processed}")
    print()

    timeline = timeline_observer.timeline()
    print("Per-link utilization heat table (busiest first):")
    print(timeline.heat_table(max_links=8))
    node, port, dst, utilization = timeline.busiest_links(1)[0]
    print(
        f"Busiest link: {node} -> {dst} via {port!r} at "
        f"{utilization:.1%} — an incoming link of hot-spot node 0."
    )
    print()

    # The first few lifecycle records of the bounded trace: one
    # JSONL line per flit event (generate/inject/hop/consume).
    lines = sink.text().splitlines()
    print(f"Flit trace: {sink.records_written} records kept, "
          f"{sink.records_dropped} dropped (limit {200}).")
    for line in lines[:4]:
        record = json.loads(line)
        print(f"  {record['ev']:>8} t={record['t']:<4} "
              f"pkt={record['pkt']} flit={record['flit']}")
    print()

    summary = profiler.summary()
    print(f"Kernel profile: {summary['events']} events, "
          f"{summary['events_per_second']:,.0f}/s, "
          f"max pending {summary['max_pending_events']} "
          f"(wheel {summary['max_wheel_occupancy']}, "
          f"overflow {summary['max_overflow_occupancy']}).")


if __name__ == "__main__":
    main()
