#!/usr/bin/env python3
"""Irregular meshes from realistic floorplans.

The paper motivates its analysis with the observation that "regular
meshes cannot be always assumed as realistic topologies" — a die
floorplan with a large hard macro (an accelerator, an SRAM block)
leaves a mesh with missing cells.

This example carves an L-shaped floorplan out of a 5x5 grid (a 2x2
macro occupies one corner), builds the irregular mesh, routes it with
table-driven shortest paths (XY would dead-end at the hole), and
compares static metrics and simulated uniform-traffic performance
against the regular alternatives with the same node budget.

Run::

    python examples/irregular_floorplan.py
"""

from repro import (
    MeshTopology,
    Network,
    NocConfig,
    RingTopology,
    SpidergonTopology,
    TrafficSpec,
    UniformTraffic,
)
from repro.routing import TableRouting, routing_for
from repro.topology import average_distance, diameter


def carved_floorplan():
    """A 5x5 grid whose top-right 2x2 corner is a hard macro."""
    hole = {(0, 3), (0, 4), (1, 3), (1, 4)}
    cells = [
        (r, c)
        for r in range(5)
        for c in range(5)
        if (r, c) not in hole
    ]
    return MeshTopology(5, 5, cells=cells)


def ascii_floorplan(mesh):
    lines = []
    for r in range(mesh.rows):
        row = "".join(
            " ##" if not mesh.has_cell(r, c) else f"{mesh.node_at(r, c):>3}"
            for c in range(mesh.cols)
        )
        lines.append(row)
    return "\n".join(lines)


def simulate(topology, routing=None):
    network = Network(
        topology,
        routing=routing,
        config=NocConfig(source_queue_packets=48),
        traffic=TrafficSpec(UniformTraffic(topology), 0.25),
        seed=31,
    )
    return network.run(cycles=10_000, warmup=2_500)


def main() -> None:
    irregular = carved_floorplan()
    n = irregular.num_nodes
    print("Floorplan (## = hard macro, numbers = NoC nodes):\n")
    print(ascii_floorplan(irregular))
    print(f"\n{n} usable tiles.\n")

    candidates = [
        (irregular, TableRouting(irregular)),
        (RingTopology(n), None),
        (MeshTopology.factorized(n), None),
    ]
    if n % 2 == 0:
        candidates.append((SpidergonTopology(n), None))

    print(
        f"{'topology':<24} {'links':>5} {'ND':>3} {'E[D]':>6} "
        f"{'thr':>7} {'latency':>8}"
    )
    print("-" * 58)
    for topology, routing in candidates:
        result = simulate(topology, routing)
        print(
            f"{topology.name:<24} {topology.num_links:>5} "
            f"{diameter(topology):>3} {average_distance(topology):>6.2f} "
            f"{result.throughput:>7.3f} {result.avg_latency:>8.1f}"
        )
    print(
        "\nThe carved mesh keeps most of the regular mesh's "
        "performance; the paper's\npoint is that such realistic "
        "shapes must be analysed directly rather than\nassumed "
        "ideal (Section 1, contribution i)."
    )


if __name__ == "__main__":
    main()
