#!/usr/bin/env python3
"""Topology design-space exploration for a given node budget.

For a range of node counts, compare Ring, Spidergon and the *real*
mesh choices a designer actually has (best factorization, or a
partially filled irregular grid), on the paper's static metrics:
links (silicon cost proxy), network diameter (worst-case latency
proxy) and average distance (expected latency proxy).

This reproduces the reasoning behind the paper's figures 2 and 3:
Spidergon's constant degree-3 router and predictable ceil(N/4)
diameter sit between the Ring and the mesh family, while the mesh's
quality fluctuates wildly with how well N factorises.

Run::

    python examples/topology_explorer.py [max_nodes]
"""

import sys

from repro import MeshTopology, RingTopology, SpidergonTopology
from repro.topology import (
    HypercubeTopology,
    average_distance,
    diameter,
)


def describe(topology):
    return (
        topology.num_links,
        diameter(topology),
        average_distance(topology),
    )


def main() -> None:
    max_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    print(
        f"{'N':>3}  {'topology':<22} {'links':>5}  {'ND':>3}  "
        f"{'E[D]':>6}"
    )
    print("-" * 48)
    for n in range(6, max_nodes + 1, 2):
        candidates = [
            RingTopology(n),
            SpidergonTopology(n),
            MeshTopology.factorized(n),
            MeshTopology.irregular(n),
        ]
        if n & (n - 1) == 0:  # power of two: the parallel-computing
            candidates.append(HypercubeTopology.with_nodes(n))
        for topology in candidates:
            links, nd, ed = describe(topology)
            print(
                f"{n:>3}  {topology.name:<22} {links:>5}  {nd:>3}  "
                f"{ed:>6.2f}"
            )
        best = min(candidates, key=lambda t: average_distance(t))
        print(f"     -> lowest E[D]: {best.name}")
        print()


if __name__ == "__main__":
    main()
