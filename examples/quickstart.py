#!/usr/bin/env python3
"""Quickstart: simulate one NoC configuration and print its metrics.

Builds a 16-node Spidergon with the paper's default parameters
(6-flit packets, wormhole switching, across-first routing, two
virtual channels with a dateline discipline), offers uniform traffic
at 0.2 flits/cycle per node, and reports throughput, latency and hop
statistics.

Run::

    python examples/quickstart.py
"""

from repro import (
    Network,
    NocConfig,
    SpidergonTopology,
    TrafficSpec,
    UniformTraffic,
)
from repro.topology import average_distance, diameter


def main() -> None:
    topology = SpidergonTopology(16)
    print(f"Topology:          {topology.name}")
    print(f"  nodes            {topology.num_nodes}")
    print(f"  links            {topology.num_links} (paper: 3N)")
    print(f"  diameter         {diameter(topology)} (paper: ceil(N/4))")
    print(f"  avg distance     {average_distance(topology):.3f}")
    print()

    traffic = TrafficSpec(UniformTraffic(topology), injection_rate=0.2)
    config = NocConfig()  # paper defaults: 6-flit packets, 1/3-flit buffers
    network = Network(topology, config=config, traffic=traffic, seed=7)

    print("Simulating 20,000 cycles (4,000 warmup)...")
    result = network.run(cycles=20_000, warmup=4_000)

    print()
    print(f"Routing:           {result.routing_name}")
    print(f"Offered load:      {result.offered_load:.2f} flits/cycle")
    print(f"Throughput:        {result.throughput:.3f} flits/cycle")
    print(f"Avg latency:       {result.avg_latency:.1f} cycles")
    print(f"P95 latency:       {result.p95_latency:.1f} cycles")
    print(f"Avg hops:          {result.avg_hops:.2f}")
    print(f"Packets delivered: {result.packets_delivered}")


if __name__ == "__main__":
    main()
