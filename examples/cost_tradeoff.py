#!/usr/bin/env python3
"""Quantifying the paper's headline trade-off.

"Results show that the Spidergon topology is a good trade-off between
performance, scalability of the most efficient architectures ...,
constraints about simple management, small energy and area
requirements for SoCs."

For each topology at N = 16 this example reports:

* router area (normalised gate-count proxy) and total wire length,
* analytical uniform-traffic capacity bound,
* measured saturated throughput under uniform traffic,
* dynamic energy per delivered flit for the same run,
* two figures of merit: throughput per unit router area, and
  delivered flits per unit energy.

Run::

    python examples/cost_tradeoff.py [num_nodes]
"""

import sys

from repro import (
    MeshTopology,
    Network,
    NocConfig,
    RingTopology,
    SpidergonTopology,
    TrafficSpec,
    UniformTraffic,
)
from repro.analysis.capacity import uniform_capacity
from repro.cost import EnergyReport, network_area, total_wire_length
from repro.routing import routing_for
from repro.topology import TorusTopology
from repro.traffic import HotspotTraffic


def evaluate(topology, rate=0.8, cycles=10_000, warmup=2_500,
             hotspot=False):
    routing = routing_for(topology)
    if hotspot:
        pattern = HotspotTraffic(topology, [0])
    else:
        pattern = UniformTraffic(topology)
    network = Network(
        topology,
        config=NocConfig(source_queue_packets=48),
        traffic=TrafficSpec(pattern, rate),
        seed=17,
    )
    result = network.run(cycles=cycles, warmup=warmup)
    energy = EnergyReport.from_network(network)
    area = network_area(
        topology, network.config, num_vcs=network.num_vcs
    )
    return {
        "area": area,
        "wire": total_wire_length(topology),
        "capacity": uniform_capacity(routing),
        "throughput": result.throughput,
        "energy_per_flit": energy.energy_per_flit,
    }


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    candidates = [RingTopology(n), SpidergonTopology(n)]
    mesh = MeshTopology.factorized(n)
    candidates.append(mesh)
    if mesh.rows >= 3 and mesh.cols >= 3:
        candidates.append(TorusTopology(mesh.rows, mesh.cols))

    header = (
        f"{'topology':<14} {'area':>7} {'wire':>7} {'cap':>6} "
        f"{'thr':>6} {'E/flit':>7} {'thr/area':>9} {'flits/E':>8}"
    )

    def print_table(title, hotspot, rate):
        print(title)
        print(header)
        print("-" * len(header))
        for topology in candidates:
            row = evaluate(topology, rate=rate, hotspot=hotspot)
            thr_per_area = row["throughput"] / row["area"] * 1000
            flits_per_energy = (
                1 / row["energy_per_flit"]
                if row["energy_per_flit"]
                else 0
            )
            print(
                f"{topology.name:<14} {row['area']:>7.0f} "
                f"{row['wire']:>7.1f} {row['capacity']:>6.1f} "
                f"{row['throughput']:>6.2f} "
                f"{row['energy_per_flit']:>7.2f} "
                f"{thr_per_area:>9.2f} {flits_per_energy:>8.3f}"
            )
        print()

    print(f"N={n}, normalised cost units; thr/area is x1000\n")
    print_table(
        "Homogeneous uniform traffic at saturating load "
        "(paper fig. 10 regime):",
        hotspot=False,
        rate=0.8,
    )
    print_table(
        "Single hot-spot (external-memory) traffic at saturating "
        "load (fig. 6 regime):",
        hotspot=True,
        rate=0.25,
    )
    print(
        "Under uniform load the Mesh's extra area and wire buy real "
        "throughput.\nUnder the hot-spot regime the paper calls "
        "typical of current SoCs, every\ntopology delivers the same "
        "1 flit/cycle — so the cheap, symmetric,\nconstant-degree "
        "design wins: exactly the paper's argument for Spidergon."
    )


if __name__ == "__main__":
    main()
