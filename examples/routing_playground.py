#!/usr/bin/env python3
"""Routing-scheme playground: the paper's "analysis of routing
protocols" future work, made concrete.

Compares four routing organisations on the same 4x4 mesh, replaying
the *identical* recorded traffic trace through each (so differences
come from routing alone, not stochastic variation):

* XY dimension-order (the paper's mesh scheme),
* YX via the table-driven shortest-path fallback,
* O1TURN (per-packet randomised XY/YX on separate VCs),
* source-routed XY (same paths, decision moved to the NI).

The workload is transpose traffic — adversarial for any single
dimension order, and exactly the case where O1TURN's route diversity
pays off.

Run::

    python examples/routing_playground.py
"""

from repro import MeshTopology, Network, NocConfig
from repro.routing import (
    MeshO1TurnRouting,
    MeshXYRouting,
    SourceRouting,
    TableRouting,
)
from repro.traffic import TransposeTraffic, record_trace

MESH_DIMS = (4, 4)
RATE = 0.6  # flits/cycle/source: past XY's transpose saturation
CYCLES = 12_000
WARMUP = 3_000


def replayed_run(routing_factory):
    topology = MeshTopology(*MESH_DIMS)
    trace = record_trace(
        TransposeTraffic(topology), RATE, 6, cycles=CYCLES, seed=13
    )
    network = Network(
        topology,
        routing=routing_factory(topology),
        config=NocConfig(source_queue_packets=64),
        seed=13,
    )
    network.install_trace(trace)
    return network.run(cycles=CYCLES, warmup=WARMUP)


def main() -> None:
    schemes = [
        ("XY (paper)", MeshXYRouting),
        ("table shortest-path", TableRouting),
        ("O1TURN (XY|YX)", MeshO1TurnRouting),
        ("source-routed XY", lambda t: SourceRouting(MeshXYRouting(t))),
    ]
    print(
        f"{MESH_DIMS[0]}x{MESH_DIMS[1]} mesh, transpose traffic at "
        f"{RATE} flits/cycle/source, identical replayed trace\n"
    )
    print(
        f"{'scheme':<22} {'thr':>7} {'latency':>9} {'p95':>8} "
        f"{'queueing':>9}"
    )
    print("-" * 60)
    for label, factory in schemes:
        result = replayed_run(factory)
        print(
            f"{label:<22} {result.throughput:>7.3f} "
            f"{result.avg_latency:>9.1f} {result.p95_latency:>8.1f} "
            f"{result.avg_queueing_delay:>9.1f}"
        )
    print(
        "\nSource-routed XY matches per-hop XY exactly (same paths, "
        "same VCs).\nO1TURN spreads transpose pairs over both "
        "dimension orders and sustains\nhigher load — route "
        "diversity, not shorter paths."
    )


if __name__ == "__main__":
    main()
