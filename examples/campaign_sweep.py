#!/usr/bin/env python3
"""Declarative sweep with resume: the campaign runner in action.

Describes a cross product of topologies x patterns x rates as plain
data, runs it with incremental CSV persistence, and prints a pivot of
the results.  Interrupt it (Ctrl-C) and run again: completed cells
are skipped.

Run::

    python examples/campaign_sweep.py [out.csv]
"""

import pathlib
import sys

from repro import Campaign

SPEC = {
    "name": "demo-sweep",
    "cycles": 6_000,
    "warmup": 1_500,
    "seed": 2,
    "source_queue_packets": 32,
    "topologies": ["ring16", "spidergon16", "mesh4x4", "torus4x4"],
    "patterns": ["uniform", "hotspot:0", "tornado"],
    "rates": [0.1, 0.3, 0.6],
}


def pivot(csv_path: pathlib.Path) -> None:
    rows = {}
    header = None
    for line in csv_path.read_text().splitlines():
        cells = line.split(",")
        if header is None:
            header = cells
            continue
        record = dict(zip(header, cells))
        key = (record["topology"], record["pattern"])
        rows.setdefault(key, {})[record["rate"]] = record["throughput"]
    rates = SPEC["rates"]
    print(
        f"\n{'topology':<14} {'pattern':<12} "
        + "".join(f"thr@{r:<8}" for r in rates)
    )
    print("-" * (28 + 12 * len(rates)))
    for (topology, pattern), by_rate in sorted(rows.items()):
        cells = "".join(
            f"{float(by_rate.get(str(r), 'nan')):<12.3f}"
            for r in rates
        )
        print(f"{topology:<14} {pattern:<12} {cells}")


def main() -> None:
    csv_path = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else "campaign_demo.csv"
    )
    campaign = Campaign(SPEC)
    total = len(campaign.runs())
    skipped = len(campaign.completed_keys(csv_path))
    print(
        f"campaign {campaign.name!r}: {total} cells, "
        f"{skipped} already done, writing to {csv_path}"
    )
    campaign.execute(
        csv_path,
        progress=lambda done, tot, key: print(
            f"  [{done}/{tot}] {key}"
        ),
    )
    pivot(csv_path)
    print(
        "\nRe-run this script: nothing re-executes.  Delete the CSV "
        "to start fresh."
    )


if __name__ == "__main__":
    main()
