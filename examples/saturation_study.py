#!/usr/bin/env python3
"""Find each topology's saturation point under uniform traffic.

Sweeps the per-node injection rate, watches the mean packet latency,
and reports the knee — the first rate where latency exceeds three
times its zero-load value.  This condenses the paper's figures 10/11
into a single designer-facing number per topology: how much uniform
load can this NoC take before queueing explodes?

Also demonstrates the extension traffic patterns (tornado,
bit-complement, nearest-neighbor) the paper lists as future work.

Run::

    python examples/saturation_study.py
"""

from repro import (
    MeshTopology,
    Network,
    NocConfig,
    RingTopology,
    SpidergonTopology,
    TrafficSpec,
    UniformTraffic,
    detect_saturation_point,
)
from repro.traffic import (
    BitComplementTraffic,
    NearestNeighborTraffic,
    TornadoTraffic,
)

NUM_NODES = 16
RATES = [0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.55, 0.7]


def latency_curve(topology, pattern):
    latencies = []
    for rate in RATES:
        network = Network(
            topology,
            config=NocConfig(source_queue_packets=48),
            traffic=TrafficSpec(pattern, rate),
            seed=11,
        )
        result = network.run(cycles=8_000, warmup=2_000)
        latencies.append(
            result.avg_latency if result.avg_latency else float("inf")
        )
    return latencies


def report(topology, pattern):
    latencies = latency_curve(topology, pattern)
    knee = detect_saturation_point(RATES, latencies)
    knee_text = f"{knee:.2f}" if knee is not None else f">{RATES[-1]}"
    curve = "  ".join(f"{l:7.1f}" for l in latencies)
    print(
        f"{topology.name:<12} {pattern.name:<17} knee at lambda "
        f"~{knee_text:<6} [{curve}]"
    )


def main() -> None:
    print(f"Saturation study, N={NUM_NODES}, rates={RATES}\n")
    print("Uniform traffic (paper figures 10/11):")
    for topology in (
        RingTopology(NUM_NODES),
        SpidergonTopology(NUM_NODES),
        MeshTopology.factorized(NUM_NODES),
    ):
        report(topology, UniformTraffic(topology))
    print(
        "\nExtension patterns on the Spidergon (paper future work):"
    )
    spidergon = SpidergonTopology(NUM_NODES)
    for pattern in (
        TornadoTraffic(spidergon),
        BitComplementTraffic(spidergon),
        NearestNeighborTraffic(spidergon),
    ):
        report(spidergon, pattern)
    print(
        "\nThe Ring's knee comes first (it saturates earliest), "
        "matching figure 11;\nlocal (nearest-neighbor) traffic "
        "barely loads the network — the regime\nwhere 'the NoC "
        "architecture behaves better' (paper, Section 3.1.1)."
    )


if __name__ == "__main__":
    main()
