#!/usr/bin/env python3
"""Hot-spot study: a SoC whose processors all talk to one memory port.

The paper's motivating scenario: "in today's common SoCs ..., when the
system memory is external, the behavior obtained with different NoC
topologies would converge" — because the memory controller (a single
hot-spot destination) is the bottleneck, not the interconnect.

This example sweeps the per-core injection rate on Ring, Spidergon and
2D Mesh with one hot-spot target (the memory controller at node 0) and
shows that all three topologies deliver the same throughput curve,
saturating at the controller's 1 flit/cycle absorption — the
conclusion behind the paper's figures 6 and 7.

Run::

    python examples/shared_memory_soc.py
"""

from repro import (
    HotspotTraffic,
    MeshTopology,
    Network,
    NocConfig,
    RingTopology,
    SpidergonTopology,
    TrafficSpec,
)

NUM_NODES = 16
RATES = [0.02, 0.05, 0.08, 0.12, 0.2, 0.35]
MEMORY_CONTROLLER = 0


def simulate(topology, rate):
    traffic = TrafficSpec(
        HotspotTraffic(topology, [MEMORY_CONTROLLER]), rate
    )
    network = Network(
        topology,
        config=NocConfig(source_queue_packets=64),
        traffic=traffic,
        seed=21,
    )
    return network.run(cycles=12_000, warmup=3_000)


def main() -> None:
    topologies = [
        RingTopology(NUM_NODES),
        SpidergonTopology(NUM_NODES),
        MeshTopology.factorized(NUM_NODES),
    ]
    print(
        f"{NUM_NODES}-node SoC, all cores -> memory controller at "
        f"node {MEMORY_CONTROLLER}\n"
    )
    header = "lambda  " + "".join(
        f"{t.name:>22}" for t in topologies
    )
    print(header)
    print("        " + "   thr    latency" * 0 + "")
    for rate in RATES:
        cells = []
        for topology in topologies:
            result = simulate(topology, rate)
            cells.append(
                f"{result.throughput:>8.3f} / {result.avg_latency:>8.1f}"
            )
        print(f"{rate:>6.2f}  " + "".join(f"{c:>22}" for c in cells))
    print(
        "\nColumns are throughput (flits/cycle) / mean latency "
        "(cycles)."
    )
    print(
        "Note how the three topologies coincide and saturate at "
        "~1 flit/cycle:\nthe memory port, not the NoC, is the "
        "bottleneck (paper, Section 3.1.1)."
    )


if __name__ == "__main__":
    main()
