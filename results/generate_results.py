#!/usr/bin/env python3
"""Regenerate every figure and ablation for EXPERIMENTS.md.

Runs the simulation figures at half the default horizon (10k cycles,
2k warmup) — enough for stable shapes on a single-core box — and the
analytical figures at full range.  Writes tables to stdout and CSVs
next to this script.
"""

import pathlib
import sys
import time

from repro.experiments import ablations, figures
from repro.experiments.report import format_table, to_csv
from repro.experiments.runner import SimulationSettings
from repro.noc.config import NocConfig

OUT = pathlib.Path(__file__).parent
SETTINGS = SimulationSettings(
    cycles=10_000,
    warmup=2_000,
    config=NocConfig(source_queue_packets=64),
    seed=1,
)


def emit(name, figure):
    sys.stdout.write(format_table(figure))
    sys.stdout.write("\n")
    sys.stdout.flush()
    (OUT / f"{name}.csv").write_text(to_csv(figure))


def main():
    jobs = [
        ("fig2", lambda: figures.figure2()),
        ("fig3", lambda: figures.figure3()),
        ("fig5", lambda: figures.figure5(settings=SETTINGS)),
        ("fig6", lambda: figures.figure6(settings=SETTINGS)),
        ("fig7", lambda: figures.figure7(settings=SETTINGS)),
        ("fig8", lambda: figures.figure8(settings=SETTINGS)),
        ("fig9", lambda: figures.figure9(settings=SETTINGS)),
        ("fig10", lambda: figures.figure10(settings=SETTINGS)),
        ("fig11", lambda: figures.figure11(settings=SETTINGS)),
        (
            "ablation_buffers",
            lambda: ablations.ablation_output_buffer_depth(
                settings=SETTINGS
            ),
        ),
        (
            "ablation_vcs",
            lambda: ablations.ablation_virtual_channels(
                settings=SETTINGS
            ),
        ),
        (
            "ablation_routing",
            lambda: ablations.ablation_spidergon_routing(
                settings=SETTINGS, rates=(0.02, 0.05, 0.1, 0.25)
            ),
        ),
        (
            "ablation_packet_size",
            lambda: ablations.ablation_packet_size(settings=SETTINGS),
        ),
        (
            "ablation_mesh_policy",
            lambda: ablations.ablation_mesh_policy(),
        ),
    ]
    for name, job in jobs:
        start = time.time()
        emit(name, job())
        sys.stdout.write(
            f"[{name} done in {time.time() - start:.0f}s]\n\n"
        )
        sys.stdout.flush()


if __name__ == "__main__":
    main()
