"""Tests for the kernel profiler."""

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.obs import KernelProfiler
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule
from repro.topology import RingTopology
from repro.traffic.base import TrafficSpec
from repro.traffic.patterns import UniformTraffic


class Echo(SimModule):
    def handle_message(self, message):
        pass


class TestKernelProfiler:
    def test_counts_every_delivery(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        profiler = KernelProfiler(sim)
        for t in range(5):
            sim.schedule(t, module, Message(f"m{t}"))
        sim.run()
        assert profiler.events == 5
        assert profiler.events == sim.events_processed
        assert profiler.per_module == {"echo": 5}

    def test_pending_depth_tracks_backlog(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        profiler = KernelProfiler(sim)
        for t in range(1, 11):
            sim.schedule(t, module, Message(f"m{t}"))
        sim.run()
        # After the first delivery nine events remain queued, all
        # within the timing wheel's short horizon.
        assert profiler.max_pending_events == 9
        assert profiler.max_wheel_occupancy == 9
        assert profiler.max_overflow_occupancy == 0

    def test_overflow_occupancy_tracks_far_future_timers(self):
        from repro.sim.events import EventQueue

        sim = Simulator()
        module = Echo(sim, "echo")
        profiler = KernelProfiler(sim)
        horizon = EventQueue.WHEEL_SLOTS
        sim.schedule(1, module, Message("near"))
        sim.schedule(horizon + 10, module, Message("far"))
        sim.run()
        assert profiler.max_overflow_occupancy == 1

    def test_empty_profile(self):
        profiler = KernelProfiler(Simulator())
        assert profiler.events == 0
        assert profiler.wall_seconds == 0.0
        assert profiler.events_per_second == 0.0

    def test_detach_freezes_counters(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        profiler = KernelProfiler(sim)
        sim.schedule(1, module, Message("seen"))
        sim.run()
        profiler.detach()
        profiler.detach()  # idempotent
        sim.schedule(2, module, Message("unseen"))
        sim.run()
        assert profiler.events == 1

    def test_summary_of_network_run(self):
        topology = RingTopology(8)
        network = Network(
            topology,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(topology), 0.1),
            seed=2,
        )
        profiler = KernelProfiler(network.simulator)
        result = network.run(cycles=1_000, warmup=0)
        summary = profiler.summary(top_modules=3)
        assert summary["events"] == result.events_processed
        assert summary["max_pending_events"] > 0
        assert (
            summary["max_wheel_occupancy"]
            + summary["max_overflow_occupancy"]
            > 0
        )
        assert summary["wall_seconds"] > 0
        assert len(summary["per_module"]) == 3
        assert sum(profiler.per_module.values()) == summary["events"]
