"""Tests for utilization timelines (TimelineObserver + data model)."""

import json

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.obs import TimelineObserver, UtilizationTimeline
from repro.topology import MeshTopology, RingTopology
from repro.traffic.base import TrafficSpec
from repro.traffic.patterns import HotspotTraffic, UniformTraffic

CYCLES = 2_000
WINDOW = 100


def run_with_timeline(topology, pattern, rate, *, window=WINDOW,
                      cycles=CYCLES, seed=3):
    network = Network(
        topology,
        config=NocConfig(source_queue_packets=32),
        traffic=TrafficSpec(pattern, rate),
        seed=seed,
    )
    observer = TimelineObserver(network, window=window)
    network.run(cycles=cycles, warmup=0)
    return network, observer.timeline()


def non_local(counts):
    return {key: n for key, n in counts.items() if key[1] != "local"}


class TestObserverCounts:
    def test_totals_match_router_counters_exactly_when_drained(self):
        # The timeline is assembled purely from kernel deliveries; on
        # a drained network (no flits in flight) it must agree exactly
        # with the routers' own send counters.
        from repro.noc.packet import Packet

        topology = MeshTopology(3, 3)
        network = Network(topology)
        observer = TimelineObserver(network, window=10)
        for src, dst in [(0, 8), (8, 0), (2, 6), (4, 5)]:
            network.interfaces[src].enqueue_packet(
                Packet(src, dst, 2, created_at=0)
            )
        network.simulator.run(until=200)
        timeline = observer.timeline(cycles=200)
        used = {
            key: count
            for key, count in non_local(
                network.link_flit_counts()
            ).items()
            if count  # idle links have no timeline series
        }
        assert timeline.link_totals() == used
        assert sum(used.values()) > 0

    def test_totals_track_router_counters_under_load(self):
        # With traffic still flowing, the only discrepancy allowed is
        # the flits in flight on the wire when the horizon cuts off
        # (sent counter incremented, delivery event past `until`).
        topology = RingTopology(8)
        network, timeline = run_with_timeline(
            topology, UniformTraffic(topology), 0.15
        )
        sent = non_local(network.link_flit_counts())
        observed = timeline.link_totals()
        assert set(observed) <= set(sent)
        for key, count in sent.items():
            delivered = observed.get(key, 0)
            in_flight = count - delivered
            assert 0 <= in_flight <= 2 * network.config.link_delay

    def test_hotspot_incoming_links_are_busiest(self):
        # Paper Fig. 6 mechanism: hot-spot traffic saturates the
        # target's incoming links first.
        topology = RingTopology(16)
        _, timeline = run_with_timeline(
            topology, HotspotTraffic(topology, targets=[0]), 0.1
        )
        top_two = timeline.busiest_links(2)
        assert {(node, dst) for node, _, dst, _ in top_two} == {
            (15, 0),
            (1, 0),
        }

    def test_detach_freezes_counters(self):
        topology = RingTopology(8)
        network = Network(
            topology,
            config=NocConfig(source_queue_packets=32),
            traffic=TrafficSpec(UniformTraffic(topology), 0.2),
            seed=3,
        )
        observer = TimelineObserver(network, window=WINDOW)
        network.simulator.run(until=500)
        observer.detach()
        frozen = observer.timeline(cycles=500)
        network.simulator.run(until=CYCLES)
        assert observer.timeline(cycles=500) == frozen
        observer.detach()  # idempotent

    def test_window_validation(self):
        topology = RingTopology(4)
        network = Network(topology)
        with pytest.raises(ValueError):
            TimelineObserver(network, window=0)

    def test_timeline_of_unstarted_simulation_rejected(self):
        topology = RingTopology(4)
        network = Network(topology)
        observer = TimelineObserver(network)
        with pytest.raises(ValueError):
            observer.timeline()

    def test_occupancy_sampled_per_window(self):
        topology = RingTopology(8)
        _, timeline = run_with_timeline(
            topology, UniformTraffic(topology), 0.2
        )
        assert len(timeline.occupancy) == topology.num_nodes
        for series in timeline.occupancy:
            indices = [index for index, _ in series.samples]
            assert indices == sorted(set(indices))
            assert all(
                0 <= index < timeline.num_windows for index in indices
            )
        # Under sustained load the network holds flits in flight.
        assert any(s.peak > 0 for s in timeline.occupancy)


class TestDataModel:
    def _timeline(self):
        topology = RingTopology(8)
        _, timeline = run_with_timeline(
            topology, UniformTraffic(topology), 0.15
        )
        return timeline

    def test_json_round_trip_is_exact(self):
        timeline = self._timeline()
        blob = json.dumps(timeline.to_dict())
        assert UtilizationTimeline.from_dict(json.loads(blob)) == timeline

    def test_num_windows_covers_partial_tail(self):
        timeline = self._timeline()
        assert timeline.num_windows == -(-CYCLES // WINDOW)
        for series in timeline.links:
            assert len(series.counts) == timeline.num_windows

    def test_utilization_series_bounded_by_capacity(self):
        timeline = self._timeline()
        for series in timeline.links:
            values = timeline.utilization_series(series.node, series.port)
            assert all(0.0 <= value <= 1.0 for value in values)

    def test_busiest_links_sorted_and_complete(self):
        timeline = self._timeline()
        ranked = timeline.busiest_links(count=len(timeline.links))
        totals = timeline.link_totals()
        assert len(ranked) == len(totals)
        flits = [totals[(node, port)] for node, port, _, _ in ranked]
        assert flits == sorted(flits, reverse=True)

    def test_heat_table_mentions_busiest_link(self):
        timeline = self._timeline()
        table = timeline.heat_table(max_links=3)
        node, _, dst, _ = timeline.busiest_links(1)[0]
        assert f"{node}->{dst}" in table


class TestLinkAttrLabels:
    def _3d_timeline(self):
        from repro.topology import Mesh3DTopology

        topology = Mesh3DTopology(2, 2, 2, tsv_latency=2)
        _, timeline = run_with_timeline(
            topology, UniformTraffic(topology), 0.1
        )
        return timeline

    def test_series_carry_kind_and_latency(self):
        timeline = self._3d_timeline()
        by_port = {}
        for series in timeline.links:
            by_port.setdefault(series.port, series)
        assert by_port["up"].kind == "tsv"
        assert by_port["up"].latency == 2
        assert by_port["east"].kind == "planar"
        assert by_port["east"].latency == 1

    def test_attrs_survive_json_round_trip(self):
        timeline = self._3d_timeline()
        blob = json.dumps(timeline.to_dict())
        restored = UtilizationTimeline.from_dict(json.loads(blob))
        assert restored == timeline
        assert any(s.kind == "tsv" for s in restored.links)

    def test_legacy_dict_defaults_to_planar(self):
        # Blobs written before the heterogeneous-link model load with
        # the uniform attributes.
        timeline = self._3d_timeline()
        blob = timeline.to_dict()
        for entry in blob["links"]:
            del entry["kind"], entry["latency"]
        restored = UtilizationTimeline.from_dict(blob)
        assert all(s.kind == "planar" for s in restored.links)
        assert all(s.latency == 1 for s in restored.links)

    def test_heat_table_tags_tsv_links(self):
        timeline = self._3d_timeline()
        table = timeline.heat_table(max_links=len(timeline.links))
        assert ", tsv" in table

    def test_heat_table_unchanged_for_uniform(self):
        topology = RingTopology(8)
        _, timeline = run_with_timeline(
            topology, UniformTraffic(topology), 0.15
        )
        assert ", planar" not in timeline.heat_table(max_links=4)
