"""Tests for flit-lifecycle tracing (TraceSink + FlitTracer + CLI)."""

import json

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.obs import FlitTracer, TraceSink
from repro.topology import RingTopology
from repro.traffic.base import TrafficSpec
from repro.traffic.patterns import UniformTraffic


class TestTraceSink:
    def test_writes_jsonl(self):
        sink = TraceSink.in_memory()
        assert sink.write({"type": "a", "n": 1})
        assert sink.write({"type": "b"})
        lines = sink.text().splitlines()
        assert [json.loads(line) for line in lines] == [
            {"type": "a", "n": 1},
            {"type": "b"},
        ]
        assert sink.records_written == 2

    def test_limit_drops_and_counts(self):
        sink = TraceSink.in_memory(limit=2)
        results = [sink.write({"n": n}) for n in range(5)]
        assert results == [True, True, False, False, False]
        assert sink.records_written == 2
        assert sink.records_dropped == 3
        assert len(sink.text().splitlines()) == 2

    def test_disabled_sink_is_a_noop(self):
        sink = TraceSink.disabled()
        assert not sink.enabled
        assert not sink.write({"n": 1})
        assert sink.records_written == 0
        assert sink.records_dropped == 0

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            TraceSink.in_memory(limit=0)

    def test_to_path_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceSink.to_path(path) as sink:
            sink.write({"n": 1})
        assert json.loads(path.read_text()) == {"n": 1}

    def test_text_requires_in_memory(self, tmp_path):
        with TraceSink.to_path(tmp_path / "t.jsonl") as sink:
            with pytest.raises(TypeError):
                sink.text()


def traced_run(packets, until=300):
    """Run a traffic-less ring with *packets* injected by hand."""
    network = Network(RingTopology(8))
    sink = TraceSink.in_memory()
    tracer = FlitTracer(network, sink)
    for src, dst in packets:
        network.interfaces[src].enqueue_packet(
            Packet(src, dst, 2, created_at=0)
        )
    network.simulator.run(until=until)
    tracer.detach()
    return network, [
        json.loads(line) for line in sink.text().splitlines()
    ]


class TestFlitTracer:
    def test_lifecycle_ordering(self):
        _, records = traced_run([(0, 3)])
        by_flit = {}
        for record in records:
            by_flit.setdefault(record["flit"], []).append(record)
        assert by_flit  # something was traced
        for flit_records in by_flit.values():
            events = [r["ev"] for r in flit_records]
            assert events[0] in ("generate", "inject")
            assert events[-1] == "consume"
            hops = [r for r in flit_records if r["ev"] == "hop"]
            # 0 -> 3 on a ring of 8: three link traversals.
            assert len(hops) == 3
            times = [r["t"] for r in flit_records]
            assert times == sorted(times)

    def test_generate_emitted_once_per_packet(self):
        _, records = traced_run([(0, 3), (4, 6)])
        generates = [r for r in records if r["ev"] == "generate"]
        assert len(generates) == 2
        assert all(r["flit"] == 0 for r in generates)
        assert all(r["t"] == 0 for r in generates)  # created_at

    def test_hop_path_is_contiguous(self):
        _, records = traced_run([(0, 3)])
        head_hops = [
            r
            for r in records
            if r["ev"] == "hop" and r["flit"] == 0
        ]
        path = [head_hops[0]["from"]] + [r["node"] for r in head_hops]
        assert path == [0, 1, 2, 3]
        assert all("port" in r for r in head_hops)

    def test_schema_fields(self):
        _, records = traced_run([(0, 2)])
        for record in records:
            assert record["type"] == "flit"
            assert set(record) >= {"ev", "t", "pkt", "flit", "src", "dst"}
            if record["ev"] != "generate":
                assert "node" in record and "vc" in record
            if record["ev"] == "hop":
                assert "from" in record and "port" in record

    def test_detach_stops_recording(self):
        network = Network(RingTopology(8))
        sink = TraceSink.in_memory()
        tracer = FlitTracer(network, sink)
        tracer.detach()
        tracer.detach()  # idempotent
        network.interfaces[0].enqueue_packet(Packet(0, 3, 2, created_at=0))
        network.simulator.run(until=100)
        assert sink.records_written == 0

    def test_disabled_sink_records_nothing(self):
        topology = RingTopology(8)
        network = Network(
            topology,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(topology), 0.1),
            seed=1,
        )
        sink = TraceSink.disabled()
        FlitTracer(network, sink)
        network.run(cycles=500, warmup=0)
        assert sink.records_written == 0
        assert sink.records_dropped == 0


class TestTraceCli:
    def run_cli(self, tmp_path, *extra):
        from repro.__main__ import main

        out = tmp_path / "trace.jsonl"
        code = main(
            [
                "trace",
                "ring16",
                "hotspot:0",
                "0.1",
                "--cycles",
                "2000",
                "--out",
                str(out),
                *extra,
            ]
        )
        assert code == 0
        return [
            json.loads(line)
            for line in out.read_text().splitlines()
        ]

    def test_emits_valid_jsonl_with_all_record_types(self, tmp_path):
        records = self.run_cli(tmp_path)
        types = {r["type"] for r in records}
        assert types == {"meta", "flit", "link", "timeline", "summary"}
        assert records[0]["type"] == "meta"
        assert records[-1]["type"] == "summary"

    def test_hotspot_incoming_links_lead_the_ranking(self, tmp_path):
        # Acceptance criterion: the per-link utilization identifies
        # the hot-spot's incoming links as the most loaded.
        records = self.run_cli(tmp_path)
        links = [r for r in records if r["type"] == "link"]
        assert links == sorted(
            links, key=lambda r: r["flits"], reverse=True
        )
        assert {link["dst"] for link in links[:2]} == {0}

    def test_summary_reports_kernel_profile(self, tmp_path):
        records = self.run_cli(tmp_path, "--no-flits")
        assert not any(r["type"] == "flit" for r in records)
        summary = records[-1]
        assert summary["kernel"]["events"] > 0
        assert summary["result"]["events_processed"] == (
            summary["kernel"]["events"]
        )

    def test_limit_bounds_flit_records(self, tmp_path):
        records = self.run_cli(tmp_path, "--limit", "50")
        flits = [r for r in records if r["type"] == "flit"]
        assert len(flits) == 50 - 1  # one slot goes to the meta record
        assert records[-1]["flit_records_dropped"] > 0

    def test_rejects_bad_arguments(self, capsys):
        from repro.__main__ import main

        assert main(["trace", "ring16", "uniform", "0.1",
                     "--cycles", "0"]) != 0
        assert main(["trace", "nosuch16", "uniform", "0.1"]) != 0
        capsys.readouterr()
