"""Tests for the declarative campaign runner."""

import json

import pytest

from repro.experiments.campaign import (
    Campaign,
    parse_pattern,
    parse_topology,
)
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    TorusTopology,
)


class TestParsers:
    def test_topology_specs(self):
        assert isinstance(parse_topology("ring8"), RingTopology)
        assert isinstance(
            parse_topology("spidergon16"), SpidergonTopology
        )
        mesh = parse_topology("mesh4x6")
        assert isinstance(mesh, MeshTopology)
        assert (mesh.rows, mesh.cols) == (4, 6)
        factorized = parse_topology("mesh24")
        assert (factorized.rows, factorized.cols) == (4, 6)
        irregular = parse_topology("mesh-irregular13")
        assert irregular.num_nodes == 13
        assert not irregular.is_regular
        assert isinstance(parse_topology("torus3x3"), TorusTopology)
        from repro.topology import HypercubeTopology

        assert isinstance(
            parse_topology("hypercube16"), HypercubeTopology
        )

    def test_bad_topology_spec(self):
        with pytest.raises(ValueError):
            parse_topology("butterfly8")
        with pytest.raises(ValueError):
            parse_topology("hypercube12")  # not a power of two

    def test_pattern_specs(self):
        topology = SpidergonTopology(8)
        assert parse_pattern("uniform", topology).name == "uniform"
        hotspot = parse_pattern("hotspot:0,4", topology)
        assert hotspot.targets == [0, 4]
        assert parse_pattern("tornado", topology).name == "tornado"
        mesh = MeshTopology(3, 3)
        assert parse_pattern("transpose", mesh).name == "transpose"

    def test_bad_pattern_specs(self):
        topology = SpidergonTopology(8)
        with pytest.raises(ValueError):
            parse_pattern("randomly", topology)
        with pytest.raises(ValueError):
            parse_pattern("transpose", topology)


def small_spec(**overrides):
    spec = {
        "name": "smoke",
        "cycles": 800,
        "warmup": 100,
        "seed": 4,
        "source_queue_packets": 8,
        "topologies": ["ring8", "spidergon8"],
        "patterns": ["uniform", "hotspot:0"],
        "rates": [0.1],
    }
    spec.update(overrides)
    return spec


class TestCampaign:
    def test_requires_keys(self):
        with pytest.raises(ValueError):
            Campaign({"name": "x"})

    def test_from_json(self):
        campaign = Campaign.from_json(json.dumps(small_spec()))
        assert campaign.name == "smoke"
        assert len(campaign.runs()) == 4

    def test_execute_writes_csv(self, tmp_path):
        campaign = Campaign(small_spec())
        csv_path = tmp_path / "out.csv"
        results = campaign.execute(csv_path)
        assert len(results) == 4
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == 5  # header + 4 rows
        assert lines[0].startswith("topology,pattern,rate")
        assert lines[1].split(",")[0] == "ring8"

    def test_resume_skips_completed(self, tmp_path):
        campaign = Campaign(small_spec())
        csv_path = tmp_path / "out.csv"
        first = campaign.execute(csv_path)
        assert len(first) == 4
        second = campaign.execute(csv_path)
        assert second == []
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == 5  # no duplicates

    def test_progress_callback(self, tmp_path):
        campaign = Campaign(small_spec(rates=[0.05]))
        events = []
        campaign.execute(
            tmp_path / "out.csv",
            progress=lambda done, total, key: events.append(
                (done, total, key)
            ),
        )
        assert len(events) == 4
        assert events[-1][1] == 4

    def test_partial_resume(self, tmp_path):
        # Simulate an interrupted run by truncating the CSV, then
        # resume: only the missing cells execute.
        campaign = Campaign(small_spec())
        csv_path = tmp_path / "out.csv"
        campaign.execute(csv_path)
        lines = csv_path.read_text().strip().splitlines()
        csv_path.write_text("\n".join(lines[:3]) + "\n")  # keep 2 rows
        resumed = campaign.execute(csv_path)
        assert len(resumed) == 2
        assert len(
            csv_path.read_text().strip().splitlines()
        ) == 5


class TestCampaignTimeline:
    def test_spec_key_reaches_settings(self):
        campaign = Campaign(small_spec(timeline_window=250))
        assert campaign.settings.timeline_window == 250
        assert Campaign(small_spec()).settings.timeline_window is None

    def test_runs_export_timelines(self, tmp_path):
        campaign = Campaign(
            small_spec(timeline_window=200, rates=[0.1])
        )
        results = campaign.execute(tmp_path / "out.csv", cache=False)
        assert results
        for result in results:
            assert result.extra["timeline"]["window"] == 200
