"""Unit tests for figure data containers and rendering."""

import pytest

from repro.experiments.report import FigureData, format_table, to_csv


def sample_figure():
    figure = FigureData(
        "figX", "A test figure", "lambda", [0.1, 0.2, 0.3]
    )
    figure.add_series("ring8", [1.0, 2.0, 3.0])
    figure.add_series("mesh2x4", [1.5, None, 3.5])
    figure.notes.append("a note")
    return figure


class TestFigureData:
    def test_add_series_validates_length(self):
        figure = FigureData("f", "t", "x", [1, 2])
        with pytest.raises(ValueError):
            figure.add_series("bad", [1.0])

    def test_duplicate_label_rejected(self):
        figure = FigureData("f", "t", "x", [1])
        figure.add_series("a", [1.0])
        with pytest.raises(ValueError):
            figure.add_series("a", [2.0])

    def test_column_lookup(self):
        figure = sample_figure()
        assert figure.column("ring8") == [1.0, 2.0, 3.0]


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(sample_figure())
        assert "figX" in text
        assert "lambda" in text
        assert "ring8" in text
        assert "mesh2x4" in text
        assert "a note" in text

    def test_missing_values_rendered_as_dash(self):
        text = format_table(sample_figure())
        assert " -" in text

    def test_rows_align(self):
        lines = format_table(sample_figure()).splitlines()
        data_lines = [l for l in lines if l and l[0] != "=" and "(" not in l]
        widths = {len(l) for l in data_lines}
        assert len(widths) == 1

    def test_integers_rendered_without_decimals(self):
        figure = FigureData("f", "t", "N", [4, 8])
        figure.add_series("s", [2.0, 4.0])
        text = format_table(figure)
        assert "2" in text and "2.000" not in text


class TestCsv:
    def test_round_trips_values(self):
        csv = to_csv(sample_figure())
        lines = csv.strip().splitlines()
        assert lines[0] == "lambda,ring8,mesh2x4"
        assert len(lines) == 4
        first = lines[1].split(",")
        assert float(first[0]) == 0.1
        assert float(first[1]) == 1.0

    def test_none_becomes_empty_cell(self):
        csv = to_csv(sample_figure())
        assert ",," in csv or csv.strip().splitlines()[2].endswith(",")
