"""Smoke tests for the ablation studies (tiny sizes)."""

from repro.experiments import ablations
from repro.experiments.runner import SimulationSettings
from repro.noc.config import NocConfig

TINY = SimulationSettings(
    cycles=1_200,
    warmup=200,
    config=NocConfig(source_queue_packets=8),
    seed=3,
)


class TestAblations:
    def test_buffer_depth(self):
        figure = ablations.ablation_output_buffer_depth(
            settings=TINY, depths=(1, 3), num_nodes=8,
            injection_rate=0.3,
        )
        assert figure.x_values == [1, 3]
        assert set(figure.series) == {"ring8", "spidergon8", "mesh2x4"}

    def test_virtual_channels(self):
        figure = ablations.ablation_virtual_channels(
            settings=TINY, num_nodes=8, rates=(0.1,)
        )
        assert set(figure.series) == {
            "ring8-1vc",
            "ring8-2vc",
            "spidergon8-1vc",
            "spidergon8-2vc",
        }

    def test_spidergon_routing(self):
        figure = ablations.ablation_spidergon_routing(
            settings=TINY, num_nodes=8, rates=(0.1,)
        )
        assert set(figure.series) == {"across-first", "table"}

    def test_packet_size(self):
        figure = ablations.ablation_packet_size(
            settings=TINY, sizes=(2, 6), num_nodes=8,
            injection_rate=0.2,
        )
        assert set(figure.series) == {"throughput", "latency"}
        assert all(v > 0 for v in figure.column("throughput"))

    def test_mesh_policy_analytical(self):
        figure = ablations.ablation_mesh_policy(4, 24)
        # The irregular grid never has a larger diameter than the
        # factorized grid (it cannot degenerate to a strip).
        for fact, irr in zip(
            figure.column("factorized-ND"), figure.column("irregular-ND")
        ):
            assert irr <= fact

    def test_cli(self, capsys):
        assert ablations.main(["mesh-policy"]) == 0
        assert "mesh-policy" in capsys.readouterr().out
