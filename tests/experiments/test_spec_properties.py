"""Property-based tests for campaign spec-string parsing.

A malformed topology string must fail fast with a ValueError when the
campaign is being set up — never crash mid-sweep with something a
caller would not think to catch.  Uses hypothesis when installed,
with a parametrized fallback otherwise.
"""

import pytest

from repro.experiments.specs import parse_pattern, parse_topology
from repro.topology import CirculantTopology, MeshTopology, TorusTopology

try:
    from hypothesis import assume, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without dep
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)


@needs_hypothesis
class TestRoundTripProperties:
    @given(st.integers(min_value=3, max_value=200))
    def test_ring_node_count(self, n):
        assert parse_topology(f"ring{n}").num_nodes == n

    @given(st.integers(min_value=2, max_value=100))
    def test_spidergon_node_count(self, half):
        n = 2 * half  # spidergon needs an even node count >= 4
        topology = parse_topology(f"spidergon{n}")
        assert topology.num_nodes == n

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
    )
    def test_mesh_node_count(self, rows, cols):
        assume(rows * cols >= 2)  # a NoC needs at least 2 nodes
        topology = parse_topology(f"mesh{rows}x{cols}")
        assert isinstance(topology, MeshTopology)
        assert topology.num_nodes == rows * cols
        assert (topology.rows, topology.cols) == (rows, cols)

    @given(st.integers(min_value=2, max_value=200))
    def test_irregular_mesh_node_count(self, n):
        topology = parse_topology(f"mesh-irregular{n}")
        assert topology.num_nodes == n

    @given(st.integers(min_value=2, max_value=200))
    def test_factorized_mesh_node_count(self, n):
        assert parse_topology(f"mesh{n}").num_nodes == n

    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=3, max_value=12),
    )
    def test_torus_node_count(self, rows, cols):
        topology = parse_topology(f"torus{rows}x{cols}")
        assert isinstance(topology, TorusTopology)
        assert topology.num_nodes == rows * cols

    @given(
        st.integers(min_value=4, max_value=128).flatmap(
            lambda n: st.tuples(
                st.just(n), st.integers(min_value=2, max_value=n // 2)
            )
        )
    )
    def test_circulant_round_trips_through_its_name(self, params):
        """spec -> topology -> .name -> topology is the identity, so
        the name can serve as a campaign cache-key component."""
        n, s = params
        topology = parse_topology(f"circulant{n}s{s}")
        assert isinstance(topology, CirculantTopology)
        assert (topology.num_nodes, topology.skip) == (n, s)
        assert topology.name == f"circulant{n}s{s}"
        again = parse_topology(topology.name)
        assert (again.num_nodes, again.skip) == (n, s)

    @given(st.integers(min_value=0, max_value=300), st.data())
    def test_circulant_bad_parameters_raise_value_error(self, n, data):
        s = data.draw(st.integers(min_value=0, max_value=300))
        spec = f"circulant{n}s{s}"
        try:
            topology = parse_topology(spec)
        except ValueError:
            return
        assert 2 <= topology.skip <= topology.num_nodes // 2

    @given(st.text(max_size=30))
    @settings(max_examples=200)
    def test_arbitrary_text_raises_value_error_or_parses(self, text):
        """Whatever the input, parse_topology either returns a
        topology or raises ValueError — nothing else escapes."""
        try:
            topology = parse_topology(text)
        except ValueError:
            return
        assert topology.num_nodes >= 1

    @given(st.integers(min_value=0, max_value=10_000))
    def test_valid_grammar_bad_parameters_still_value_error(self, n):
        """Specs that match the grammar but name an impossible
        network (ring2, spidergon7, hypercube12, ...) raise
        ValueError subclasses, not arbitrary exceptions."""
        for template in ("ring{}", "spidergon{}", "hypercube{}",
                         "mesh-irregular{}", "torus{}x{}"):
            spec = template.format(n, n)
            try:
                topology = parse_topology(spec)
            except ValueError:
                continue
            assert topology.num_nodes >= 1


class TestMalformedSpecs:
    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "butterfly8",
            "ring",
            "ring-8",
            "ring8x8",
            "mesh4x",
            "meshx4",
            "mesh4x4x4",
            "torus4",
            "spidergon 8",
            "RING8",
            "ring8 ",
            "mesh-irregular",
            "hypercube",
            "8ring",
            "circulant16",
            "circulant16s",
            "circulants4",
            "circulant16x4",
        ],
    )
    def test_malformed_topology_raises_value_error(self, spec):
        with pytest.raises(ValueError):
            parse_topology(spec)

    @pytest.mark.parametrize(
        "spec",
        ["ring2", "spidergon7", "spidergon2", "torus2x4",
         "hypercube12", "mesh-irregular1", "mesh0x4",
         "circulant16s0", "circulant16s1", "circulant16s9",
         "circulant3s2"],
    )
    def test_impossible_parameters_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            parse_topology(spec)

    @pytest.mark.parametrize(
        "spec",
        ["randomly", "hotspot:", "hotspot:a,b", "hotspot:0;1",
         "transpose"],
    )
    def test_malformed_pattern_raises_value_error(self, spec):
        topology = parse_topology("ring8")
        with pytest.raises(ValueError):
            parse_pattern(spec, topology)

    @pytest.mark.parametrize("spec", ["shuffle", "bit-reverse"])
    def test_bit_permutation_patterns_parse_on_power_of_two(self, spec):
        pattern = parse_pattern(spec, parse_topology("ring16"))
        assert pattern.name == spec

    @pytest.mark.parametrize("spec", ["shuffle", "bit-reverse"])
    def test_bit_permutation_patterns_reject_other_sizes(self, spec):
        with pytest.raises(ValueError, match="power-of-two"):
            parse_pattern(spec, parse_topology("ring12"))

    def test_error_messages_name_the_spec(self):
        with pytest.raises(ValueError, match="butterfly8"):
            parse_topology("butterfly8")
        with pytest.raises(ValueError, match="randomly"):
            parse_pattern("randomly", parse_topology("ring8"))
        with pytest.raises(ValueError, match="circulant9x9"):
            parse_topology("circulant9x9")


class TestMesh3DSpecs:
    @pytest.mark.parametrize(
        "spec, dims, tsv",
        [
            ("mesh3d4x4x4", (4, 4, 4), 1),
            ("mesh3d4x4x4@tsv2", (4, 4, 4), 2),
            ("mesh3d2x3x4@tsv10", (2, 3, 4), 10),
            ("torus3d3x3x3", (3, 3, 3), 1),
            ("torus3d4x4x4@tsv4", (4, 4, 4), 4),
        ],
    )
    def test_parse_3d_grid(self, spec, dims, tsv):
        from repro.topology import Mesh3DTopology, Torus3DTopology

        topology = parse_topology(spec)
        expected = (
            Torus3DTopology if spec.startswith("torus") else Mesh3DTopology
        )
        assert isinstance(topology, expected)
        assert topology.sizes == dims
        assert topology.tsv_latency == tsv

    def test_name_round_trips(self):
        for spec in ("mesh3d4x4x4", "mesh3d3x3x2@tsv2", "torus3d3x4x5"):
            assert parse_topology(spec).name == spec

    def test_mesh3d_not_swallowed_by_mesh(self):
        # The catch-all mesh<N> pattern must not shadow mesh3d...
        from repro.topology import Mesh3DTopology

        assert isinstance(parse_topology("mesh3d4x4x4"), Mesh3DTopology)
        assert isinstance(parse_topology("mesh16"), MeshTopology)

    @pytest.mark.parametrize(
        "spec",
        ["mesh3d4x4", "mesh3d4x4x1", "torus3d2x3x3", "mesh3d4x4x4@tsv0"],
    )
    def test_bad_3d_specs_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            parse_topology(spec)

    def test_faulty_wraps_3d_specs(self):
        from repro.topology.faults import FaultyTopology

        topology = parse_topology("faulty:mesh3d3x3x3:2@7")
        assert isinstance(topology, FaultyTopology)

    def test_transpose_dispatches_by_dimensionality(self):
        from repro.traffic import Transpose3DTraffic, TransposeTraffic

        three_d = parse_pattern("transpose", parse_topology("mesh3d4x4x4"))
        assert isinstance(three_d, Transpose3DTraffic)
        two_d = parse_pattern("transpose", parse_topology("mesh4x4"))
        assert isinstance(two_d, TransposeTraffic)


class TestTopologyRegistry:
    def test_available_topologies_sorted_and_complete(self):
        from repro.experiments.specs import available_topologies

        families = available_topologies()
        prefixes = [family.prefix for family in families]
        assert prefixes == sorted(prefixes)
        for expected in ("ring", "spidergon", "mesh", "mesh3d",
                         "torus3d", "faulty"):
            assert expected in prefixes

    def test_examples_parse(self):
        from repro.experiments.specs import available_topologies

        for family in available_topologies():
            assert family.pattern.fullmatch(family.example)
            assert parse_topology(family.example) is not None
            assert family.description

    def test_duplicate_prefix_rejected(self):
        from repro.experiments.specs import register_topology

        with pytest.raises(ValueError, match="already registered"):
            register_topology(
                "ring", r"ring(\d+)", example="ring8", description="dup"
            )(lambda match: None)

    def test_new_registration_is_parseable(self):
        from repro.experiments import specs

        @specs.register_topology(
            "testonly-star",
            r"testonly-star(\d+)",
            example="testonly-star5",
            description="registry extension test fixture",
        )
        def _parse_star(match):
            from repro.topology import SpidergonTopology

            return SpidergonTopology(int(match.group(1)) * 2)

        try:
            topology = parse_topology("testonly-star5")
            assert topology.num_nodes == 10
        finally:
            del specs._TOPOLOGY_FAMILIES["testonly-star"]


class TestRoutingSuffix:
    """Topology specs with a trailing :<routing> segment."""

    def test_available_routings_names(self):
        from repro.experiments.specs import available_routings

        names = [family.name for family in available_routings()]
        assert names == sorted(names)
        for expected in (
            "adaptive",
            "adaptive-misroute",
            "o1turn",
            "paper",
            "table",
        ):
            assert expected in names

    def test_plain_spec_has_no_routing(self):
        from repro.experiments.specs import parse_topology_routing

        topology, routing = parse_topology_routing("ring8")
        assert topology.num_nodes == 8
        assert routing is None

    def test_adaptive_suffix(self):
        from repro.experiments.specs import parse_topology_routing
        from repro.routing import MinimalAdaptiveRouting

        topology, routing = parse_topology_routing("mesh4x4:adaptive")
        assert isinstance(routing, MinimalAdaptiveRouting)
        assert routing.topology is topology

    def test_suffix_composes_with_faulty_specs(self):
        from repro.experiments.specs import parse_topology_routing

        topology, routing = parse_topology_routing(
            "faulty:ring16:1@7:adaptive"
        )
        assert topology.num_nodes == 16
        assert routing is not None and routing.adaptive

    def test_mismatched_scheme_raises_value_error(self):
        from repro.experiments.specs import parse_topology_routing

        with pytest.raises(ValueError, match="does not fit"):
            parse_topology_routing("ring16:o1turn")

    def test_unknown_suffix_is_part_of_the_spec(self):
        from repro.experiments.specs import parse_topology_routing

        with pytest.raises(ValueError):
            parse_topology_routing("ring8:bogus-routing")
