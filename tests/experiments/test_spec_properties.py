"""Property-based tests for campaign spec-string parsing.

A malformed topology string must fail fast with a ValueError when the
campaign is being set up — never crash mid-sweep with something a
caller would not think to catch.  Uses hypothesis when installed,
with a parametrized fallback otherwise.
"""

import pytest

from repro.experiments.specs import parse_pattern, parse_topology
from repro.topology import CirculantTopology, MeshTopology, TorusTopology

try:
    from hypothesis import assume, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without dep
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)


@needs_hypothesis
class TestRoundTripProperties:
    @given(st.integers(min_value=3, max_value=200))
    def test_ring_node_count(self, n):
        assert parse_topology(f"ring{n}").num_nodes == n

    @given(st.integers(min_value=2, max_value=100))
    def test_spidergon_node_count(self, half):
        n = 2 * half  # spidergon needs an even node count >= 4
        topology = parse_topology(f"spidergon{n}")
        assert topology.num_nodes == n

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
    )
    def test_mesh_node_count(self, rows, cols):
        assume(rows * cols >= 2)  # a NoC needs at least 2 nodes
        topology = parse_topology(f"mesh{rows}x{cols}")
        assert isinstance(topology, MeshTopology)
        assert topology.num_nodes == rows * cols
        assert (topology.rows, topology.cols) == (rows, cols)

    @given(st.integers(min_value=2, max_value=200))
    def test_irregular_mesh_node_count(self, n):
        topology = parse_topology(f"mesh-irregular{n}")
        assert topology.num_nodes == n

    @given(st.integers(min_value=2, max_value=200))
    def test_factorized_mesh_node_count(self, n):
        assert parse_topology(f"mesh{n}").num_nodes == n

    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=3, max_value=12),
    )
    def test_torus_node_count(self, rows, cols):
        topology = parse_topology(f"torus{rows}x{cols}")
        assert isinstance(topology, TorusTopology)
        assert topology.num_nodes == rows * cols

    @given(
        st.integers(min_value=4, max_value=128).flatmap(
            lambda n: st.tuples(
                st.just(n), st.integers(min_value=2, max_value=n // 2)
            )
        )
    )
    def test_circulant_round_trips_through_its_name(self, params):
        """spec -> topology -> .name -> topology is the identity, so
        the name can serve as a campaign cache-key component."""
        n, s = params
        topology = parse_topology(f"circulant{n}s{s}")
        assert isinstance(topology, CirculantTopology)
        assert (topology.num_nodes, topology.skip) == (n, s)
        assert topology.name == f"circulant{n}s{s}"
        again = parse_topology(topology.name)
        assert (again.num_nodes, again.skip) == (n, s)

    @given(st.integers(min_value=0, max_value=300), st.data())
    def test_circulant_bad_parameters_raise_value_error(self, n, data):
        s = data.draw(st.integers(min_value=0, max_value=300))
        spec = f"circulant{n}s{s}"
        try:
            topology = parse_topology(spec)
        except ValueError:
            return
        assert 2 <= topology.skip <= topology.num_nodes // 2

    @given(st.text(max_size=30))
    @settings(max_examples=200)
    def test_arbitrary_text_raises_value_error_or_parses(self, text):
        """Whatever the input, parse_topology either returns a
        topology or raises ValueError — nothing else escapes."""
        try:
            topology = parse_topology(text)
        except ValueError:
            return
        assert topology.num_nodes >= 1

    @given(st.integers(min_value=0, max_value=10_000))
    def test_valid_grammar_bad_parameters_still_value_error(self, n):
        """Specs that match the grammar but name an impossible
        network (ring2, spidergon7, hypercube12, ...) raise
        ValueError subclasses, not arbitrary exceptions."""
        for template in ("ring{}", "spidergon{}", "hypercube{}",
                         "mesh-irregular{}", "torus{}x{}"):
            spec = template.format(n, n)
            try:
                topology = parse_topology(spec)
            except ValueError:
                continue
            assert topology.num_nodes >= 1


class TestMalformedSpecs:
    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "butterfly8",
            "ring",
            "ring-8",
            "ring8x8",
            "mesh4x",
            "meshx4",
            "mesh4x4x4",
            "torus4",
            "spidergon 8",
            "RING8",
            "ring8 ",
            "mesh-irregular",
            "hypercube",
            "8ring",
            "circulant16",
            "circulant16s",
            "circulants4",
            "circulant16x4",
        ],
    )
    def test_malformed_topology_raises_value_error(self, spec):
        with pytest.raises(ValueError):
            parse_topology(spec)

    @pytest.mark.parametrize(
        "spec",
        ["ring2", "spidergon7", "spidergon2", "torus2x4",
         "hypercube12", "mesh-irregular1", "mesh0x4",
         "circulant16s0", "circulant16s1", "circulant16s9",
         "circulant3s2"],
    )
    def test_impossible_parameters_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            parse_topology(spec)

    @pytest.mark.parametrize(
        "spec",
        ["randomly", "hotspot:", "hotspot:a,b", "hotspot:0;1",
         "transpose"],
    )
    def test_malformed_pattern_raises_value_error(self, spec):
        topology = parse_topology("ring8")
        with pytest.raises(ValueError):
            parse_pattern(spec, topology)

    @pytest.mark.parametrize("spec", ["shuffle", "bit-reverse"])
    def test_bit_permutation_patterns_parse_on_power_of_two(self, spec):
        pattern = parse_pattern(spec, parse_topology("ring16"))
        assert pattern.name == spec

    @pytest.mark.parametrize("spec", ["shuffle", "bit-reverse"])
    def test_bit_permutation_patterns_reject_other_sizes(self, spec):
        with pytest.raises(ValueError, match="power-of-two"):
            parse_pattern(spec, parse_topology("ring12"))

    def test_error_messages_name_the_spec(self):
        with pytest.raises(ValueError, match="butterfly8"):
            parse_topology("butterfly8")
        with pytest.raises(ValueError, match="randomly"):
            parse_pattern("randomly", parse_topology("ring8"))
        with pytest.raises(ValueError, match="circulant9x9"):
            parse_topology("circulant9x9")
