"""Tests for the parallel execution engine and result cache."""

import pickle

import pytest

from repro.experiments.campaign import Campaign
from repro.experiments.parallel import (
    CampaignManifest,
    ExecutionStats,
    FailedResult,
    ResultCache,
    canonical_rate,
    derive_seed,
    execute_points,
    point_key,
    run_sweep_point,
)
from repro.experiments.report import format_execution_summary
from repro.experiments.runner import SimulationSettings, SweepPoint
from repro.noc.config import NocConfig


def quick_settings(seed=1):
    return SimulationSettings(
        cycles=600,
        warmup=100,
        config=NocConfig(source_queue_packets=8),
        seed=seed,
    )


def small_spec(**overrides):
    spec = {
        "name": "parallel-smoke",
        "cycles": 600,
        "warmup": 100,
        "seed": 4,
        "source_queue_packets": 8,
        "topologies": ["ring8", "spidergon8"],
        "patterns": ["uniform", "hotspot:0"],
        "rates": [0.05, 0.1],
    }
    spec.update(overrides)
    return spec


def sorted_rows(csv_path):
    lines = csv_path.read_text().strip().splitlines()
    return lines[0], sorted(lines[1:])


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "ring8", "uniform", 0.1) == derive_seed(
            1, "ring8", "uniform", 0.1
        )

    def test_distinct_coordinates_distinct_seeds(self):
        seeds = {
            derive_seed(1, topo, pattern, rate)
            for topo in ("ring8", "spidergon8")
            for pattern in ("uniform", "hotspot:0")
            for rate in (0.05, 0.1)
        }
        assert len(seeds) == 8

    def test_root_seed_changes_streams(self):
        assert derive_seed(1, "ring8", "uniform", 0.1) != derive_seed(
            2, "ring8", "uniform", 0.1
        )


class TestSweepPoint:
    def test_picklable(self):
        point = SweepPoint("ring8", "uniform", 0.1, quick_settings())
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point

    def test_key_depends_on_every_coordinate(self):
        base = SweepPoint("ring8", "uniform", 0.1, quick_settings())
        variants = [
            SweepPoint("ring16", "uniform", 0.1, quick_settings()),
            SweepPoint("ring8", "tornado", 0.1, quick_settings()),
            SweepPoint("ring8", "uniform", 0.2, quick_settings()),
            SweepPoint("ring8", "uniform", 0.1, quick_settings(seed=2)),
        ]
        keys = {point_key(p) for p in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_run_sweep_point_matches_direct_run(self):
        from repro.experiments.runner import run_simulation
        from repro.experiments.specs import parse_pattern, parse_topology

        point = SweepPoint("spidergon8", "hotspot:0", 0.1,
                           quick_settings())
        via_point = run_sweep_point(point)
        topology = parse_topology(point.topology)
        direct = run_simulation(
            topology,
            parse_pattern(point.pattern, topology),
            point.rate,
            point.settings,
        )
        assert via_point == direct


class TestExecutePoints:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            execute_points([], workers=0)

    def test_results_in_input_order(self):
        points = [
            SweepPoint("ring8", "uniform", rate, quick_settings())
            for rate in (0.1, 0.05)
        ]
        results, stats = execute_points(points, workers=1)
        assert [r.injection_rate for r in results] == [0.1, 0.05]
        assert stats.executed == 2
        assert stats.total_points == 2

    def test_parallel_results_match_serial(self):
        points = [
            SweepPoint(topo, "uniform", rate, quick_settings())
            for topo in ("ring8", "spidergon8")
            for rate in (0.05, 0.1)
        ]
        serial, _ = execute_points(points, workers=1)
        parallel, stats = execute_points(points, workers=2)
        assert parallel == serial
        assert stats.workers == 2

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        points = [
            SweepPoint("ring8", "uniform", 0.1, quick_settings())
        ]
        first, stats1 = execute_points(points, cache=cache)
        assert (stats1.cache_hits, stats1.cache_misses) == (0, 1)
        assert stats1.executed == 1
        second, stats2 = execute_points(points, cache=cache)
        assert (stats2.cache_hits, stats2.cache_misses) == (1, 0)
        assert stats2.executed == 0
        assert second == first

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        point = SweepPoint("ring8", "uniform", 0.1, quick_settings())
        execute_points([point], cache=cache)
        entry = cache._path(point)
        entry.write_text("{not json")
        results, stats = execute_points([point], cache=cache)
        assert stats.executed == 1
        assert results[0].packets_generated > 0

    def test_on_result_callback(self):
        seen = []
        points = [
            SweepPoint("ring8", "uniform", rate, quick_settings())
            for rate in (0.05, 0.1)
        ]
        execute_points(
            points,
            workers=1,
            on_result=lambda i, p, r, cached: seen.append(
                (i, p.rate, cached)
            ),
        )
        assert seen == [(0, 0.05, False), (1, 0.1, False)]


class TestCampaignParallel:
    def test_serial_parallel_csv_equivalence(self, tmp_path):
        """The acceptance criterion: workers=1 and workers>1 produce
        byte-identical CSVs after sorting the data rows."""
        serial_csv = tmp_path / "serial.csv"
        parallel_csv = tmp_path / "parallel.csv"
        Campaign(small_spec()).execute(
            serial_csv, workers=1, cache=False
        )
        Campaign(small_spec()).execute(
            parallel_csv, workers=2, cache=False
        )
        assert sorted_rows(serial_csv) == sorted_rows(parallel_csv)

    def test_cache_shared_across_campaigns(self, tmp_path):
        """Overlapping campaigns skip points the cache already holds."""
        first = Campaign(small_spec())
        first.execute(tmp_path / "a.csv", cache_dir=tmp_path / "cache")
        assert first.last_stats.executed == 8
        overlapping = Campaign(small_spec(name="other"))
        overlapping.execute(
            tmp_path / "b.csv", cache_dir=tmp_path / "cache"
        )
        assert overlapping.last_stats.executed == 0
        assert overlapping.last_stats.cache_hits == 8
        assert sorted_rows(tmp_path / "a.csv") == sorted_rows(
            tmp_path / "b.csv"
        )

    def test_no_cache_disables_cache(self, tmp_path):
        campaign = Campaign(small_spec())
        campaign.execute(tmp_path / "a.csv", cache=False)
        assert campaign.last_stats.cache_hits == 0
        assert campaign.last_stats.cache_misses == 0
        assert not (tmp_path / ".repro-cache").exists()

    def test_progress_counts_monotonic(self, tmp_path):
        events = []
        Campaign(small_spec()).execute(
            tmp_path / "out.csv",
            progress=lambda done, total, key: events.append(
                (done, total)
            ),
            workers=2,
        )
        assert [done for done, _ in events] == list(range(1, 9))
        assert all(total == 8 for _, total in events)


class TestFailFastValidation:
    def test_bad_topology_aborts_before_any_run(self, tmp_path):
        campaign = Campaign(
            small_spec(topologies=["ring8", "butterfly9"])
        )
        csv_path = tmp_path / "out.csv"
        with pytest.raises(ValueError, match="butterfly9"):
            campaign.execute(csv_path, workers=2)
        assert not csv_path.exists()  # no rows, not even a header

    def test_pattern_topology_mismatch_names_both(self, tmp_path):
        campaign = Campaign(small_spec(patterns=["transpose"]))
        with pytest.raises(ValueError, match="transpose.*ring8"):
            campaign.execute(tmp_path / "out.csv")

    def test_cli_rejects_bad_specs_cleanly(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(small_spec(topologies=["butterfly9"]))
        )
        code = main(
            ["campaign", str(spec_path), str(tmp_path / "out.csv")]
        )
        assert code == 2
        assert "butterfly9" in capsys.readouterr().out

    def test_cli_rejects_zero_workers(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(small_spec()))
        code = main(
            [
                "campaign",
                str(spec_path),
                str(tmp_path / "out.csv"),
                "--workers",
                "0",
            ]
        )
        assert code == 2


class TestExecutionSummary:
    def test_format_execution_summary(self):
        stats = ExecutionStats(
            workers=4,
            total_points=10,
            executed=3,
            cache_hits=7,
            cache_misses=3,
            wall_seconds=1.5,
        )
        text = format_execution_summary(stats)
        assert "10 points" in text
        assert "3 simulated" in text
        assert "workers 4" in text
        assert "7 hits / 3 misses" in text

    def test_summary_reports_event_rate(self):
        stats = ExecutionStats(
            workers=2,
            total_points=4,
            executed=4,
            wall_seconds=2.0,
            events_processed=50_000,
        )
        text = format_execution_summary(stats)
        assert "50000 events" in text
        assert "25,000/s" in text
        assert stats.events_per_second == 25_000.0

    def test_zero_events_omitted_from_summary(self):
        stats = ExecutionStats(workers=1, total_points=1, executed=0)
        assert "events" not in format_execution_summary(stats)


class TestTimelineExport:
    def points_with_timeline(self):
        settings = quick_settings()
        settings = SimulationSettings(
            cycles=settings.cycles,
            warmup=settings.warmup,
            config=settings.config,
            seed=settings.seed,
            timeline_window=100,
        )
        return [
            SweepPoint(topo, "hotspot:0", rate, settings)
            for topo in ("ring8", "spidergon8")
            for rate in (0.05, 0.1)
        ]

    def test_runner_exports_timeline_when_requested(self):
        results, _ = execute_points(
            self.points_with_timeline(), workers=1
        )
        for result in results:
            timeline = result.extra["timeline"]
            assert timeline["window"] == 100
            assert timeline["cycles"] == 600
            assert timeline["links"]

    def test_serial_and_parallel_timelines_identical(self):
        # The exported timeline is part of the result payload, so the
        # serial/parallel equivalence guarantee covers it too.
        points = self.points_with_timeline()
        serial, _ = execute_points(points, workers=1)
        parallel, _ = execute_points(points, workers=2)
        assert [r.extra["timeline"] for r in parallel] == [
            r.extra["timeline"] for r in serial
        ]

    def test_timeline_survives_cache_round_trip(self, tmp_path):
        points = self.points_with_timeline()[:1]
        cache = ResultCache(tmp_path / "cache")
        first, stats1 = execute_points(points, cache=cache)
        again, stats2 = execute_points(points, cache=cache)
        assert stats1.cache_misses == 1
        assert stats2.cache_hits == 1
        assert again[0].extra["timeline"] == first[0].extra["timeline"]

    def test_window_changes_cache_key(self):
        base = self.points_with_timeline()[0]
        other = SweepPoint(
            base.topology,
            base.pattern,
            base.rate,
            SimulationSettings(
                cycles=base.settings.cycles,
                warmup=base.settings.warmup,
                config=base.settings.config,
                seed=base.settings.seed,
                timeline_window=200,
            ),
        )
        assert point_key(base) != point_key(other)


class TestCanonicalRate:
    """derive_seed and point_key must agree on one rate spelling.

    Historically derive_seed formatted rates with ``.6g`` while
    point_key used ``repr`` — two rates differing only past the sixth
    significant digit collided to one seed while keying two cache
    entries.  Both now go through :func:`canonical_rate`.
    """

    # Distinct floats, identical under the old "%.6g" formatting.
    COLLIDING = (0.1234567, 0.1234568)

    def test_colliding_rates_get_distinct_seeds(self):
        low, high = self.COLLIDING
        assert f"{low:.6g}" == f"{high:.6g}"  # the old collision
        assert derive_seed(1, "ring8", "uniform", low) != derive_seed(
            1, "ring8", "uniform", high
        )

    def test_colliding_rates_get_distinct_keys(self):
        low, high = self.COLLIDING
        points = [
            SweepPoint("ring8", "uniform", rate, quick_settings())
            for rate in self.COLLIDING
        ]
        assert point_key(points[0]) != point_key(points[1])

    def test_sweep_rates_keep_their_historical_spelling(self):
        # repr and .6g agree on every rate the paper sweeps use, so
        # canonicalising did not silently reseed existing campaigns.
        for rate in (0.05, 0.1, 0.2, 0.3, 0.4, 0.6):
            assert canonical_rate(rate) == f"{rate:.6g}"

    def test_int_rate_matches_equal_float(self):
        assert canonical_rate(1) == canonical_rate(1.0)
        assert derive_seed(1, "ring8", "uniform", 1) == derive_seed(
            1, "ring8", "uniform", 1.0
        )


class TestCampaignManifestResume:
    """Latest-entry-wins resume semantics of the JSONL manifest."""

    _OK = object()  # manifest_entry only checks for FailedResult

    def point(self, rate=0.1):
        return SweepPoint("ring8", "uniform", rate, quick_settings())

    def failed(self, point, attempts=2):
        return FailedResult(
            topology=point.topology,
            pattern=point.pattern,
            rate=point.rate,
            seed=point.settings.seed,
            error="timeout",
            detail="deadline of 0.5s exceeded",
            attempts=attempts,
        )

    def test_ok_then_failed_means_not_completed(self, tmp_path):
        manifest = CampaignManifest(tmp_path / "m.jsonl")
        point = self.point()
        manifest.record(point, self._OK, cached=False)
        manifest.record(point, self.failed(point), cached=False)
        assert manifest.completed_keys() == set()
        (failure,) = manifest.failures()
        assert failure["key"] == point_key(point)
        assert failure["error"] == "timeout"
        assert failure["attempts"] == 2

    def test_failed_then_ok_means_completed(self, tmp_path):
        manifest = CampaignManifest(tmp_path / "m.jsonl")
        point = self.point()
        manifest.record(point, self.failed(point), cached=False)
        manifest.record(point, self._OK, cached=False)
        assert manifest.completed_keys() == {point_key(point)}
        assert manifest.failures() == []

    def test_mixed_keys_resolve_independently(self, tmp_path):
        manifest = CampaignManifest(tmp_path / "m.jsonl")
        healthy = self.point(0.05)
        flaky = self.point(0.1)
        doomed = self.point(0.2)
        manifest.record(healthy, self._OK, cached=False)
        manifest.record(flaky, self.failed(flaky), cached=False)
        manifest.record(doomed, self.failed(doomed), cached=False)
        manifest.record(flaky, self._OK, cached=False)  # retried fine
        assert manifest.completed_keys() == {
            point_key(healthy),
            point_key(flaky),
        }
        (failure,) = manifest.failures()
        assert failure["key"] == point_key(doomed)

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        manifest = CampaignManifest(tmp_path / "m.jsonl")
        point = self.point()
        manifest.record(point, self._OK, cached=False)
        with manifest.path.open("a") as handle:
            handle.write('{"key": "abc", "status": "o')  # died mid-write
        assert len(manifest.entries()) == 1
        assert manifest.completed_keys() == {point_key(point)}
        # A resumed campaign appends after the torn line; the repaired
        # log still parses (the torn fragment stays skipped).
        with manifest.path.open("a") as handle:
            handle.write("\n")
        other = self.point(0.3)
        manifest.record(other, self._OK, cached=False)
        assert manifest.completed_keys() == {
            point_key(point),
            point_key(other),
        }

    def test_blank_lines_and_missing_file_are_harmless(self, tmp_path):
        manifest = CampaignManifest(tmp_path / "m.jsonl")
        assert manifest.entries() == []
        assert manifest.completed_keys() == set()
        assert manifest.failures() == []
        point = self.point()
        manifest.record(point, self._OK, cached=False)
        with manifest.path.open("a") as handle:
            handle.write("\n\n")
        manifest.record(point, self.failed(point), cached=False)
        assert len(manifest.entries()) == 2
        assert manifest.completed_keys() == set()
