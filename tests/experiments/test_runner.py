"""Unit tests for the experiment runner."""

import pytest

from repro.experiments.runner import (
    SimulationSettings,
    run_simulation,
    sweep_injection_rates,
)
from repro.noc.config import NocConfig
from repro.routing import TableRouting
from repro.topology import SpidergonTopology
from repro.traffic import UniformTraffic


SETTINGS = SimulationSettings(
    cycles=2_000,
    warmup=400,
    config=NocConfig(source_queue_packets=16),
    seed=5,
)


class TestSettings:
    def test_scaled(self):
        scaled = SETTINGS.scaled(0.5)
        assert scaled.cycles == 1_000
        assert scaled.warmup == 200
        assert scaled.config is SETTINGS.config

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SETTINGS.scaled(0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SETTINGS.cycles = 1


class TestRunSimulation:
    def test_returns_identified_result(self):
        topology = SpidergonTopology(8)
        result = run_simulation(
            topology, UniformTraffic(topology), 0.1, SETTINGS
        )
        assert result.topology_name == "spidergon8"
        assert result.pattern_name == "uniform"
        assert result.injection_rate == 0.1
        assert result.cycles == 2_000
        assert result.num_sources == 8
        assert result.throughput > 0

    def test_custom_routing_respected(self):
        topology = SpidergonTopology(8)
        result = run_simulation(
            topology,
            UniformTraffic(topology),
            0.1,
            SETTINGS,
            routing=TableRouting(topology),
        )
        assert result.routing_name.startswith("table/")

    def test_deterministic_given_settings(self):
        topology = SpidergonTopology(8)
        a = run_simulation(topology, UniformTraffic(topology), 0.1, SETTINGS)
        b = run_simulation(topology, UniformTraffic(topology), 0.1, SETTINGS)
        assert a.throughput == b.throughput
        assert a.avg_latency == b.avg_latency


class TestSweep:
    def test_one_result_per_rate(self):
        topology = SpidergonTopology(8)
        results = sweep_injection_rates(
            topology, UniformTraffic(topology), [0.05, 0.1], SETTINGS
        )
        assert [r.injection_rate for r in results] == [0.05, 0.1]

    def test_throughput_nondecreasing_below_saturation(self):
        topology = SpidergonTopology(8)
        results = sweep_injection_rates(
            topology,
            UniformTraffic(topology),
            [0.02, 0.08, 0.2],
            SETTINGS,
        )
        throughputs = [r.throughput for r in results]
        assert throughputs[0] < throughputs[-1]


class TestRunnerObservability:
    def test_profile_stores_kernel_summary(self):
        topology = SpidergonTopology(8)
        result = run_simulation(
            topology,
            UniformTraffic(topology),
            0.1,
            SETTINGS,
            profile=True,
        )
        kernel = result.extra["kernel"]
        assert kernel["events"] == result.events_processed > 0
        assert kernel["max_pending_events"] > 0

    def test_no_profile_keeps_extra_clean(self):
        topology = SpidergonTopology(8)
        result = run_simulation(
            topology, UniformTraffic(topology), 0.1, SETTINGS
        )
        assert "kernel" not in result.extra
        assert "timeline" not in result.extra

    def test_observer_factories_see_the_network(self):
        from repro.obs import KernelProfiler

        captured = []

        def attach(network):
            captured.append(KernelProfiler(network.simulator))

        topology = SpidergonTopology(8)
        result = run_simulation(
            topology,
            UniformTraffic(topology),
            0.1,
            SETTINGS,
            observers=[attach],
        )
        (profiler,) = captured
        assert profiler.events == result.events_processed
