"""Tests for the equal-cost Spidergon-vs-circulant study."""

import pytest

from repro.experiments.circulant import (
    CandidateResult,
    candidate_skips,
    equal_cost_study,
    format_study,
    main as circulant_main,
    static_metrics,
)
from repro.experiments.parallel import derive_seed, point_key
from repro.experiments.runner import SimulationSettings, SweepPoint
from repro.topology import SpidergonTopology
from repro.cost.wires import total_wire_length

FAST = SimulationSettings(cycles=1_200, warmup=200, seed=5)


class TestStaticMetrics:
    def test_reference_is_the_spidergon(self):
        reference = static_metrics(16, None)
        assert reference.spec == "spidergon16"
        assert reference.is_reference
        assert reference.num_links == 48
        assert reference.wire_length == pytest.approx(
            total_wire_length(SpidergonTopology(16))
        )

    def test_diametral_candidate_matches_reference(self):
        # circulant16s8 IS the Spidergon; every static number agrees.
        reference = static_metrics(16, None)
        diametral = static_metrics(16, 8)
        assert diametral.diameter == reference.diameter
        assert diametral.average_distance == pytest.approx(
            reference.average_distance
        )
        assert diametral.num_links == reference.num_links
        assert diametral.wire_length == pytest.approx(
            reference.wire_length
        )

    def test_candidate_skips_cover_canonical_range(self):
        assert candidate_skips(16) == [2, 3, 4, 5, 6, 7, 8]

    def test_short_chords_cost_less_wire(self):
        # sin is increasing on [0, pi/2]: shorter chords, less wire
        # even with 4N links vs the Spidergon's 3N at N=16.
        assert (
            static_metrics(16, 2).wire_length
            < static_metrics(16, None).wire_length
        )


class TestStudy:
    def test_rejects_odd_n(self):
        with pytest.raises(ValueError, match="even"):
            equal_cost_study(15, settings=FAST)

    def test_rejects_empty_rates(self):
        with pytest.raises(ValueError):
            equal_cost_study(8, rates=(), settings=FAST)

    def test_study_shape_and_winner(self):
        study = equal_cost_study(
            8, rates=(0.05, 0.5), settings=FAST, skips=[2, 3, 4]
        )
        assert [c.skip for c in study.candidates] == [2, 3, 4]
        assert study.reference.latency is not None
        for candidate in study.candidates:
            assert len(candidate.throughput_curve) == 2
            assert candidate.saturation_throughput is not None
        # The diametral candidate (s=4 == N/2) never wins: it is the
        # reference itself.
        if study.winner is not None:
            assert study.winner.skip != 4
            assert (
                study.winner.wire_length
                <= study.reference.wire_length + 1e-9
            )

    def test_figure_has_one_series_per_topology(self):
        study = equal_cost_study(
            8, rates=(0.3,), settings=FAST, skips=[2]
        )
        assert set(study.figure.series) == {"spidergon8", "circulant8s2"}

    def test_format_study_reports_winner_line(self):
        study = equal_cost_study(
            8, rates=(0.05, 0.5), settings=FAST, skips=[2, 3]
        )
        text = format_study(study)
        assert "spidergon8" in text
        assert "circulant8s2" in text
        if study.winner is not None:
            assert "winner at equal cost" in text

    def test_equal_cost_filter_matches_wire_rule(self):
        study = equal_cost_study(
            8, rates=(0.3,), settings=FAST, skips=[2, 3, 4]
        )
        budget = study.reference.wire_length
        assert {c.spec for c in study.equal_cost_candidates} == {
            c.spec
            for c in study.candidates
            if c.wire_length <= budget + 1e-9
        }
        # The diametral candidate always fits (it IS the reference).
        assert "circulant8s4" in {
            c.spec for c in study.equal_cost_candidates
        }

    def test_short_chord_fits_budget_at_n16(self):
        # At N=16 the s=2 circulant undercuts the Spidergon's wire
        # budget despite its 4N links — the regime the study exploits.
        assert (
            static_metrics(16, 2).wire_length
            < static_metrics(16, None).wire_length
        )
        # ... but at N=8 it does not: the link-count overhead wins.
        assert (
            static_metrics(8, 2).wire_length
            > static_metrics(8, None).wire_length
        )


class TestCli:
    def test_main_runs(self, capsys):
        code = circulant_main(
            ["8", "--rates", "0.05,0.4", "--cycles", "1200",
             "--warmup", "200"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "equal-cost circulant study" in out
        assert "ext-circulant" in out

    def test_main_rejects_odd_n(self, capsys):
        assert circulant_main(["9"]) == 2
        assert "even" in capsys.readouterr().out


class TestCacheKeys:
    """Circulant specs flow through the campaign cache unchanged."""

    def test_point_key_stable_and_spec_sensitive(self):
        settings = SimulationSettings(cycles=100, warmup=10, seed=1)
        point = SweepPoint("circulant16s4", "uniform", 0.1, settings)
        same = SweepPoint("circulant16s4", "uniform", 0.1, settings)
        other = SweepPoint("circulant16s5", "uniform", 0.1, settings)
        assert point_key(point) == point_key(same)
        assert point_key(point) != point_key(other)

    def test_derive_seed_distinguishes_chords(self):
        a = derive_seed(1, "circulant16s4", "uniform", 0.1)
        b = derive_seed(1, "circulant16s5", "uniform", 0.1)
        assert a != b
        assert a == derive_seed(1, "circulant16s4", "uniform", 0.1)

    def test_campaign_validate_accepts_circulant_specs(self):
        from repro.experiments.campaign import Campaign

        campaign = Campaign(
            {
                "name": "circulant-smoke",
                "topologies": ["circulant16s4", "spidergon16"],
                "patterns": ["uniform", "shuffle", "bit-reverse"],
                "rates": [0.1],
                "cycles": 200,
                "warmup": 20,
            }
        )
        campaign.validate()

    def test_campaign_validate_names_bad_circulant_spec(self):
        from repro.experiments.campaign import Campaign

        campaign = Campaign(
            {
                "name": "bad",
                "topologies": ["circulant16s99"],
                "patterns": ["uniform"],
                "rates": [0.1],
            }
        )
        with pytest.raises(ValueError):
            campaign.validate()

    def test_candidate_result_defaults(self):
        candidate = CandidateResult(
            spec="circulant8s2",
            skip=2,
            diameter=2,
            average_distance=1.5,
            num_links=32,
            wire_length=30.0,
        )
        assert candidate.latency is None
        assert candidate.throughput_curve == []
        assert not candidate.is_reference
