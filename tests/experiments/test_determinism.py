"""Determinism regressions: same seed, same results — always.

These tests pin the property the parallel execution engine depends
on: a simulation is a pure function of (topology, pattern, rate,
settings), so seeds derived from sweep coordinates make execution
order irrelevant.
"""

import dataclasses

import pytest

from repro.experiments.campaign import Campaign
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.specs import parse_pattern, parse_topology
from repro.noc.config import NocConfig
from repro.stats.summary import RunResult


def quick_settings():
    return SimulationSettings(
        cycles=600,
        warmup=100,
        config=NocConfig(source_queue_packets=8),
        seed=99,
    )


def small_spec():
    return {
        "name": "determinism",
        "cycles": 600,
        "warmup": 100,
        "seed": 7,
        "source_queue_packets": 8,
        "topologies": ["ring8", "spidergon8"],
        "patterns": ["uniform", "hotspot:0"],
        "rates": [0.1],
    }


class TestRunDeterminism:
    @pytest.mark.parametrize(
        "topo_spec,pattern_spec",
        [
            ("ring8", "uniform"),
            ("spidergon8", "hotspot:0"),
            ("mesh3x3", "transpose"),
        ],
    )
    def test_same_seed_same_result(self, topo_spec, pattern_spec):
        def one_run():
            topology = parse_topology(topo_spec)
            pattern = parse_pattern(pattern_spec, topology)
            return run_simulation(
                topology, pattern, 0.1, quick_settings()
            )

        first, second = one_run(), one_run()
        assert first == second

    def test_result_survives_dict_round_trip(self):
        topology = parse_topology("ring8")
        result = run_simulation(
            topology,
            parse_pattern("uniform", topology),
            0.1,
            quick_settings(),
        )
        clone = RunResult.from_dict(result.to_dict())
        assert clone == result
        # Field-by-field too, so a future non-comparable field type
        # fails loudly here rather than silently weakening ==.
        assert dataclasses.asdict(clone) == dataclasses.asdict(result)


class TestCampaignResumeDeterminism:
    @pytest.mark.parametrize("cache", [True, False])
    def test_resume_reproduces_missing_rows(self, tmp_path, cache):
        """Deleting half the CSV rows and resuming regenerates
        exactly the deleted rows — via the cache when enabled, via
        re-simulation when not."""
        csv_path = tmp_path / "out.csv"
        campaign = Campaign(small_spec())
        campaign.execute(csv_path, cache=cache)
        lines = csv_path.read_text().strip().splitlines()
        header, rows = lines[0], lines[1:]
        assert len(rows) == 4
        kept, deleted = rows[:2], rows[2:]
        csv_path.write_text("\n".join([header] + kept) + "\n")

        resumed = Campaign(small_spec())
        results = resumed.execute(csv_path, cache=cache)
        assert len(results) == 2
        if cache:
            assert resumed.last_stats.cache_hits == 2
            assert resumed.last_stats.executed == 0
        else:
            assert resumed.last_stats.executed == 2
        after = csv_path.read_text().strip().splitlines()
        assert after[0] == header
        assert sorted(after[1:]) == sorted(rows)
        # The regenerated rows are byte-identical to the deleted ones.
        assert sorted(set(after[1:]) - set(kept)) == sorted(deleted)

    def test_parallel_resume_matches_serial_resume(self, tmp_path):
        serial_csv = tmp_path / "serial.csv"
        parallel_csv = tmp_path / "parallel.csv"
        for path, workers in ((serial_csv, 1), (parallel_csv, 2)):
            campaign = Campaign(small_spec())
            campaign.execute(path, workers=workers, cache=False)
            lines = path.read_text().strip().splitlines()
            path.write_text("\n".join(lines[:3]) + "\n")
            Campaign(small_spec()).execute(
                path, workers=workers, cache=False
            )
        serial = serial_csv.read_text().strip().splitlines()
        parallel = parallel_csv.read_text().strip().splitlines()
        assert serial[0] == parallel[0]
        assert sorted(serial[1:]) == sorted(parallel[1:])
