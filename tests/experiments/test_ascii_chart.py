"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.experiments.ascii_chart import MARKERS, render_chart
from repro.experiments.report import FigureData


def figure(series=None, xs=(1.0, 2.0, 3.0)):
    fig = FigureData("figT", "Test", "x", list(xs))
    for label, values in (series or {"a": [1.0, 2.0, 3.0]}).items():
        fig.add_series(label, values)
    return fig


class TestRendering:
    def test_contains_title_axis_and_legend(self):
        text = render_chart(figure())
        assert "figT: Test" in text
        assert "legend: o = a" in text
        assert text.rstrip().splitlines()[-2].strip() == "x"

    def test_extremes_on_axis_labels(self):
        text = render_chart(
            figure({"a": [0.0, 50.0, 100.0]})
        )
        assert "100" in text
        assert " 0 |" in text or "0 |" in text

    def test_marker_per_series(self):
        text = render_chart(
            figure({"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        )
        assert "o = a" in text
        assert "x = b" in text
        plot_lines = [l for l in text.splitlines() if "|" in l]
        plot = "\n".join(plot_lines)
        assert "o" in plot
        assert "x" in plot

    def test_none_points_skipped(self):
        text = render_chart(figure({"a": [1.0, None, 3.0]}))
        assert "figT" in text

    def test_monotone_series_is_monotone_on_grid(self):
        text = render_chart(figure({"a": [1.0, 2.0, 3.0]}))
        rows = [
            (i, line.index("o"))
            for i, line in enumerate(text.splitlines())
            if "o" in line and "|" in line
        ]
        # Later columns must appear on earlier (higher) rows.
        cols = [c for _, c in sorted(rows)]
        assert cols == sorted(cols, reverse=True)

    def test_constant_series_renders(self):
        text = render_chart(figure({"a": [5.0, 5.0, 5.0]}))
        assert "o" in text

    def test_many_series_wrap_markers(self):
        labels = {f"s{i}": [float(i)] * 3 for i in range(len(MARKERS) + 2)}
        text = render_chart(figure(labels))
        assert f"{MARKERS[0]} = s0" in text
        assert f"{MARKERS[0]} = s{len(MARKERS)}" in text


class TestValidation:
    def test_rejects_tiny_geometry(self):
        with pytest.raises(ValueError):
            render_chart(figure(), width=5)
        with pytest.raises(ValueError):
            render_chart(figure(), height=2)

    def test_rejects_empty_figure(self):
        fig = FigureData("f", "t", "x", [1.0])
        with pytest.raises(ValueError):
            render_chart(fig)

    def test_rejects_all_none(self):
        with pytest.raises(ValueError):
            render_chart(figure({"a": [None, None, None]}))


class TestCliIntegration:
    def test_chart_flag(self, capsys):
        from repro.experiments.figures import main

        main(["fig2", "--chart"])
        out = capsys.readouterr().out
        assert "legend:" in out
