"""Smoke tests for every figure generator (tiny simulation sizes).

Full-fidelity shape assertions live in
``tests/integration/test_paper_claims.py`` and in ``benchmarks/``;
here we verify that every generator produces well-formed FigureData
and that the CLI wiring works.
"""

import pytest

from repro.experiments import figures
from repro.experiments.runner import SimulationSettings
from repro.noc.config import NocConfig

TINY = SimulationSettings(
    cycles=1_200,
    warmup=200,
    config=NocConfig(source_queue_packets=8),
    seed=3,
)


class TestAnalyticalFigures:
    def test_fig2_structure(self):
        figure = figures.figure2(4, 24)
        assert figure.figure_id == "fig2"
        assert len(figure.x_values) == 11
        assert set(figure.series) == {
            "ring",
            "ideal-mesh",
            "real-mesh",
            "irregular-mesh",
            "spidergon",
        }

    def test_fig3_structure(self):
        figure = figures.figure3(4, 24)
        assert figure.figure_id == "fig3"
        assert all(
            len(v) == len(figure.x_values)
            for v in figure.series.values()
        )


class TestSimulationFigures:
    def test_fig5(self):
        figure = figures.figure5(
            settings=TINY, node_counts=(8,), injection_rate=0.05
        )
        assert set(figure.series) == {
            "ring-analytic",
            "ring-sim",
            "spidergon-analytic",
            "spidergon-sim",
            "mesh-analytic",
            "mesh-sim",
        }
        for label in ("ring", "spidergon", "mesh"):
            sim = figure.column(f"{label}-sim")[0]
            analytic = figure.column(f"{label}-analytic")[0]
            assert sim == pytest.approx(analytic, rel=0.35)

    def test_fig6(self):
        figure = figures.figure6(
            settings=TINY, node_counts=(8,), rates=(0.05, 0.3)
        )
        assert set(figure.series) == {"ring8", "spidergon8", "mesh2x4"}
        for values in figure.series.values():
            assert all(v is not None and v >= 0 for v in values)

    def test_fig7(self):
        figure = figures.figure7(
            settings=TINY, node_counts=(8,), rates=(0.05, 0.3)
        )
        for values in figure.series.values():
            assert all(v is None or v > 0 for v in values)

    def test_fig8_series_labels(self):
        figure = figures.figure8(
            settings=TINY, node_counts=(8,), rates=(0.1,)
        )
        assert "ring8-A" in figure.series
        assert "ring8-B" in figure.series
        assert "spidergon8-A" in figure.series
        assert "mesh2x4-A" in figure.series
        assert "mesh2x4-C" in figure.series

    def test_fig9(self):
        figure = figures.figure9(
            settings=TINY, node_counts=(8,), rates=(0.1,)
        )
        assert len(figure.series) == 7  # ring(2) + spidergon(2) + mesh(3)

    def test_fig10(self):
        figure = figures.figure10(
            settings=TINY, node_counts=(8,), rates=(0.1, 0.4)
        )
        for values in figure.series.values():
            assert values[0] > 0

    def test_fig11(self):
        figure = figures.figure11(
            settings=TINY, node_counts=(8,), rates=(0.1, 0.4)
        )
        for values in figure.series.values():
            assert values[0] > 0


class TestCli:
    def test_main_prints_analytical_figure(self, capsys):
        assert figures.main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "spidergon" in out

    def test_main_writes_csv(self, tmp_path, capsys):
        figures.main(["fig3", "--csv", str(tmp_path)])
        capsys.readouterr()
        content = (tmp_path / "fig3.csv").read_text()
        assert content.startswith("N,")

    def test_main_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            figures.main(["fig99"])
