"""Tests for the extension experiments."""

import pytest

from repro.experiments.extensions import (
    Replication,
    extension_fault_tolerance,
    extension_large_networks,
    extension_torus_comparison,
    extension_traffic_patterns,
    replicate,
)
from repro.experiments.runner import SimulationSettings
from repro.noc.config import NocConfig
from repro.topology import SpidergonTopology
from repro.traffic import UniformTraffic

TINY = SimulationSettings(
    cycles=1_500,
    warmup=300,
    config=NocConfig(source_queue_packets=8),
    seed=3,
)


class TestReplicate:
    def test_ci_across_seeds(self):
        rep = replicate(
            lambda: SpidergonTopology(8),
            UniformTraffic,
            0.15,
            TINY,
            seeds=(1, 2, 3),
        )
        assert rep.metric == "throughput"
        assert len(rep.samples) == 3
        assert rep.mean == pytest.approx(
            sum(rep.samples) / 3
        )
        assert rep.half_width >= 0
        # Independent seeds give different draws.
        assert len(set(rep.samples)) > 1

    def test_relative_error_reasonable_at_low_load(self):
        rep = replicate(
            lambda: SpidergonTopology(8),
            UniformTraffic,
            0.15,
            TINY,
            seeds=(1, 2, 3, 4),
        )
        assert rep.relative_error < 0.25

    def test_requires_two_seeds(self):
        with pytest.raises(ValueError):
            replicate(
                lambda: SpidergonTopology(8),
                UniformTraffic,
                0.1,
                TINY,
                seeds=(1,),
            )

    def test_other_metric(self):
        rep = replicate(
            lambda: SpidergonTopology(8),
            UniformTraffic,
            0.15,
            TINY,
            seeds=(1, 2),
            metric="avg_latency",
        )
        assert rep.mean > 0

    def test_zero_mean_relative_error(self):
        rep = Replication("m", 0.0, 0.0, (0.0, 0.0))
        assert rep.relative_error == 0.0


class TestExtensionFigures:
    def test_torus_comparison_series(self):
        figure = extension_torus_comparison(
            settings=TINY, rows=3, cols=3, rates=(0.2,)
        )
        assert set(figure.series) == {
            "ring9",
            "mesh3x3",
            "torus3x3",
        } or set(figure.series) == {
            "ring9",
            "spidergon9",
            "mesh3x3",
            "torus3x3",
        }

    def test_traffic_patterns_figure(self):
        figure = extension_traffic_patterns(
            settings=TINY, num_nodes=8, injection_rate=0.2
        )
        assert len(figure.x_values) == 4
        assert set(figure.series) == {"ring8", "spidergon8", "mesh2x4"}
        # Nearest-neighbor is the lightest load: highest throughput
        # on the ring.
        ring = figure.column("ring8")
        assert ring[3] == max(ring)

    def test_large_networks_figure(self):
        figure = extension_large_networks(
            settings=TINY, node_counts=(32,), injection_rate=0.2
        )
        assert figure.column("ring")[0] < figure.column("spidergon")[0]

    def test_fault_tolerance_figure(self):
        figure = extension_fault_tolerance(
            settings=TINY, fault_counts=(0, 6), injection_rate=0.1
        )
        assert set(figure.series) == {"throughput", "latency", "hops"}
        # Both configurations deliver at low load; damage lengthens
        # the routes.
        assert all(v > 0 for v in figure.column("throughput"))
        assert figure.column("hops")[1] > figure.column("hops")[0]
