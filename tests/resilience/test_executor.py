"""Tests for the crash-tolerant campaign executor.

The pool-recovery tests spawn real worker processes and misbehave via
the ``REPRO_CHAOS`` hook; they carry the ``chaos`` marker so a quick
suite run can deselect them (``-m "not chaos"``).
"""

import json

import pytest

from repro.experiments.campaign import Campaign
from repro.experiments.parallel import (
    CampaignManifest,
    FailedResult,
    execute_points,
    point_key,
)
from repro.experiments.runner import SimulationSettings, SweepPoint
from repro.noc.config import NocConfig
from repro.resilience.chaos import ENV_VAR, ChaosError, apply_chaos


def quick_point(rate=0.05, seed=2):
    return SweepPoint(
        topology="ring8",
        pattern="uniform",
        rate=rate,
        settings=SimulationSettings(
            cycles=400,
            warmup=100,
            config=NocConfig(source_queue_packets=8),
            seed=seed,
        ),
    )


def small_spec(**overrides):
    spec = {
        "name": "chaos-smoke",
        "cycles": 400,
        "warmup": 100,
        "seed": 4,
        "source_queue_packets": 8,
        "topologies": ["ring8"],
        "patterns": ["uniform"],
        "rates": [0.05, 0.1, 0.2],
    }
    spec.update(overrides)
    return spec


class TestFailedResult:
    def test_round_trip(self):
        failure = FailedResult(
            topology="ring8",
            pattern="uniform",
            rate=0.1,
            seed=7,
            error="timeout",
            detail="exceeded 2s deadline",
            attempts=3,
        )
        assert FailedResult.from_dict(failure.to_dict()) == failure

    def test_ok_discriminator(self):
        failure = FailedResult(
            topology="ring8",
            pattern="uniform",
            rate=0.1,
            seed=7,
            error="crash",
        )
        assert failure.ok is False


class TestCampaignManifest:
    def test_record_and_replay(self, tmp_path):
        manifest = CampaignManifest(tmp_path / "m.jsonl")
        point = quick_point()
        failure = FailedResult(
            topology=point.topology,
            pattern=point.pattern,
            rate=point.rate,
            seed=point.settings.seed,
            error="crash",
            attempts=2,
        )
        manifest.record(point, failure, cached=False)
        assert manifest.completed_keys() == set()
        assert len(manifest.failures()) == 1

        (result,), _ = execute_points([point])
        manifest.record(point, result, cached=False)
        assert manifest.completed_keys() == {point_key(point)}
        # The later ok entry supersedes the earlier failure.
        assert manifest.failures() == []

    def test_tolerates_torn_trailing_line(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = CampaignManifest(path)
        point = quick_point()
        (result,), _ = execute_points([point])
        manifest.record(point, result, cached=False)
        with path.open("a") as handle:
            handle.write('{"key": "torn')  # crashed mid-write
        assert CampaignManifest(path).completed_keys() == {
            point_key(point)
        }


class TestChaosHook:
    def test_noop_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        apply_chaos("ring8:uniform:0.1")

    def test_error_mode_raises_on_match(self, monkeypatch):
        monkeypatch.setenv(
            ENV_VAR, json.dumps({"match": ":0.1", "mode": "error"})
        )
        apply_chaos("ring8:uniform:0.05")  # no match: silent
        with pytest.raises(ChaosError):
            apply_chaos("ring8:uniform:0.1")

    def test_rejects_bad_json(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{not json")
        with pytest.raises(ValueError, match="invalid"):
            apply_chaos("x")

    def test_rejects_unknown_mode(self, monkeypatch):
        monkeypatch.setenv(
            ENV_VAR, json.dumps({"match": "", "mode": "meltdown"})
        )
        with pytest.raises(ValueError, match="mode"):
            apply_chaos("x")

    def test_once_dir_strikes_once(self, monkeypatch, tmp_path):
        monkeypatch.setenv(
            ENV_VAR,
            json.dumps(
                {
                    "match": "",
                    "mode": "error",
                    "once_dir": str(tmp_path),
                }
            ),
        )
        with pytest.raises(ChaosError):
            apply_chaos("ring8:uniform:0.1")
        apply_chaos("ring8:uniform:0.1")  # second attempt behaves


class TestHardenedSerial:
    def test_error_exhausts_retries_into_failed_result(
        self, monkeypatch
    ):
        monkeypatch.setenv(
            ENV_VAR, json.dumps({"match": ":0.1", "mode": "error"})
        )
        points = [quick_point(0.05), quick_point(0.1)]
        results, stats = execute_points(points, retries=2)
        assert results[0].ok
        assert isinstance(results[1], FailedResult)
        assert results[1].error == "error"
        assert results[1].attempts == 3
        assert "ChaosError" in results[1].detail
        assert stats.failed == 1 and stats.retried == 2

    def test_retry_recovers_with_once_dir(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(
            ENV_VAR,
            json.dumps(
                {
                    "match": ":0.1",
                    "mode": "error",
                    "once_dir": str(tmp_path),
                }
            ),
        )
        results, stats = execute_points(
            [quick_point(0.1)], retries=1
        )
        assert results[0].ok
        assert stats.retried == 1 and stats.failed == 0

    def test_legacy_path_untouched_without_hardening(self):
        results, stats = execute_points([quick_point(0.05)])
        assert results[0].ok
        assert stats.failed == 0


@pytest.mark.chaos
class TestHardenedPool:
    def test_crash_once_recovers(self, monkeypatch, tmp_path):
        monkeypatch.setenv(
            ENV_VAR,
            json.dumps(
                {
                    "match": ":0.1",
                    "mode": "crash",
                    "once_dir": str(tmp_path / "once"),
                }
            ),
        )
        (tmp_path / "once").mkdir()
        campaign = Campaign(small_spec())
        results = campaign.execute(
            tmp_path / "out.csv",
            workers=2,
            cache=False,
            timeout=60,
            retries=1,
        )
        assert len(results) == 3
        assert all(result.ok for result in results)
        stats = campaign.last_stats
        assert stats.crashes >= 1
        assert stats.pool_rebuilds >= 1
        # Every point is in the CSV: header + 3 rows.
        lines = (tmp_path / "out.csv").read_text().splitlines()
        assert len(lines) == 4

    def test_hang_times_out_into_failed_result(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(
            ENV_VAR,
            json.dumps(
                {"match": ":0.1", "mode": "hang", "seconds": 60}
            ),
        )
        campaign = Campaign(small_spec())
        results = campaign.execute(
            tmp_path / "out.csv",
            workers=2,
            cache=False,
            timeout=1.5,
            retries=0,
        )
        failures = [r for r in results if not r.ok]
        assert len(failures) == 1
        assert failures[0].error == "timeout"
        assert failures[0].rate == 0.1
        assert campaign.last_stats.timeouts == 1
        # The hung point got no CSV row; the healthy two did.
        lines = (tmp_path / "out.csv").read_text().splitlines()
        assert len(lines) == 3

    def test_resume_completes_after_failure(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(
            ENV_VAR,
            json.dumps(
                {"match": ":0.1", "mode": "hang", "seconds": 60}
            ),
        )
        campaign = Campaign(small_spec())
        campaign.execute(
            tmp_path / "out.csv",
            workers=2,
            cache=False,
            timeout=1.5,
        )
        monkeypatch.delenv(ENV_VAR)
        rerun = Campaign(small_spec())
        results = rerun.execute(
            tmp_path / "out.csv",
            workers=2,
            cache=False,
            timeout=60,
            resume=True,
        )
        # Only the failed point re-runs, and the campaign reaches 100%.
        assert len(results) == 1 and results[0].ok
        lines = (tmp_path / "out.csv").read_text().splitlines()
        assert len(lines) == 4
        manifest = rerun.last_manifest
        assert manifest is not None
        statuses = {
            (entry["rate"], entry["status"])
            for entry in manifest.entries()
        }
        assert (0.1, "failed") in statuses
        assert (0.1, "ok") in statuses

    def test_hardened_rows_match_legacy_rows(self, tmp_path):
        legacy = Campaign(small_spec())
        legacy.execute(tmp_path / "legacy.csv", cache=False)
        hardened = Campaign(small_spec())
        hardened.execute(
            tmp_path / "hardened.csv",
            workers=2,
            cache=False,
            timeout=60,
            retries=1,
        )
        read = lambda p: sorted(p.read_text().splitlines())  # noqa: E731
        assert read(tmp_path / "legacy.csv") == read(
            tmp_path / "hardened.csv"
        )


@pytest.mark.chaos
class TestBackoffIsolation:
    """Backoff is a per-entry not-before window, not a global sleep.

    The old ``charge()`` slept ``backoff * attempts`` inline in the
    dispatcher thread, so one retrying point froze result handling —
    and timeout accounting — for every other in-flight point.  Now
    the retry just carries a not-before timestamp and the dispatcher
    keeps draining completions.
    """

    def test_retrying_point_does_not_stall_others(
        self, monkeypatch, tmp_path
    ):
        import time

        monkeypatch.setenv(
            ENV_VAR, json.dumps({"match": ":0.05", "mode": "error"})
        )
        flaky = quick_point(rate=0.05)
        healthy = quick_point(rate=0.1)
        start = time.monotonic()
        finished_at = {}

        def stamp(index, point, result, cached):
            finished_at[point.rate] = time.monotonic() - start

        results, stats = execute_points(
            [flaky, healthy],
            workers=2,
            timeout=60,
            retries=1,
            backoff=2.5,
            on_result=stamp,
        )
        elapsed = time.monotonic() - start
        # The flaky point exhausted its retry after the backoff window.
        assert isinstance(results[0], FailedResult)
        assert results[0].error == "error"
        assert results[0].attempts == 2
        assert elapsed >= 2.5  # the backoff really was honoured
        # The healthy point settled while the flaky one was backing
        # off.  Pre-fix, the inline sleep pushed this past 2.5s.
        assert results[1].ok
        assert finished_at[0.1] < 2.0
        assert stats.failed == 1
