"""Tests for the stall watchdog."""

import json

import pytest

from repro.noc.config import NocConfig
from repro.noc.invariants import InvariantChecker
from repro.noc.network import Network
from repro.resilience import FaultInjector, FaultPlan, StallWatchdog
from repro.resilience.plan import FaultEvent
from repro.topology import RingTopology
from repro.traffic import HotspotTraffic, UniformTraffic
from repro.traffic.base import TrafficSpec


def build(pattern_cls, rate, *, targets=None, seed=3):
    topology = RingTopology(8)
    pattern = (
        pattern_cls(topology, targets)
        if targets is not None
        else pattern_cls(topology)
    )
    return Network(
        topology,
        config=NocConfig(source_queue_packets=32),
        traffic=TrafficSpec(pattern, rate),
        seed=seed,
    )


def disconnecting_plan(at=800):
    """Cut both of node 0's ring links: 0 becomes unreachable."""
    return FaultPlan(
        (FaultEvent(at, 0, 1, "fail"), FaultEvent(at, 0, 7, "fail"))
    )


class TestStallWatchdog:
    def test_rejects_bad_threshold(self):
        net = build(UniformTraffic, 0.1)
        with pytest.raises(ValueError, match="stall_cycles"):
            StallWatchdog(net, 0)

    def test_healthy_run_never_trips(self):
        net = build(UniformTraffic, 0.1)
        watchdog = StallWatchdog(net, stall_cycles=500)
        result = net.run(cycles=3_000, warmup=300)
        assert not watchdog.tripped
        assert not result.degraded
        assert "stall" not in result.extra

    def test_idle_low_rate_run_never_trips(self):
        # Interarrival gaps far beyond the threshold, but the network
        # is merely idle, not stuck.
        net = build(UniformTraffic, 0.001)
        watchdog = StallWatchdog(net, stall_cycles=300)
        result = net.run(cycles=5_000, warmup=300)
        assert not watchdog.tripped
        assert not result.degraded

    def test_disconnected_hotspot_trips(self):
        net = build(HotspotTraffic, 0.15, targets=[0])
        FaultInjector(net, disconnecting_plan(at=800))
        watchdog = StallWatchdog(net, stall_cycles=600)
        result = net.run(cycles=10_000, warmup=300)
        assert watchdog.tripped
        assert result.degraded
        # The run stopped early instead of burning the full horizon.
        assert result.cycles < 10_000

    def test_snapshot_diagnostics(self):
        net = build(HotspotTraffic, 0.15, targets=[0])
        FaultInjector(net, disconnecting_plan(at=800))
        watchdog = StallWatchdog(net, stall_cycles=600)
        result = net.run(cycles=10_000, warmup=300)
        snapshot = result.extra["stall"]
        assert snapshot["reason"].startswith("no flit consumed")
        assert snapshot["stall_cycles"] == 600
        assert snapshot["cycle"] > snapshot["last_progress_cycle"]
        assert sorted(snapshot["dead_links"]) == ["0-1", "0-7"]
        assert snapshot["flits_dropped"] > 0
        assert watchdog.snapshot is not None
        json.dumps(result.to_dict())

    def test_invariants_hold_at_stop_point(self):
        net = build(HotspotTraffic, 0.15, targets=[0])
        FaultInjector(net, disconnecting_plan(at=800))
        StallWatchdog(net, stall_cycles=600)
        net.run(cycles=10_000, warmup=300)
        InvariantChecker(net).check_all()

    def test_trip_is_deterministic(self):
        def go():
            net = build(HotspotTraffic, 0.15, targets=[0], seed=9)
            FaultInjector(net, disconnecting_plan(at=800))
            StallWatchdog(net, stall_cycles=600)
            return net.run(cycles=10_000, warmup=300)

        assert go().to_dict() == go().to_dict()
