"""Tests for runtime fault injection against live networks."""

import json

import pytest

from repro.noc.config import NocConfig
from repro.noc.invariants import InvariantChecker
from repro.noc.network import Network
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    InvariantAuditor,
)
from repro.topology import MeshTopology, RingTopology
from repro.traffic import UniformTraffic
from repro.traffic.base import TrafficSpec


def build(topology, rate=0.1, seed=11, queue=32):
    return Network(
        topology,
        config=NocConfig(source_queue_packets=queue),
        traffic=TrafficSpec(UniformTraffic(topology), rate),
        seed=seed,
    )


class TestFaultInjector:
    def test_rejects_plan_for_wrong_topology(self):
        net = build(RingTopology(8))
        with pytest.raises(Exception, match="non-existent link"):
            FaultInjector(net, FaultPlan.single(0, 4, at=100))

    def test_applies_fail_and_repair_at_scheduled_cycles(self):
        net = build(MeshTopology(4, 4))
        injector = FaultInjector(
            net, FaultPlan.single(5, 6, at=300, repair_at=900)
        )
        net.run(cycles=2_000, warmup=200)
        assert [r["action"] for r in injector.applied] == [
            "fail",
            "repair",
        ]
        assert [r["time"] for r in injector.applied] == [300, 900]
        assert net.dead_links == frozenset()

    def test_permanent_fault_reroutes_or_drops(self):
        net = build(MeshTopology(4, 4), rate=0.15)
        FaultInjector(net, FaultPlan.single(5, 6, at=500))
        result = net.run(cycles=3_000, warmup=200)
        assert net.dead_links == frozenset({(5, 6)})
        summary = result.extra["resilience"]
        # A mesh stays connected without 5-6, so traffic detours; the
        # packets caught mid-wormhole on the dying link are killed.
        assert summary["packets_rerouted"] > 0
        rerouted_or_dropped = (
            summary["packets_rerouted"] + result.flits_dropped
        )
        assert rerouted_or_dropped > 0
        assert result.packets_delivered > 0

    def test_invariants_hold_after_permanent_fault(self):
        net = build(MeshTopology(4, 4), rate=0.15)
        FaultInjector(net, FaultPlan.single(9, 10, at=400))
        net.run(cycles=3_000, warmup=200)
        InvariantChecker(net).check_all()

    def test_invariants_hold_during_fault_window(self):
        net = build(RingTopology(8))
        FaultInjector(
            net, FaultPlan.single(2, 3, at=300, repair_at=1_500)
        )
        auditor = InvariantAuditor(net, interval=100)
        net.run(cycles=3_000, warmup=200)
        assert auditor.audits >= 25

    def test_per_link_accounting_in_summary(self):
        net = build(MeshTopology(4, 4), rate=0.2)
        FaultInjector(net, FaultPlan.single(5, 6, at=500))
        result = net.run(cycles=2_000, warmup=200)
        summary = result.extra["resilience"]
        total_killed = sum(
            summary["packets_killed_by_link"].values()
        )
        total_dropped = sum(
            summary["flits_dropped_by_link"].values()
        )
        assert total_killed == result.packets_killed
        assert total_dropped == result.flits_dropped

    def test_result_is_json_clean(self):
        net = build(MeshTopology(4, 4))
        FaultInjector(
            net, FaultPlan.single(1, 2, at=300, repair_at=800)
        )
        result = net.run(cycles=1_500, warmup=200)
        json.dumps(result.to_dict())

    def test_faulted_run_is_deterministic(self):
        def go():
            net = build(MeshTopology(4, 4), rate=0.15, seed=77)
            FaultInjector(net, FaultPlan.single(5, 6, at=500))
            return net.run(cycles=2_000, warmup=200)

        assert go().to_dict() == go().to_dict()

    def test_empty_plan_changes_nothing(self):
        baseline = build(RingTopology(8), seed=5).run(
            cycles=1_500, warmup=200
        )
        net = build(RingTopology(8), seed=5)
        FaultInjector(net, FaultPlan())
        faulted = net.run(cycles=1_500, warmup=200)
        assert faulted.to_dict() == baseline.to_dict()


class TestInvariantAuditor:
    def test_rejects_bad_interval(self):
        net = build(RingTopology(8))
        with pytest.raises(ValueError, match="interval"):
            InvariantAuditor(net, 0)

    def test_audits_healthy_run(self):
        net = build(RingTopology(8))
        auditor = InvariantAuditor(net, interval=200)
        net.run(cycles=2_000, warmup=200)
        assert auditor.audits >= 9
