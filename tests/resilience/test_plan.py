"""Tests for FaultEvent / FaultPlan value semantics."""

import pytest

from repro.resilience import FaultEvent, FaultPlan
from repro.topology import MeshTopology, RingTopology
from repro.topology.base import TopologyError


class TestFaultEvent:
    def test_link_is_canonical(self):
        assert FaultEvent(10, 3, 1).link == (1, 3)
        assert FaultEvent(10, 1, 3).link == (1, 3)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent(-1, 0, 1)

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="action"):
            FaultEvent(0, 0, 1, "explode")

    def test_rejects_self_link(self):
        with pytest.raises(ValueError, match="endpoints"):
            FaultEvent(0, 2, 2)


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            (
                FaultEvent(500, 0, 1, "repair"),
                FaultEvent(100, 0, 1, "fail"),
            )
        )
        assert [e.time for e in plan.events] == [100, 500]

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan((FaultEvent(1, 0, 1),))

    def test_rejects_double_fail(self):
        with pytest.raises(ValueError, match="already down"):
            FaultPlan(
                (FaultEvent(1, 0, 1), FaultEvent(2, 1, 0))
            )

    def test_rejects_repair_of_healthy_link(self):
        with pytest.raises(ValueError, match="while it is up"):
            FaultPlan((FaultEvent(5, 0, 1, "repair"),))

    def test_single_with_repair(self):
        plan = FaultPlan.single(3, 4, at=100, repair_at=900)
        assert [e.action for e in plan.events] == ["fail", "repair"]
        assert plan.events[1].time == 900

    def test_single_rejects_repair_before_fail(self):
        with pytest.raises(ValueError, match="repair_at"):
            FaultPlan.single(3, 4, at=100, repair_at=100)

    def test_round_trip(self):
        plan = FaultPlan.single(0, 1, at=50, repair_at=60)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_validate_for_accepts_existing_links(self):
        FaultPlan.single(0, 1, at=10).validate_for(RingTopology(8))

    def test_validate_for_rejects_non_adjacent(self):
        plan = FaultPlan.single(0, 4, at=10)
        with pytest.raises(TopologyError, match="non-existent link"):
            plan.validate_for(RingTopology(8))


class TestRandomFaults:
    def test_deterministic_in_seed(self):
        mesh = MeshTopology(4, 4)
        one = FaultPlan.random_faults(mesh, 3, at=500, seed=9)
        two = FaultPlan.random_faults(mesh, 3, at=500, seed=9)
        assert one == two
        other = FaultPlan.random_faults(mesh, 3, at=500, seed=10)
        assert one != other

    def test_distinct_links(self):
        plan = FaultPlan.random_faults(MeshTopology(4, 4), 5, at=100)
        assert len({e.link for e in plan.events}) == 5

    def test_repair_after_makes_transient_pairs(self):
        plan = FaultPlan.random_faults(
            RingTopology(8), 2, at=100, repair_after=300
        )
        fails = [e for e in plan.events if e.action == "fail"]
        repairs = [e for e in plan.events if e.action == "repair"]
        assert len(fails) == len(repairs) == 2
        assert all(e.time == 400 for e in repairs)

    def test_count_exceeding_links_raises(self):
        with pytest.raises(TopologyError, match="cannot fail"):
            FaultPlan.random_faults(RingTopology(8), 9, at=100)

    def test_plan_fits_topology(self):
        topo = MeshTopology(4, 4)
        FaultPlan.random_faults(topo, 4, at=100).validate_for(topo)
