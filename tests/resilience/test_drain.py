"""Deadlock recovery: drain-ring derivation, the DRAIN controller,
and the canonical wormhole-deadlock positive control."""

import json

import pytest

from repro.experiments.drain import (
    DEADLOCK_BURST_TIMES,
    DEADLOCK_CYCLES,
    DEADLOCK_NODES,
    build_deadlock_network,
    deadlock_trace,
    run_deadlock_control,
)
from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.obs import FlitTracer, TimelineObserver, TraceSink
from repro.resilience import DrainController, DrainError, drain_ring
from repro.resilience.watchdog import StallWatchdog
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.topology import (
    CirculantTopology,
    HypercubeTopology,
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    TorusTopology,
)

TOTAL_PACKETS = len(DEADLOCK_BURST_TIMES) * DEADLOCK_NODES

ENGINES = ("wheel", "heap", "batched")


def assert_hamiltonian(topology, ring):
    assert len(ring) == topology.num_nodes
    assert sorted(ring) == list(range(topology.num_nodes))
    for k, node in enumerate(ring):
        nxt = ring[(k + 1) % len(ring)]
        assert nxt in set(topology.neighbors(node)), (
            f"{node}->{nxt} is not a link"
        )


class TestDrainRing:
    @pytest.mark.parametrize(
        "topology",
        [
            RingTopology(8),
            SpidergonTopology(8),
            MeshTopology(4, 4),
            MeshTopology(2, 3),
            TorusTopology(4, 4),
            HypercubeTopology(3),
            CirculantTopology(16, 5),
        ],
        ids=lambda t: t.name,
    )
    def test_valid_cycle(self, topology):
        assert_hamiltonian(topology, drain_ring(topology))

    def test_ring_uses_identity_order(self):
        assert drain_ring(RingTopology(8)) == tuple(range(8))

    def test_odd_by_odd_mesh_has_none(self):
        # A 3x3 mesh is bipartite with unequal part sizes: no
        # Hamiltonian cycle exists at all.
        with pytest.raises(DrainError, match="no drain ring"):
            drain_ring(MeshTopology(3, 3))

    def test_mesh_serpentine_matches_search_result(self):
        # The closed-form serpentine is preferred over the search;
        # both must of course be Hamiltonian, but the serpentine is
        # deterministic by construction.
        ring = drain_ring(MeshTopology(4, 4))
        assert ring[:4] == (0, 4, 8, 12)


class TestControllerConstruction:
    def _network(self):
        topology = RingTopology(8)
        return Network(
            topology,
            MinimalAdaptiveRouting(topology),
            config=NocConfig(num_vcs=1),
        )

    def test_parameter_validation(self):
        network = self._network()
        with pytest.raises(ValueError, match="detect_cycles"):
            DrainController(network, detect_cycles=0)
        with pytest.raises(ValueError, match="min_interval"):
            DrainController(network, min_interval=64, spin_interval=8)

    def test_second_controller_rejected(self):
        network = self._network()
        DrainController(network)
        with pytest.raises(ValueError, match="already has"):
            DrainController(network)

    def test_non_adjacent_explicit_ring_rejected(self):
        with pytest.raises(DrainError, match="not a link"):
            DrainController(self._network(), ring=(0, 2, 4, 6))

    def test_duplicate_explicit_ring_rejected(self):
        with pytest.raises(DrainError, match="distinct"):
            DrainController(self._network(), ring=(0, 1, 0, 1))

    def test_watchdog_grace_default(self):
        controller = DrainController(self._network(), max_interval=256)
        assert controller.watchdog_grace == 4 * 256


@pytest.mark.drain
class TestPositiveControl:
    """The deterministic wormhole deadlock of docs/deadlock.md."""

    def test_wedges_without_drain(self):
        result = run_deadlock_control(False)
        assert result.degraded
        assert result.packets_delivered == 0
        assert "stall" in result.extra
        assert result.extra["stall"]["flits_in_flight"] == 0

    def test_recovers_with_drain(self):
        result = run_deadlock_control(True)
        assert not result.degraded
        assert result.packets_delivered == TOTAL_PACKETS
        drain = result.extra["drain"]
        assert drain["stall_detections"] >= 1
        assert drain["recoveries"] >= 1
        assert drain["flits_spun"] > 0
        assert drain["pulls"] + drain["sends"] == drain["flits_spun"]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_byte_identical_repeats(self, engine):
        def fingerprint():
            result = run_deadlock_control(True, engine=engine)
            return json.dumps(
                {
                    "degraded": result.degraded,
                    "delivered": result.packets_delivered,
                    "flits": result.flits_delivered,
                    "latency": result.avg_latency,
                    "hops": result.avg_hops,
                    "events": result.events_processed,
                    "drain": result.extra["drain"],
                },
                sort_keys=True,
            )

        assert fingerprint() == fingerprint()

    def test_engines_agree(self):
        results = [
            run_deadlock_control(True, engine=engine)
            for engine in ENGINES
        ]
        baseline = results[0]
        for other in results[1:]:
            assert other.packets_delivered == baseline.packets_delivered
            assert other.avg_latency == baseline.avg_latency
            assert other.events_processed == baseline.events_processed
            assert other.extra["drain"] == baseline.extra["drain"]

    def test_batched_engine_falls_back_loudly(self):
        # The controller registers a kernel observer, which is the
        # documented trigger for the batched engine's loud fallback
        # to the classic event loop — forced drain moves bypass its
        # per-link records, so the fast path would silently miss
        # them.  Recovery must therefore work (not crash, not drop)
        # under engine="batched".
        network = build_deadlock_network(True, engine="batched")
        assert any(
            observer is network.drain_controller
            for observer in network.simulator.observers
        )
        result = network.run(DEADLOCK_CYCLES)
        assert not result.degraded
        assert result.packets_delivered == TOTAL_PACKETS


@pytest.mark.drain
class TestWatchdogInterplay:
    def _wedged_network(self, stall_cycles, packet_flits=4):
        topology = RingTopology(8)
        network = Network(
            topology,
            MinimalAdaptiveRouting(topology),
            config=NocConfig(
                packet_size_flits=packet_flits,
                num_vcs=1,
                input_buffer_flits=1,
                output_buffer_flits=3,
            ),
        )
        network.install_trace(deadlock_trace())
        StallWatchdog(network, stall_cycles=stall_cycles)
        return network

    def test_shield_defers_watchdog_during_recovery(self):
        # stall_cycles=250 would truncate the run mid-recovery (the
        # controller arms at its second detection tick, cycle ~200);
        # the drain shield defers the trip while epochs make forced
        # progress, so the run completes.
        network = self._wedged_network(stall_cycles=250)
        DrainController(
            network, detect_cycles=100, spin_interval=32
        )
        result = network.run(DEADLOCK_CYCLES)
        assert not result.degraded
        assert result.packets_delivered == TOTAL_PACKETS

    def test_same_watchdog_trips_without_drain(self):
        result = self._wedged_network(stall_cycles=250).run(
            DEADLOCK_CYCLES
        )
        assert result.degraded
        assert result.packets_delivered == 0

    def test_unrecoverable_wedge_still_truncates(self):
        # 3-flit packets wedge with every loop queue owner-locked
        # mid-worm: no order-preserving forced move exists (the
        # recovery bound documented in repro.resilience.drain), so
        # epochs spin zero flits, the shield lapses, and the
        # watchdog ends the run with its diagnostic instead of the
        # drain corrupting worms.
        network = self._wedged_network(
            stall_cycles=3_000, packet_flits=3
        )
        controller = DrainController(
            network, detect_cycles=100, spin_interval=32
        )
        result = network.run(DEADLOCK_CYCLES)
        assert result.degraded
        assert result.packets_delivered == 0
        assert controller.epochs > 0
        assert controller.summary()["flits_spun"] == 0
        assert "stall" in result.extra


@pytest.mark.drain
class TestObservability:
    def test_tracer_and_timeline_see_forced_moves(self):
        network = build_deadlock_network(True)
        sink = TraceSink.in_memory()
        tracer = FlitTracer(network, sink)
        timeline = TimelineObserver(network, window=100)
        result = network.run(DEADLOCK_CYCLES)
        tracer.detach()
        assert not result.degraded
        spun = result.extra["drain"]["flits_spun"]
        records = [
            json.loads(line) for line in sink.text().splitlines()
        ]
        drain_records = [r for r in records if r["ev"] == "drain"]
        assert len(drain_records) == spun
        assert {r["kind"] for r in drain_records} == {"pull", "send"}
        for record in drain_records:
            if record["kind"] == "pull":
                assert record["from"] == record["node"]
        assert timeline.drain_events == spun

    def test_run_summary_carries_drain_extra(self):
        result = run_deadlock_control(True)
        drain = result.extra["drain"]
        assert drain["ring_length"] == DEADLOCK_NODES
        assert drain["interval"]["initial"] == 32
