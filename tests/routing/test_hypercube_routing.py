"""Unit tests for e-cube hypercube routing."""

import pytest

from repro.noc.packet import Packet
from repro.routing import HypercubeEcubeRouting, routing_for
from repro.topology import HypercubeTopology, all_pairs_distances


def packet(src, dst):
    return Packet(src, dst, 6, created_at=0)


class TestEcube:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_minimal_everywhere(self, d):
        cube = HypercubeTopology(d)
        routing = HypercubeEcubeRouting(cube)
        dist = all_pairs_distances(cube)
        n = cube.num_nodes
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    assert routing.path_length(src, dst) == dist[src][dst]
                    # Hamming distance is the ground truth.
                    assert dist[src][dst] == bin(src ^ dst).count("1")

    def test_ascending_dimension_order(self):
        cube = HypercubeTopology(4)
        routing = HypercubeEcubeRouting(cube)
        path = routing.path(0b0000, 0b1011)
        flipped = [a ^ b for a, b in zip(path, path[1:])]
        assert flipped == [0b0001, 0b0010, 0b1000]

    def test_local_at_destination(self):
        routing = HypercubeEcubeRouting(HypercubeTopology(3))
        assert routing.decide(5, packet(0, 5)).is_local

    def test_single_vc(self):
        assert HypercubeEcubeRouting(HypercubeTopology(3)).required_vcs == 1

    def test_routing_for_dispatch(self):
        assert isinstance(
            routing_for(HypercubeTopology(3)), HypercubeEcubeRouting
        )


class TestInNetwork:
    def test_uniform_traffic_no_deadlock(self):
        from repro.noc.config import NocConfig
        from repro.noc.network import Network
        from repro.traffic import TrafficSpec, UniformTraffic

        cube = HypercubeTopology(4)
        net = Network(
            cube,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(cube), 0.8),
            seed=5,
        )
        result = net.run(cycles=5_000, warmup=1_500)
        assert result.throughput > 3.0

    def test_performance_vs_cost_tradeoff(self):
        # The paper's motivating sentence quantified: the hypercube
        # outperforms the Spidergon at equal N under uniform load,
        # but its log-degree routers cost more area.
        from repro.cost import network_area
        from repro.noc.config import NocConfig
        from repro.noc.network import Network
        from repro.topology import SpidergonTopology
        from repro.traffic import TrafficSpec, UniformTraffic

        throughput = {}
        for topology in (HypercubeTopology(4), SpidergonTopology(16)):
            net = Network(
                topology,
                config=NocConfig(source_queue_packets=16),
                traffic=TrafficSpec(UniformTraffic(topology), 0.8),
                seed=5,
            )
            throughput[topology.name] = net.run(
                cycles=5_000, warmup=1_500
            ).throughput
        assert throughput["hypercube16"] > throughput["spidergon16"]
        assert network_area(HypercubeTopology(4), num_vcs=1) > (
            network_area(SpidergonTopology(16), num_vcs=1)
        )
