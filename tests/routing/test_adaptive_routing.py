"""Tests for O1TURN randomised dimension-order routing."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.routing import MeshO1TurnRouting, MeshXYRouting
from repro.routing.base import RoutingError
from repro.topology import MeshTopology, all_pairs_distances
from repro.traffic import TrafficSpec, TransposeTraffic, UniformTraffic


def packet(src, dst):
    return Packet(src, dst, 6, created_at=0)


class TestRoutes:
    @pytest.mark.parametrize("dims", [(3, 3), (4, 4), (4, 6)])
    def test_minimal(self, dims):
        mesh = MeshTopology(*dims)
        routing = MeshO1TurnRouting(mesh)
        dist = all_pairs_distances(mesh)
        for src in range(mesh.num_nodes):
            for dst in range(mesh.num_nodes):
                if src != dst:
                    assert routing.path_length(src, dst) == dist[src][dst]

    def test_both_orders_used(self):
        mesh = MeshTopology(4, 4)
        routing = MeshO1TurnRouting(mesh)
        orders = set()
        for _ in range(64):
            pkt = packet(mesh.node_at(0, 0), mesh.node_at(3, 3))
            routing.decide(0, pkt)
            orders.add(pkt.route_state["o1turn_order"])
        assert orders == {"xy", "yx"}

    def test_order_is_sticky_per_packet(self):
        mesh = MeshTopology(4, 4)
        routing = MeshO1TurnRouting(mesh)
        pkt = packet(mesh.node_at(0, 0), mesh.node_at(3, 3))
        routing.decide(0, pkt)
        first = pkt.route_state["o1turn_order"]
        path = routing.path(0, mesh.node_at(3, 3))
        coords = [mesh.coordinates(n) for n in path]
        if first == "xy":
            # Expect no row movement until the column settles... the
            # path helper uses a fresh packet, so just re-decide:
            pass
        again = packet(mesh.node_at(0, 0), mesh.node_at(3, 3))
        again.packet_id = pkt.packet_id  # same id -> same order
        routing.decide(0, again)
        assert again.route_state["o1turn_order"] == first

    def test_vc_matches_order(self):
        mesh = MeshTopology(4, 4)
        routing = MeshO1TurnRouting(mesh)
        for _ in range(32):
            pkt = packet(mesh.node_at(0, 0), mesh.node_at(3, 3))
            decision = routing.decide(0, pkt)
            order = pkt.route_state["o1turn_order"]
            assert decision.vc == (0 if order == "xy" else 1)

    def test_requires_two_vcs(self):
        assert MeshO1TurnRouting(MeshTopology(3, 3)).required_vcs == 2

    def test_rejects_irregular_mesh(self):
        with pytest.raises(RoutingError):
            MeshO1TurnRouting(MeshTopology.irregular(11))


class TestInNetwork:
    def _throughput(self, routing_factory, rate=0.5):
        mesh = MeshTopology(4, 4)
        net = Network(
            mesh,
            routing=routing_factory(mesh),
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(TransposeTraffic(mesh), rate),
            seed=7,
        )
        return net.run(cycles=6_000, warmup=2_000).throughput

    def test_no_deadlock_under_uniform_load(self):
        mesh = MeshTopology(4, 4)
        net = Network(
            mesh,
            routing=MeshO1TurnRouting(mesh),
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(mesh), 0.8),
            seed=7,
        )
        assert net.run(cycles=6_000, warmup=2_000).throughput > 2.0

    def test_beats_xy_on_transpose(self):
        # Transpose concentrates XY routes on one diagonal family;
        # O1TURN halves that load across XY and YX.
        o1turn = self._throughput(MeshO1TurnRouting)
        xy = self._throughput(MeshXYRouting)
        assert o1turn >= xy
