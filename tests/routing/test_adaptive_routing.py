"""Tests for O1TURN randomised dimension-order routing."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.routing import MeshO1TurnRouting, MeshXYRouting
from repro.routing.base import RoutingError
from repro.topology import MeshTopology, all_pairs_distances
from repro.traffic import TrafficSpec, TransposeTraffic, UniformTraffic


def packet(src, dst):
    return Packet(src, dst, 6, created_at=0)


class TestRoutes:
    @pytest.mark.parametrize("dims", [(3, 3), (4, 4), (4, 6)])
    def test_minimal(self, dims):
        mesh = MeshTopology(*dims)
        routing = MeshO1TurnRouting(mesh)
        dist = all_pairs_distances(mesh)
        for src in range(mesh.num_nodes):
            for dst in range(mesh.num_nodes):
                if src != dst:
                    assert routing.path_length(src, dst) == dist[src][dst]

    def test_both_orders_used(self):
        mesh = MeshTopology(4, 4)
        routing = MeshO1TurnRouting(mesh)
        orders = set()
        for _ in range(64):
            pkt = packet(mesh.node_at(0, 0), mesh.node_at(3, 3))
            routing.decide(0, pkt)
            orders.add(pkt.route_state["o1turn_order"])
        assert orders == {"xy", "yx"}

    def test_order_is_sticky_per_packet(self):
        mesh = MeshTopology(4, 4)
        routing = MeshO1TurnRouting(mesh)
        pkt = packet(mesh.node_at(0, 0), mesh.node_at(3, 3))
        routing.decide(0, pkt)
        first = pkt.route_state["o1turn_order"]
        path = routing.path(0, mesh.node_at(3, 3))
        coords = [mesh.coordinates(n) for n in path]
        if first == "xy":
            # Expect no row movement until the column settles... the
            # path helper uses a fresh packet, so just re-decide:
            pass
        again = packet(mesh.node_at(0, 0), mesh.node_at(3, 3))
        again.packet_id = pkt.packet_id  # same id -> same order
        routing.decide(0, again)
        assert again.route_state["o1turn_order"] == first

    def test_vc_matches_order(self):
        mesh = MeshTopology(4, 4)
        routing = MeshO1TurnRouting(mesh)
        for _ in range(32):
            pkt = packet(mesh.node_at(0, 0), mesh.node_at(3, 3))
            decision = routing.decide(0, pkt)
            order = pkt.route_state["o1turn_order"]
            assert decision.vc == (0 if order == "xy" else 1)

    def test_requires_two_vcs(self):
        assert MeshO1TurnRouting(MeshTopology(3, 3)).required_vcs == 2

    def test_rejects_irregular_mesh(self):
        with pytest.raises(RoutingError):
            MeshO1TurnRouting(MeshTopology.irregular(11))


class TestInNetwork:
    def _throughput(self, routing_factory, rate=0.5):
        mesh = MeshTopology(4, 4)
        net = Network(
            mesh,
            routing=routing_factory(mesh),
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(TransposeTraffic(mesh), rate),
            seed=7,
        )
        return net.run(cycles=6_000, warmup=2_000).throughput

    def test_no_deadlock_under_uniform_load(self):
        mesh = MeshTopology(4, 4)
        net = Network(
            mesh,
            routing=MeshO1TurnRouting(mesh),
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(mesh), 0.8),
            seed=7,
        )
        assert net.run(cycles=6_000, warmup=2_000).throughput > 2.0

    def test_beats_xy_on_transpose(self):
        # Transpose concentrates XY routes on one diagonal family;
        # O1TURN halves that load across XY and YX.
        o1turn = self._throughput(MeshO1TurnRouting)
        xy = self._throughput(MeshXYRouting)
        assert o1turn >= xy


# -- fully adaptive (minimal / bounded-misroute) schemes ----------------

from repro.resilience.fallback import FallbackTable  # noqa: E402
from repro.routing import (  # noqa: E402
    MinimalAdaptiveRouting,
    MisrouteAdaptiveRouting,
)
from repro.topology import (  # noqa: E402
    RingTopology,
    SpidergonTopology,
    TorusTopology,
)

ADAPTIVE_TOPOLOGIES = [
    RingTopology(8),
    SpidergonTopology(8),
    MeshTopology(4, 4),
    TorusTopology(4, 4),
]


class TestMinimalAdaptive:
    @pytest.mark.parametrize(
        "topology", ADAPTIVE_TOPOLOGIES, ids=lambda t: t.name
    )
    def test_paths_match_bfs_oracle(self, topology):
        routing = MinimalAdaptiveRouting(topology)
        dist = all_pairs_distances(topology)
        for src in range(topology.num_nodes):
            for dst in range(topology.num_nodes):
                if src != dst:
                    assert (
                        routing.path_length(src, dst) == dist[src][dst]
                    )

    def test_not_deadlock_free_but_adaptive(self):
        routing = MinimalAdaptiveRouting(RingTopology(8))
        assert routing.adaptive
        assert not routing.deadlock_free

    def test_fault_update_recomputes_distances(self):
        topology = RingTopology(8)
        routing = MinimalAdaptiveRouting(topology)
        assert routing.path_length(0, 2) == 2
        routing.on_fault_update([(1, 2)])
        # 0->2 must now go the long way round.
        assert routing.path_length(0, 2) == 6
        assert routing.fully_connected
        routing.on_fault_update([])
        assert routing.path_length(0, 2) == 2

    def test_partition_clears_fully_connected(self):
        topology = RingTopology(8)
        routing = MinimalAdaptiveRouting(topology)
        routing.on_fault_update([(0, 1), (4, 5)])
        assert not routing.fully_connected

    def test_misroute_degenerates_to_minimal_offline(self):
        topology = MeshTopology(4, 4)
        minimal = MinimalAdaptiveRouting(topology)
        misroute = MisrouteAdaptiveRouting(topology, max_misroutes=2)
        for src in range(topology.num_nodes):
            for dst in range(topology.num_nodes):
                if src != dst:
                    assert misroute.path_length(
                        src, dst
                    ) == minimal.path_length(src, dst)

    def test_misroute_budget_validated(self):
        with pytest.raises(ValueError, match="max_misroutes"):
            MisrouteAdaptiveRouting(MeshTopology(4, 4), max_misroutes=-1)


def _table_distance(table, node, dst, limit):
    """Hops of the FallbackTable's detour path node -> dst."""
    hops = 0
    topology = table.topology
    while node != dst:
        port = table.next_port(node, dst)
        if port is None:
            return None
        node = topology.out_ports(node)[port]
        hops += 1
        assert hops <= limit, "fallback table loops"
    return hops


class TestAdaptiveFaultAgreement:
    """The adaptive residual tables subsume the BFS fallback detours."""

    def test_detour_lengths_match_fallback_table(self):
        topology = MeshTopology(4, 4)
        dead = [(5, 6), (9, 10)]
        routing = MinimalAdaptiveRouting(topology)
        routing.on_fault_update(dead)
        table = FallbackTable(topology, dead)
        n = topology.num_nodes
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    assert routing.path_length(
                        src, dst
                    ) == _table_distance(table, src, dst, limit=n)

    def test_adaptive_path_avoids_dead_links(self):
        topology = MeshTopology(4, 4)
        routing = MinimalAdaptiveRouting(topology)
        routing.on_fault_update([(5, 6)])
        for src in range(topology.num_nodes):
            for dst in range(topology.num_nodes):
                if src == dst:
                    continue
                path = routing.path(src, dst)
                hops = set(zip(path, path[1:]))
                assert (5, 6) not in hops and (6, 5) not in hops


class TestLegacyFallbackShim:
    def _adaptive_network(self):
        topology = MeshTopology(4, 4)
        return Network(
            topology,
            routing=MinimalAdaptiveRouting(topology),
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(topology), 0.05),
            seed=3,
        )

    def test_warns_under_adaptive_routing(self):
        net = self._adaptive_network()
        net.fail_link(5, 6)
        with pytest.warns(DeprecationWarning, match="adaptive"):
            table = net.install_legacy_fallback()
        assert isinstance(table, FallbackTable)
        assert table.dead_links == frozenset({(5, 6)})

    def test_silent_under_table_routing(self):
        import warnings

        topology = MeshTopology(4, 4)
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(topology), 0.05),
            seed=3,
        )
        net.fail_link(5, 6)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            net.install_legacy_fallback()

    def test_adaptive_network_reroutes_around_fault(self):
        net = self._adaptive_network()
        from repro.resilience import FaultInjector, FaultPlan

        FaultInjector(net, FaultPlan.single(5, 6, at=300))
        result = net.run(cycles=3_000, warmup=200)
        assert not result.degraded
        assert result.packets_delivered > 0
        resilience = result.extra["resilience"]
        record = resilience["fault_events"][0]
        assert record["residual_connected"] is True
