"""XYZ dimension-order routing on the 3D mesh and torus."""

import pytest

from repro.noc.packet import Packet
from repro.routing import (
    Mesh3DXYZRouting,
    Torus3DXYZRouting,
    routing_for,
)
from repro.topology import Mesh3DTopology, Torus3DTopology


def walk_ports(topology, routing, src, dst):
    """Port sequence of the route src -> dst."""
    pkt = Packet(src, dst, 6, created_at=0)
    node, ports = src, []
    for _ in range(2 * topology.num_nodes):
        decision = routing.decide(node, pkt)
        if decision.is_local:
            return ports
        ports.append(decision.port)
        node = topology.out_ports(node)[decision.port]
    raise AssertionError(f"route {src}->{dst} did not terminate")


class TestDispatch:
    def test_routing_for_picks_xyz(self):
        assert isinstance(
            routing_for(Mesh3DTopology(3, 3, 3)), Mesh3DXYZRouting
        )
        assert isinstance(
            routing_for(Torus3DTopology(3, 3, 3)), Torus3DXYZRouting
        )

    def test_required_vcs(self):
        assert Mesh3DXYZRouting(Mesh3DTopology(3, 3, 3)).required_vcs == 1
        assert (
            Torus3DXYZRouting(Torus3DTopology(3, 3, 3)).required_vcs == 2
        )

    def test_names_carry_topology(self):
        topo = Mesh3DTopology(3, 3, 3, tsv_latency=2)
        assert Mesh3DXYZRouting(topo).name == "xyz/mesh3d3x3x3@tsv2"


class TestMeshXYZOrder:
    def test_dimension_order_x_then_y_then_z(self):
        topo = Mesh3DTopology(4, 4, 4)
        routing = Mesh3DXYZRouting(topo)
        src = topo.node_at(0, 0, 0)
        dst = topo.node_at(2, 2, 2)
        ports = walk_ports(topo, routing, src, dst)
        assert ports == ["east", "east", "south", "south", "up", "up"]

    def test_backward_directions(self):
        topo = Mesh3DTopology(4, 4, 4)
        routing = Mesh3DXYZRouting(topo)
        src = topo.node_at(3, 3, 3)
        dst = topo.node_at(1, 2, 0)
        ports = walk_ports(topo, routing, src, dst)
        assert ports == [
            "west", "west", "north", "down", "down", "down",
        ]

    def test_local_delivery(self):
        topo = Mesh3DTopology(3, 3, 3)
        routing = Mesh3DXYZRouting(topo)
        decision = routing.decide(5, Packet(0, 5, 6, created_at=0))
        assert decision.is_local

    def test_always_vc_zero(self):
        topo = Mesh3DTopology(3, 3, 3)
        routing = Mesh3DXYZRouting(topo)
        for dst in range(1, topo.num_nodes):
            pkt = Packet(0, dst, 6, created_at=0)
            node = 0
            while True:
                decision = routing.decide(node, pkt)
                if decision.is_local:
                    break
                assert decision.vc == 0
                node = topo.out_ports(node)[decision.port]


class TestTorusXYZ:
    def test_takes_shorter_wrap_direction(self):
        topo = Torus3DTopology(5, 3, 3)
        routing = Torus3DXYZRouting(topo)
        # x: 0 -> 4 is one backward (west) hop around the wrap.
        ports = walk_ports(
            topo, routing, topo.node_at(0, 0, 0), topo.node_at(4, 0, 0)
        )
        assert ports == ["west"]

    def test_dateline_promotes_vc(self):
        topo = Torus3DTopology(5, 3, 3)
        routing = Torus3DXYZRouting(topo)
        # 3 -> 0 forward: hops 3->4 (vc 0) then 4->0 crossing the
        # dateline at x = size-1, promoting to vc 1.
        pkt = Packet(topo.node_at(3, 0, 0), topo.node_at(0, 0, 0), 6,
                     created_at=0)
        first = routing.decide(topo.node_at(3, 0, 0), pkt)
        assert (first.port, first.vc) == ("east", 0)
        second = routing.decide(topo.node_at(4, 0, 0), pkt)
        assert (second.port, second.vc) == ("east", 1)

    def test_vc_resets_on_dimension_change(self):
        topo = Torus3DTopology(5, 5, 3)
        routing = Torus3DXYZRouting(topo)
        src = topo.node_at(3, 3, 0)
        dst = topo.node_at(0, 0, 0)
        pkt = Packet(src, dst, 6, created_at=0)
        node, vcs, ports = src, [], []
        while True:
            decision = routing.decide(node, pkt)
            if decision.is_local:
                break
            vcs.append(decision.vc)
            ports.append(decision.port)
            node = topo.out_ports(node)[decision.port]
        # Both dimensions wrap (x: 3->4->0, y: 3->4->0); the VC
        # promotion in x must not leak into y's first hop.
        assert ports == ["east", "east", "south", "south"]
        assert vcs == [0, 1, 0, 1]

    def test_routes_are_minimal_exhaustive(self):
        topo = Torus3DTopology(4, 3, 3)
        routing = Torus3DXYZRouting(topo)
        graph = topo.to_graph()
        for src in range(topo.num_nodes):
            dist = graph.bfs_distances(src)
            for dst in range(topo.num_nodes):
                assert routing.path_length(src, dst) == dist[dst]


class TestFaultyFallback:
    def test_faulty_3d_topology_gets_table_routing(self):
        from repro.routing import TableRouting
        from repro.topology.faults import FaultyTopology

        base = Mesh3DTopology(3, 3, 3)
        faulty = FaultyTopology.with_random_faults(base, 2, seed=1)
        assert isinstance(routing_for(faulty), TableRouting)


class TestMinimalityWithTsvPenalty:
    def test_hop_counts_ignore_tsv_latency(self):
        # Routing is latency-oblivious: every minimal path crosses
        # exactly |dz| vertical links, so the penalised topology
        # routes identically to the uniform one.
        fast = Mesh3DTopology(3, 3, 3)
        slow = Mesh3DTopology(3, 3, 3, tsv_latency=4)
        r_fast = Mesh3DXYZRouting(fast)
        r_slow = Mesh3DXYZRouting(slow)
        for src in range(fast.num_nodes):
            for dst in range(fast.num_nodes):
                assert r_fast.path_length(src, dst) == (
                    r_slow.path_length(src, dst)
                )
