"""Unit tests for generic table-driven shortest-path routing."""

import pytest

from repro.noc.packet import Packet
from repro.routing import TableRouting, routing_for
from repro.routing.base import RoutingError
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    Topology,
    all_pairs_distances,
)


def packet(src, dst):
    return Packet(src, dst, 6, created_at=0)


@pytest.mark.parametrize(
    "topology",
    [
        RingTopology(7),
        SpidergonTopology(10),
        MeshTopology(3, 4),
        MeshTopology.irregular(11),
        MeshTopology.irregular(23),
    ],
    ids=lambda t: t.name,
)
class TestMinimalOnAnyTopology:
    def test_paths_minimal(self, topology):
        routing = TableRouting(topology)
        dist = all_pairs_distances(topology)
        for src in range(topology.num_nodes):
            for dst in range(topology.num_nodes):
                if src == dst:
                    continue
                assert routing.path_length(src, dst) == dist[src][dst]

    def test_local_at_destination(self, topology):
        routing = TableRouting(topology)
        assert routing.decide(1, packet(0, 1)).is_local


class TestDeterminism:
    def test_same_route_every_time(self):
        topology = SpidergonTopology(12)
        a = TableRouting(topology)
        b = TableRouting(topology)
        for src in range(12):
            for dst in range(12):
                if src != dst:
                    assert a.path(src, dst) == b.path(src, dst)

    def test_disconnected_topology_rejected(self):
        class TwoIslands(Topology):
            def __init__(self):
                super().__init__(4, "islands")

            def out_ports(self, node):
                peer = node ^ 1
                return {"peer": peer}

        with pytest.raises(RoutingError):
            TableRouting(TwoIslands())


class TestRoutingFor:
    def test_paper_defaults(self):
        from repro.routing import (
            MeshXYRouting,
            RingShortestRouting,
            SpidergonAcrossFirstRouting,
        )

        assert isinstance(
            routing_for(RingTopology(8)), RingShortestRouting
        )
        assert isinstance(
            routing_for(SpidergonTopology(8)),
            SpidergonAcrossFirstRouting,
        )
        assert isinstance(
            routing_for(MeshTopology(2, 4)), MeshXYRouting
        )

    def test_irregular_mesh_falls_back_to_table(self):
        assert isinstance(
            routing_for(MeshTopology.irregular(11)), TableRouting
        )
