"""Tests for the source-routing adapter."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.routing import (
    MeshXYRouting,
    RingShortestRouting,
    SourceRouting,
    SpidergonAcrossFirstRouting,
)
from repro.topology import MeshTopology, RingTopology, SpidergonTopology
from repro.traffic import TrafficSpec, UniformTraffic


def packet(src, dst):
    return Packet(src, dst, 6, created_at=0)


class TestRouteEquivalence:
    @pytest.mark.parametrize(
        "topology,base_cls",
        [
            (RingTopology(8), RingShortestRouting),
            (SpidergonTopology(12), SpidergonAcrossFirstRouting),
            (MeshTopology(3, 4), MeshXYRouting),
        ],
        ids=lambda v: getattr(v, "name", getattr(v, "__name__", v)),
    )
    def test_same_paths_as_base(self, topology, base_cls):
        base = base_cls(topology)
        source = SourceRouting(base_cls(topology))
        for src in range(topology.num_nodes):
            for dst in range(topology.num_nodes):
                if src != dst:
                    assert source.path(src, dst) == base.path(src, dst)

    def test_inherits_vc_requirement(self):
        wrapped = SourceRouting(RingShortestRouting(RingTopology(8)))
        assert wrapped.required_vcs == 2
        wrapped_mesh = SourceRouting(MeshXYRouting(MeshTopology(2, 4)))
        assert wrapped_mesh.required_vcs == 1


class TestVcSequence:
    def test_dateline_vcs_preserved(self):
        topology = RingTopology(8)
        source = SourceRouting(RingShortestRouting(topology))
        pkt = packet(6, 1)  # crosses the cw dateline at node 7
        vcs = []
        node = 6
        while node != 1:
            decision = source.decide(node, pkt)
            vcs.append(decision.vc)
            node = topology.out_ports(node)[decision.port]
        assert vcs == [0, 1, 1]


class TestInNetwork:
    def test_uniform_traffic_flows(self):
        topology = SpidergonTopology(16)
        net = Network(
            topology,
            routing=SourceRouting(
                SpidergonAcrossFirstRouting(topology)
            ),
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(topology), 0.5),
            seed=3,
        )
        result = net.run(cycles=5_000, warmup=1_000)
        assert result.throughput > 1.0

    def test_same_results_as_per_hop_routing(self):
        def run(routing_factory):
            topology = SpidergonTopology(12)
            net = Network(
                topology,
                routing=routing_factory(topology),
                config=NocConfig(source_queue_packets=16),
                traffic=TrafficSpec(UniformTraffic(topology), 0.2),
                seed=5,
            )
            result = net.run(cycles=4_000, warmup=800)
            return result.throughput, result.avg_latency, result.avg_hops

        per_hop = run(SpidergonAcrossFirstRouting)
        at_source = run(
            lambda t: SourceRouting(SpidergonAcrossFirstRouting(t))
        )
        assert per_hop == at_source
