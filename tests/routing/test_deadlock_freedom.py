"""Channel-dependency-graph regression tests (docs/deadlock.md).

Dally & Seitz: a routing function is deadlock-free iff its channel
dependency graph (CDG) — nodes are (link, virtual channel) pairs,
edges connect channels a packet may hold simultaneously — is acyclic.
These tests rebuild the CDG for the dateline-routed topologies by
walking ``decide()`` over every (src, dst) pair and asserting
acyclicity, so any future change to the dateline placement or the VC
discipline that reintroduces a cycle fails here, not in a wedged
simulation.

``TableRouting`` on the Spidergon is the detector's positive control:
docs/deadlock.md documents its CDG as cyclic (single VC around the
ring), and the checker must say so.
"""

import pytest

from repro.noc.packet import Packet
from repro.routing import (
    CirculantTableRouting,
    Mesh3DXYZRouting,
    MultiplicativeCirculantRouting,
    RingShortestRouting,
    SpidergonAcrossFirstRouting,
    TableRouting,
    Torus3DXYZRouting,
)
from repro.topology import (
    CirculantTopology,
    Mesh3DTopology,
    RingTopology,
    SpidergonTopology,
    Torus3DTopology,
)


def channel_walk(topology, routing, src, dst):
    """The (link, vc) channels a packet from src to dst occupies, in
    order.  A link is identified as (node, port)."""
    pkt = Packet(src, dst, 6, created_at=0)
    node, channels = src, []
    for _ in range(2 * topology.num_nodes):
        decision = routing.decide(node, pkt)
        if decision.is_local:
            return channels
        channels.append(((node, decision.port), decision.vc))
        node = topology.out_ports(node)[decision.port]
    raise AssertionError(f"route {src}->{dst} did not terminate")


def channel_dependency_graph(topology, routing):
    """CDG edges over all (src, dst) pairs: channel -> next channel."""
    edges = {}
    n = topology.num_nodes
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            channels = channel_walk(topology, routing, src, dst)
            for a, b in zip(channels, channels[1:]):
                edges.setdefault(a, set()).add(b)
    return edges


def find_cycle(edges):
    """A channel on some CDG cycle, or None if the graph is acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {}

    def visit(channel):
        color[channel] = GREY
        for succ in edges.get(channel, ()):
            state = color.get(succ, WHITE)
            if state == GREY:
                return succ
            if state == WHITE:
                found = visit(succ)
                if found is not None:
                    return found
        color[channel] = BLACK
        return None

    for channel in list(edges):
        if color.get(channel, WHITE) == WHITE:
            found = visit(channel)
            if found is not None:
                return found
    return None


CIRCULANT_GRID = [
    (8, 2), (8, 3), (8, 4), (9, 3), (10, 4), (12, 3), (12, 5),
    (15, 6), (16, 4), (16, 5), (16, 8), (20, 6), (21, 7), (25, 5),
    (36, 6),
]


class TestCirculantAcyclicity:
    @pytest.mark.parametrize("n,s", CIRCULANT_GRID)
    def test_table_routing_cdg_acyclic(self, n, s):
        topology = CirculantTopology(n, s)
        edges = channel_dependency_graph(
            topology, CirculantTableRouting(topology)
        )
        assert find_cycle(edges) is None

    @pytest.mark.parametrize("base", [3, 4, 5, 6])
    def test_multiplicative_routing_cdg_acyclic(self, base):
        topology = CirculantTopology.multiplicative(base)
        edges = channel_dependency_graph(
            topology, MultiplicativeCirculantRouting(topology)
        )
        assert find_cycle(edges) is None


class TestPaperSchemesStayAcyclic:
    @pytest.mark.parametrize("n", [5, 8, 13, 16])
    def test_ring_dateline_cdg_acyclic(self, n):
        topology = RingTopology(n)
        edges = channel_dependency_graph(
            topology, RingShortestRouting(topology)
        )
        assert find_cycle(edges) is None

    @pytest.mark.parametrize("n", [8, 12, 16])
    def test_spidergon_dateline_cdg_acyclic(self, n):
        topology = SpidergonTopology(n)
        edges = channel_dependency_graph(
            topology, SpidergonAcrossFirstRouting(topology)
        )
        assert find_cycle(edges) is None


class Test3DSchemesAcyclic:
    """XYZ dimension ordering (mesh) and per-dimension datelines
    (torus) keep the 3D CDGs acyclic."""

    @pytest.mark.parametrize(
        "dims", [(3, 3, 3), (2, 3, 4), (4, 4, 2), (1, 4, 3)]
    )
    def test_mesh3d_xyz_cdg_acyclic(self, dims):
        topology = Mesh3DTopology(*dims)
        edges = channel_dependency_graph(
            topology, Mesh3DXYZRouting(topology)
        )
        assert find_cycle(edges) is None

    @pytest.mark.parametrize(
        "dims", [(3, 3, 3), (4, 3, 3), (3, 4, 5), (4, 4, 4)]
    )
    def test_torus3d_dateline_cdg_acyclic(self, dims):
        topology = Torus3DTopology(*dims)
        edges = channel_dependency_graph(
            topology, Torus3DXYZRouting(topology)
        )
        assert find_cycle(edges) is None

    def test_torus3d_single_vc_walks_would_cycle(self):
        # Positive control for the 3D family: collapsing every
        # decision to VC 0 (ignoring the dateline promotion) must
        # close a cycle around a wrap dimension.  The dimension needs
        # size >= 4 so minimal routes take two consecutive hops in it
        # (a size-3 ring is covered in single hops, leaving no
        # intra-dimension dependency to close a cycle with).
        topology = Torus3DTopology(5, 3, 3)
        routing = Torus3DXYZRouting(topology)
        edges = {}
        n = topology.num_nodes
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                channels = [
                    (link, 0)
                    for link, _ in channel_walk(
                        topology, routing, src, dst
                    )
                ]
                for a, b in zip(channels, channels[1:]):
                    edges.setdefault(a, set()).add(b)
        assert find_cycle(edges) is not None


class TestDetectorPositiveControl:
    def test_single_vc_table_routing_on_spidergon_is_cyclic(self):
        # Documented in docs/deadlock.md: shortest-path table routing
        # with one VC closes a dependency cycle around the ring.  If
        # the checker cannot see that cycle it proves nothing above.
        topology = SpidergonTopology(12)
        edges = channel_dependency_graph(
            topology, TableRouting(topology)
        )
        assert find_cycle(edges) is not None

    def test_single_vc_table_routing_on_ring_is_cyclic(self):
        topology = RingTopology(8)
        edges = channel_dependency_graph(
            topology, TableRouting(topology)
        )
        assert find_cycle(edges) is not None


class TestSaturatedLoadSmoke:
    """End-to-end backstop: a saturating run on the circulant must
    finish without the stall watchdog firing."""

    @pytest.mark.parametrize("n,s", [(16, 4), (15, 6), (16, 8)])
    def test_no_stall_at_saturation(self, n, s):
        from repro.experiments.runner import (
            SimulationSettings,
            run_simulation,
        )
        from repro.experiments.specs import parse_pattern

        topology = CirculantTopology(n, s)
        settings = SimulationSettings(
            cycles=6_000, warmup=1_000, seed=3, stall_cycles=1_500
        )
        result = run_simulation(
            topology,
            parse_pattern("uniform", topology),
            0.9,  # far past saturation
            settings,
        )
        assert not result.degraded
        assert "stall" not in result.extra
        assert result.packets_delivered > 0
