"""Unit tests for the Spidergon across-first routing scheme."""

import pytest

from repro.noc.packet import Packet
from repro.routing import SpidergonAcrossFirstRouting
from repro.topology import SpidergonTopology, all_pairs_distances


def packet(src, dst):
    return Packet(src, dst, 6, created_at=0)


class TestAcrossFirstRule:
    def test_across_taken_for_opposite_half(self):
        # Paper: "if the target ... is at distance D > N/4 on the
        # external ring then the across link is traversed first".
        routing = SpidergonAcrossFirstRouting(SpidergonTopology(16))
        decision = routing.decide(0, packet(0, 8))
        assert decision.port == "across"

    def test_across_not_taken_at_exact_quarter(self):
        # D == N/4 is not "> N/4": stay on the ring.
        routing = SpidergonAcrossFirstRouting(SpidergonTopology(16))
        decision = routing.decide(0, packet(0, 4))
        assert decision.port == "cw"

    def test_across_just_beyond_quarter(self):
        routing = SpidergonAcrossFirstRouting(SpidergonTopology(16))
        decision = routing.decide(0, packet(0, 5))
        assert decision.port == "across"

    def test_across_only_once(self):
        topology = SpidergonTopology(16)
        routing = SpidergonAcrossFirstRouting(topology)
        for dst in range(1, 16):
            path = routing.path(0, dst)
            across_hops = sum(
                1
                for a, b in zip(path, path[1:])
                if topology.opposite(a) == b
            )
            assert across_hops <= 1

    def test_across_always_first_hop_when_used(self):
        topology = SpidergonTopology(24)
        routing = SpidergonAcrossFirstRouting(topology)
        for src in range(24):
            for dst in range(24):
                if src == dst:
                    continue
                path = routing.path(src, dst)
                for i, (a, b) in enumerate(zip(path, path[1:])):
                    if topology.opposite(a) == b:
                        assert i == 0

    def test_local_at_destination(self):
        routing = SpidergonAcrossFirstRouting(SpidergonTopology(8))
        assert routing.decide(3, packet(0, 3)).is_local


class TestMinimality:
    @pytest.mark.parametrize("n", [4, 6, 8, 10, 12, 16, 22, 24, 32])
    def test_across_first_is_minimal(self, n):
        # Observed property (verified exhaustively to N=64 during
        # development): across-first routes match BFS shortest paths.
        topology = SpidergonTopology(n)
        routing = SpidergonAcrossFirstRouting(topology)
        dist = all_pairs_distances(topology)
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                assert routing.path_length(src, dst) == dist[src][dst]


class TestVcDiscipline:
    def test_across_hop_uses_vc0(self):
        routing = SpidergonAcrossFirstRouting(SpidergonTopology(16))
        decision = routing.decide(0, packet(0, 8))
        assert decision.vc == 0

    def test_requires_two_vcs(self):
        routing = SpidergonAcrossFirstRouting(SpidergonTopology(8))
        assert routing.required_vcs == 2

    def test_dateline_promotion_on_ring_segment(self):
        # Packet from 14 to 2 on N=16: ring distance 4 = N/4, so it
        # rides cw through the dateline edge 15 -> 0.
        topology = SpidergonTopology(16)
        routing = SpidergonAcrossFirstRouting(topology)
        pkt = packet(14, 2)
        node = 14
        vcs = []
        while True:
            decision = routing.decide(node, pkt)
            if decision.is_local:
                break
            vcs.append((node, decision.port, decision.vc))
            node = topology.out_ports(node)[decision.port]
        assert (14, "cw", 0) in vcs
        assert (15, "cw", 1) in vcs  # crossing hop promoted
        assert (0, "cw", 1) in vcs
        assert (1, "cw", 1) in vcs
