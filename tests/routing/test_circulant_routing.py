"""Oracle-verified tests for the circulant routing algorithms.

The acceptance bar for the family: table-based routing is *provably
minimal* on every tested ``C(N; 1, s)`` — property-tested against the
BFS distances of :mod:`repro.topology.graph` for N up to 64 with
randomly drawn chords — and the analytic multiplicative scheme agrees
with the table everywhere it is defined.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.packet import Packet
from repro.routing import (
    CirculantTableRouting,
    MultiplicativeCirculantRouting,
    routing_for,
)
from repro.topology import CirculantTopology, RingTopology


def circulant_params(max_nodes=64):
    return st.integers(min_value=4, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n), st.integers(min_value=2, max_value=n // 2)
        )
    )


def walk(topology, routing, src, dst):
    """(nodes visited, VC sequence) of one fully routed packet."""
    pkt = Packet(src, dst, 6, created_at=0)
    node, nodes, vcs = src, [src], []
    for _ in range(2 * topology.num_nodes):
        decision = routing.decide(node, pkt)
        if decision.is_local:
            return nodes, vcs
        vcs.append(decision.vc)
        node = topology.out_ports(node)[decision.port]
        nodes.append(node)
    raise AssertionError(f"route {src}->{dst} did not terminate")


class TestTableMinimality:
    @given(circulant_params(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_hops_equal_bfs_distance(self, params, data):
        n, s = params
        topology = CirculantTopology(n, s)
        routing = CirculantTableRouting(topology)
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        dist = topology.to_graph().bfs_distances(src)[dst]
        assert routing.path_length(src, dst) == dist

    @pytest.mark.parametrize(
        "n,s", [(8, 2), (10, 4), (16, 4), (16, 8), (25, 5), (64, 8)]
    )
    def test_exhaustive_minimality(self, n, s):
        topology = CirculantTopology(n, s)
        routing = CirculantTableRouting(topology)
        graph = topology.to_graph()
        for src in range(n):
            distances = graph.bfs_distances(src)
            for dst in range(n):
                assert routing.path_length(src, dst) == distances[dst]

    @given(circulant_params(max_nodes=40), st.data())
    @settings(max_examples=80, deadline=None)
    def test_walk_reaches_destination(self, params, data):
        n, s = params
        topology = CirculantTopology(n, s)
        routing = CirculantTableRouting(topology)
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(
            st.integers(0, n - 1).filter(lambda d: d != src)
        )
        nodes, _ = walk(topology, routing, src, dst)
        assert nodes[-1] == dst

    def test_rejects_non_circulant_topology(self):
        with pytest.raises(TypeError):
            CirculantTableRouting(RingTopology(8))


class TestTwoPhaseDiscipline:
    @given(circulant_params(max_nodes=48), st.data())
    @settings(max_examples=80, deadline=None)
    def test_chords_never_follow_ring_steps(self, params, data):
        n, s = params
        topology = CirculantTopology(n, s)
        routing = CirculantTableRouting(topology)
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(
            st.integers(0, n - 1).filter(lambda d: d != src)
        )
        nodes, _ = walk(topology, routing, src, dst)
        hop_kinds = [
            "ring"
            if (b - a) % n in (1, n - 1)
            else "chord"
            for a, b in zip(nodes, nodes[1:])
        ]
        # All chord hops strictly precede all ring hops.
        assert hop_kinds == sorted(hop_kinds)

    @given(circulant_params(max_nodes=48), st.data())
    @settings(max_examples=80, deadline=None)
    def test_vc_monotone_within_each_phase(self, params, data):
        n, s = params
        topology = CirculantTopology(n, s)
        routing = CirculantTableRouting(topology)
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(
            st.integers(0, n - 1).filter(lambda d: d != src)
        )
        nodes, vcs = walk(topology, routing, src, dst)
        kinds = [
            "ring" if (b - a) % n in (1, n - 1) else "chord"
            for a, b in zip(nodes, nodes[1:])
        ]
        assert all(vc in (0, 1) for vc in vcs)
        for phase in ("chord", "ring"):
            phase_vcs = [
                vc for vc, kind in zip(vcs, kinds) if kind == phase
            ]
            assert all(
                a <= b for a, b in zip(phase_vcs, phase_vcs[1:])
            ), (nodes, vcs, kinds)

    @given(circulant_params(max_nodes=48), st.data())
    @settings(max_examples=60, deadline=None)
    def test_at_most_one_dateline_crossing_per_phase(
        self, params, data
    ):
        n, s = params
        topology = CirculantTopology(n, s)
        routing = CirculantTableRouting(topology)
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(
            st.integers(0, n - 1).filter(lambda d: d != src)
        )
        nodes, vcs = walk(topology, routing, src, dst)
        kinds = [
            "ring" if (b - a) % n in (1, n - 1) else "chord"
            for a, b in zip(nodes, nodes[1:])
        ]
        for phase in ("chord", "ring"):
            phase_vcs = [
                vc for vc, kind in zip(vcs, kinds) if kind == phase
            ]
            # 0 -> 1 at most once means at most one crossing.
            assert sum(
                1
                for a, b in zip([0] + phase_vcs, phase_vcs)
                if b > a
            ) <= 1


class TestMultiplicativeRouting:
    @given(st.integers(min_value=2, max_value=8), st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_bfs_distance(self, base, data):
        topology = CirculantTopology.multiplicative(base)
        routing = MultiplicativeCirculantRouting(topology)
        n = topology.num_nodes
        src = data.draw(st.integers(0, n - 1))
        distances = topology.to_graph().bfs_distances(src)
        for dst in range(n):
            assert routing.path_length(src, dst) == distances[dst]

    @pytest.mark.parametrize("base", [2, 3, 4, 5, 6, 7, 8])
    def test_decompose_agrees_with_table(self, base):
        topology = CirculantTopology.multiplicative(base)
        analytic = MultiplicativeCirculantRouting(topology)
        table = CirculantTableRouting(topology)
        for offset in range(topology.num_nodes):
            assert analytic.decompose(offset) == table.decompose(offset)

    def test_rejects_non_multiplicative(self):
        with pytest.raises(ValueError, match="circulant16s5"):
            MultiplicativeCirculantRouting(CirculantTopology(16, 5))


class TestRegistration:
    def test_routing_for_picks_table(self):
        topology = CirculantTopology(20, 6)
        routing = routing_for(topology)
        assert isinstance(routing, CirculantTableRouting)

    def test_required_vcs(self):
        assert CirculantTableRouting(
            CirculantTopology(12, 3)
        ).required_vcs == 2
