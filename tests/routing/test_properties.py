"""Property-based tests over all routing algorithms."""

from hypothesis import given, settings, strategies as st

from repro.noc.packet import Packet
from repro.routing import (
    CirculantTableRouting,
    HypercubeEcubeRouting,
    Mesh3DXYZRouting,
    MeshXYRouting,
    MultiplicativeCirculantRouting,
    RingShortestRouting,
    SpidergonAcrossFirstRouting,
    TableRouting,
    Torus3DXYZRouting,
    TorusXYRouting,
)
from repro.topology import (
    CirculantTopology,
    HypercubeTopology,
    Mesh3DTopology,
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    Torus3DTopology,
    TorusTopology,
    all_pairs_distances,
)

even_sizes = st.integers(min_value=2, max_value=24).map(lambda x: 2 * x)


# One strategy per registered routing algorithm, each producing a
# ready-to-oracle (topology, routing) pair over randomized parameters.
ROUTED_TOPOLOGIES = {
    "ring": st.integers(min_value=3, max_value=40).map(
        lambda n: (lambda t: (t, RingShortestRouting(t)))(
            RingTopology(n)
        )
    ),
    "spidergon": even_sizes.map(
        lambda n: (lambda t: (t, SpidergonAcrossFirstRouting(t)))(
            SpidergonTopology(n)
        )
    ),
    "mesh-xy": st.tuples(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    .filter(lambda rc: rc[0] * rc[1] >= 2)
    .map(
        lambda rc: (lambda t: (t, MeshXYRouting(t)))(
            MeshTopology(*rc)
        )
    ),
    "torus-xy": st.tuples(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=3, max_value=8),
    ).map(
        lambda rc: (lambda t: (t, TorusXYRouting(t)))(
            TorusTopology(*rc)
        )
    ),
    "hypercube": st.integers(min_value=1, max_value=6).map(
        lambda d: (lambda t: (t, HypercubeEcubeRouting(t)))(
            HypercubeTopology(d)
        )
    ),
    "circulant-table": st.integers(min_value=4, max_value=64)
    .flatmap(
        lambda n: st.tuples(
            st.just(n), st.integers(min_value=2, max_value=n // 2)
        )
    )
    .map(
        lambda ns: (lambda t: (t, CirculantTableRouting(t)))(
            CirculantTopology(*ns)
        )
    ),
    "circulant-mult": st.integers(min_value=2, max_value=8).map(
        lambda s: (lambda t: (t, MultiplicativeCirculantRouting(t)))(
            CirculantTopology.multiplicative(s)
        )
    ),
    "table": st.integers(min_value=2, max_value=30).map(
        lambda n: (lambda t: (t, TableRouting(t)))(
            MeshTopology.irregular(n)
        )
    ),
    # TSV latency is drawn too: routing must be latency-oblivious
    # (every minimal path has the same vertical hop count).
    "mesh3d-xyz": st.tuples(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=4),
    ).map(
        lambda args: (lambda t: (t, Mesh3DXYZRouting(t)))(
            Mesh3DTopology(*args[:3], tsv_latency=args[3])
        )
    ),
    "torus3d-xyz": st.tuples(
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=1, max_value=4),
    ).map(
        lambda args: (lambda t: (t, Torus3DXYZRouting(t)))(
            Torus3DTopology(*args[:3], tsv_latency=args[3])
        )
    ),
}


class TestBfsOracle:
    """Every algorithm's hop count equals the BFS shortest-path
    distance of :meth:`repro.topology.graph.Graph.bfs_distances` —
    one oracle for the whole registry."""

    @given(
        st.sampled_from(sorted(ROUTED_TOPOLOGIES)), st.data()
    )
    @settings(max_examples=250, deadline=None)
    def test_path_length_equals_bfs_distance(self, kind, data):
        topology, routing = data.draw(ROUTED_TOPOLOGIES[kind])
        n = topology.num_nodes
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        dist = topology.to_graph().bfs_distances(src)[dst]
        assert routing.path_length(src, dst) == dist, (
            f"{kind}: {routing.name} routes {src}->{dst} in "
            f"{routing.path_length(src, dst)} hops, BFS says {dist}"
        )


def walk_vcs(topology, routing, src, dst):
    """The VC sequence a packet sees along its route."""
    pkt = Packet(src, dst, 6, created_at=0)
    node, vcs = src, []
    while True:
        decision = routing.decide(node, pkt)
        if decision.is_local:
            return vcs
        vcs.append(decision.vc)
        node = topology.out_ports(node)[decision.port]


class TestTermination:
    @given(even_sizes, st.data())
    @settings(max_examples=40, deadline=None)
    def test_spidergon_routes_terminate_minimally(self, n, data):
        topology = SpidergonTopology(n)
        routing = SpidergonAcrossFirstRouting(topology)
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1).filter(lambda d: d != src))
        dist = topology.to_graph().bfs_distances(src)[dst]
        assert routing.path_length(src, dst) == dist

    @given(st.integers(min_value=3, max_value=40), st.data())
    @settings(max_examples=40, deadline=None)
    def test_ring_routes_terminate_minimally(self, n, data):
        topology = RingTopology(n)
        routing = RingShortestRouting(topology)
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1).filter(lambda d: d != src))
        assert routing.path_length(src, dst) == topology.ring_distance(
            src, dst
        )

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_mesh_routes_terminate_minimally(self, rows, cols, data):
        if rows * cols < 2:
            return
        topology = MeshTopology(rows, cols)
        routing = MeshXYRouting(topology)
        n = topology.num_nodes
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1).filter(lambda d: d != src))
        r1, c1 = topology.coordinates(src)
        r2, c2 = topology.coordinates(dst)
        assert routing.path_length(src, dst) == abs(r1 - r2) + abs(
            c1 - c2
        )


class TestVcMonotonicity:
    """Dateline invariant: VC sequences are 0...0 1...1 (never drop)."""

    @given(even_sizes, st.data())
    @settings(max_examples=40, deadline=None)
    def test_spidergon_vc_never_decreases(self, n, data):
        topology = SpidergonTopology(n)
        routing = SpidergonAcrossFirstRouting(topology)
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1).filter(lambda d: d != src))
        vcs = walk_vcs(topology, routing, src, dst)
        ring_vcs = vcs[1:] if len(vcs) > 1 and vcs[0] == 0 else vcs
        assert all(a <= b for a, b in zip(vcs, vcs[1:])) or (
            # the across hop is always VC0 and may precede promotion
            vcs[0] == 0
            and all(a <= b for a, b in zip(ring_vcs, ring_vcs[1:]))
        )

    @given(st.integers(min_value=3, max_value=40), st.data())
    @settings(max_examples=40, deadline=None)
    def test_ring_vc_never_decreases(self, n, data):
        topology = RingTopology(n)
        routing = RingShortestRouting(topology)
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1).filter(lambda d: d != src))
        vcs = walk_vcs(topology, routing, src, dst)
        assert all(a <= b for a, b in zip(vcs, vcs[1:]))
        assert all(vc in (0, 1) for vc in vcs)


class TestTableAgreesWithSpecialised:
    @given(even_sizes)
    @settings(max_examples=15, deadline=None)
    def test_spidergon_table_same_lengths(self, n):
        topology = SpidergonTopology(n)
        table = TableRouting(topology)
        dist = all_pairs_distances(topology)
        for src in range(0, n, max(1, n // 6)):
            for dst in range(n):
                if src != dst:
                    assert table.path_length(src, dst) == dist[src][dst]
