"""Unit tests for dimension-order (XY) routing."""

import pytest

from repro.noc.packet import Packet
from repro.routing import MeshXYRouting
from repro.routing.base import RoutingError
from repro.topology import MeshTopology, all_pairs_distances


def packet(src, dst):
    return Packet(src, dst, 6, created_at=0)


class TestXYOrder:
    def test_x_before_y(self):
        # Paper: "flits ... migrate along the X (horizontal link)
        # nodes up to the column of the target, then along the Y".
        mesh = MeshTopology(3, 4)
        routing = MeshXYRouting(mesh)
        src = mesh.node_at(0, 0)
        dst = mesh.node_at(2, 3)
        path = routing.path(src, dst)
        coords = [mesh.coordinates(n) for n in path]
        # First the column must settle, then the row.
        cols = [c for _, c in coords]
        rows = [r for r, _ in coords]
        settle = cols.index(3)
        assert all(c == 3 for c in cols[settle:])
        assert all(r == 0 for r in rows[: settle + 1])

    def test_single_vc(self):
        assert MeshXYRouting(MeshTopology(2, 4)).required_vcs == 1

    def test_pure_horizontal_and_vertical(self):
        mesh = MeshTopology(3, 3)
        routing = MeshXYRouting(mesh)
        east = routing.decide(mesh.node_at(1, 0), packet(0, mesh.node_at(1, 2)))
        assert east.port == "east"
        west = routing.decide(mesh.node_at(1, 2), packet(0, mesh.node_at(1, 0)))
        assert west.port == "west"
        south = routing.decide(mesh.node_at(0, 1), packet(0, mesh.node_at(2, 1)))
        assert south.port == "south"
        north = routing.decide(mesh.node_at(2, 1), packet(0, mesh.node_at(0, 1)))
        assert north.port == "north"

    def test_local_at_destination(self):
        mesh = MeshTopology(2, 4)
        routing = MeshXYRouting(mesh)
        assert routing.decide(3, packet(0, 3)).is_local


class TestMinimality:
    @pytest.mark.parametrize(
        "dims", [(2, 4), (3, 3), (4, 6), (1, 8), (5, 2)]
    )
    def test_xy_is_minimal(self, dims):
        mesh = MeshTopology(*dims)
        routing = MeshXYRouting(mesh)
        dist = all_pairs_distances(mesh)
        for src in range(mesh.num_nodes):
            for dst in range(mesh.num_nodes):
                if src == dst:
                    continue
                assert routing.path_length(src, dst) == dist[src][dst]


class TestIrregularRejection:
    def test_irregular_mesh_rejected(self):
        with pytest.raises(RoutingError, match="TableRouting"):
            MeshXYRouting(MeshTopology.irregular(11))
