"""Unit tests for ring shortest-direction routing and the dateline."""

import pytest

from repro.noc.packet import Packet
from repro.routing import RingShortestRouting
from repro.routing.base import LOCAL_PORT
from repro.routing.ring import dateline_vc, shortest_ring_direction
from repro.topology import RingTopology


def packet(src, dst, size=6):
    return Packet(src, dst, size, created_at=0)


class TestDirectionChoice:
    def test_clockwise_for_short_cw(self):
        assert shortest_ring_direction(8, 0, 3) == "cw"

    def test_counterclockwise_for_short_ccw(self):
        assert shortest_ring_direction(8, 0, 6) == "ccw"

    def test_tie_breaks_clockwise(self):
        assert shortest_ring_direction(8, 0, 4) == "cw"

    def test_wraps(self):
        assert shortest_ring_direction(8, 7, 1) == "cw"


class TestRouting:
    def test_local_at_destination(self):
        routing = RingShortestRouting(RingTopology(8))
        decision = routing.decide(5, packet(0, 5))
        assert decision.is_local

    def test_paths_are_minimal_all_pairs(self):
        topology = RingTopology(9)
        routing = RingShortestRouting(topology)
        for src in range(9):
            for dst in range(9):
                if src == dst:
                    continue
                assert routing.path_length(src, dst) == (
                    topology.ring_distance(src, dst)
                )

    def test_direction_is_maintained(self):
        # Paper: direction "is taken and maintained".
        topology = RingTopology(8)
        routing = RingShortestRouting(topology)
        pkt = packet(0, 3)
        ports = []
        node = 0
        while True:
            decision = routing.decide(node, pkt)
            if decision.is_local:
                break
            ports.append(decision.port)
            node = topology.out_ports(node)[decision.port]
        assert set(ports) == {"cw"}

    def test_requires_two_vcs(self):
        assert RingShortestRouting(RingTopology(8)).required_vcs == 2


class TestDateline:
    def test_promotes_on_cw_crossing(self):
        pkt = packet(6, 1)
        assert dateline_vc(8, 6, "cw", pkt) == 0
        assert dateline_vc(8, 7, "cw", pkt) == 1  # hop 7 -> 0 crosses
        assert pkt.vc == 1

    def test_promotes_on_ccw_crossing(self):
        pkt = packet(1, 6)
        assert dateline_vc(8, 1, "ccw", pkt) == 0
        assert dateline_vc(8, 0, "ccw", pkt) == 1  # hop 0 -> 7 crosses
        assert pkt.vc == 1

    def test_sticky_after_crossing(self):
        pkt = packet(7, 3)
        dateline_vc(8, 7, "cw", pkt)
        assert dateline_vc(8, 0, "cw", pkt) == 1
        assert dateline_vc(8, 1, "cw", pkt) == 1

    def test_no_promotion_without_crossing(self):
        pkt = packet(1, 4)
        for node in (1, 2, 3):
            assert dateline_vc(8, node, "cw", pkt) == 0
        assert pkt.vc == 0

    def test_decide_uses_vc1_on_crossing_hop(self):
        routing = RingShortestRouting(RingTopology(8))
        pkt = packet(7, 2)
        decision = routing.decide(7, pkt)
        assert decision.port == "cw"
        assert decision.vc == 1

    def test_cw_vc0_queue_never_requested_at_dateline_node(self):
        # The deadlock-freedom argument: no packet asks for (cw, vc0)
        # at node N-1.
        topology = RingTopology(8)
        routing = RingShortestRouting(topology)
        for src in range(8):
            for dst in range(8):
                if src == dst:
                    continue
                pkt = packet(src, dst)
                node = src
                while True:
                    decision = routing.decide(node, pkt)
                    if decision.is_local:
                        break
                    if node == 7 and decision.port == "cw":
                        assert decision.vc == 1
                    if node == 0 and decision.port == "ccw":
                        assert decision.vc == 1
                    node = topology.out_ports(node)[decision.port]
