"""Unit tests for torus dimension-order routing."""

import pytest

from repro.noc.packet import Packet
from repro.routing import TorusXYRouting, routing_for
from repro.topology import TorusTopology, all_pairs_distances
from repro.topology.mesh import EAST, NORTH, SOUTH, WEST


def packet(src, dst):
    return Packet(src, dst, 6, created_at=0)


class TestMinimality:
    @pytest.mark.parametrize(
        "dims", [(3, 3), (3, 5), (4, 4), (4, 6), (5, 5)]
    )
    def test_routes_are_shortest(self, dims):
        torus = TorusTopology(*dims)
        routing = TorusXYRouting(torus)
        dist = all_pairs_distances(torus)
        for src in range(torus.num_nodes):
            for dst in range(torus.num_nodes):
                if src == dst:
                    continue
                assert routing.path_length(src, dst) == dist[src][dst]


class TestDimensionOrder:
    def test_x_settles_before_y(self):
        torus = TorusTopology(4, 4)
        routing = TorusXYRouting(torus)
        path = routing.path(torus.node_at(0, 0), torus.node_at(2, 2))
        coords = [torus.coordinates(n) for n in path]
        cols = [c for _, c in coords]
        settle = cols.index(2)
        assert all(c == 2 for c in cols[settle:])

    def test_wrap_route_taken_when_shorter(self):
        torus = TorusTopology(3, 5)
        routing = TorusXYRouting(torus)
        # Column 0 -> column 4: wrapping west is 1 hop vs 4 east.
        decision = routing.decide(
            torus.node_at(0, 0), packet(0, torus.node_at(0, 4))
        )
        assert decision.port == WEST


class TestDateline:
    def test_vc_promoted_on_wrap(self):
        torus = TorusTopology(3, 6)
        routing = TorusXYRouting(torus)
        # From column 4 to column 1: east through the wrap (4->5->0->1).
        pkt = packet(torus.node_at(0, 4), torus.node_at(0, 1))
        first = routing.decide(torus.node_at(0, 4), pkt)
        assert (first.port, first.vc) == (EAST, 0)
        second = routing.decide(torus.node_at(0, 5), pkt)
        assert (second.port, second.vc) == (EAST, 1)
        third = routing.decide(torus.node_at(0, 0), pkt)
        assert (third.port, third.vc) == (EAST, 1)

    def test_vc_resets_between_dimensions(self):
        torus = TorusTopology(4, 4)
        routing = TorusXYRouting(torus)
        # X leg wraps (promoting to VC1), then the Y leg starts fresh
        # on VC0.
        pkt = packet(torus.node_at(0, 3), torus.node_at(1, 0))
        x_hop = routing.decide(torus.node_at(0, 3), pkt)
        assert (x_hop.port, x_hop.vc) == (EAST, 1)
        y_hop = routing.decide(torus.node_at(0, 0), pkt)
        assert (y_hop.port, y_hop.vc) == (SOUTH, 0)

    def test_no_promotion_without_wrap(self):
        torus = TorusTopology(4, 4)
        routing = TorusXYRouting(torus)
        pkt = packet(torus.node_at(0, 0), packet_dst := torus.node_at(0, 1))
        decision = routing.decide(torus.node_at(0, 0), pkt)
        assert decision.vc == 0

    def test_requires_two_vcs(self):
        assert TorusXYRouting(TorusTopology(3, 3)).required_vcs == 2


class TestIntegration:
    def test_routing_for_selects_torus_xy(self):
        assert isinstance(
            routing_for(TorusTopology(4, 4)), TorusXYRouting
        )

    def test_uniform_traffic_flows_without_deadlock(self):
        from repro.noc.config import NocConfig
        from repro.noc.network import Network
        from repro.traffic import TrafficSpec, UniformTraffic

        torus = TorusTopology(4, 4)
        net = Network(
            torus,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(torus), 0.8),
            seed=3,
        )
        result = net.run(cycles=6_000, warmup=3_000)
        assert result.throughput > 1.0

    def test_torus_outperforms_mesh_under_bit_complement(self):
        # Bit-complement sends every node to its mirror (opposite
        # corner region): adversarial for the mesh, halved by the
        # torus wrap links.
        from repro.noc.config import NocConfig
        from repro.noc.network import Network
        from repro.topology import MeshTopology
        from repro.traffic import BitComplementTraffic, TrafficSpec

        results = {}
        for topology in (TorusTopology(4, 4), MeshTopology(4, 4)):
            net = Network(
                topology,
                config=NocConfig(source_queue_packets=16),
                traffic=TrafficSpec(BitComplementTraffic(topology), 0.5),
                seed=3,
            )
            results[topology.name] = net.run(
                cycles=6_000, warmup=3_000
            ).throughput
        assert results["torus4x4"] > results["mesh4x4"]
