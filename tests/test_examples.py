"""Smoke tests: the fast example scripts run end-to-end.

Only the examples that finish in seconds run here; the longer studies
(`saturation_study`, `routing_playground`, `cost_tradeoff`,
`campaign_sweep`, `shared_memory_soc`) are exercised at reduced scale
through the library calls they are built from (see the experiments
and benchmarks suites); their syntax is still checked by compilation.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestFastExamples:
    def test_quickstart(self):
        completed = run_example("quickstart.py")
        assert completed.returncode == 0, completed.stderr
        assert "Throughput:" in completed.stdout
        assert "spidergon16" in completed.stdout

    def test_topology_explorer(self):
        completed = run_example("topology_explorer.py", "12")
        assert completed.returncode == 0, completed.stderr
        assert "spidergon12" in completed.stdout
        assert "lowest E[D]" in completed.stdout

    def test_irregular_floorplan(self):
        completed = run_example("irregular_floorplan.py")
        assert completed.returncode == 0, completed.stderr
        assert "##" in completed.stdout  # the macro in the ASCII plan
        assert "mesh5x5-irregular21" in completed.stdout

    def test_observability_tour(self):
        completed = run_example("observability_tour.py")
        assert completed.returncode == 0, completed.stderr
        assert "heat table" in completed.stdout
        # The hot-spot's incoming links dominate the utilization.
        assert "Busiest link" in completed.stdout
        assert "hot-spot node 0" in completed.stdout
        assert "Kernel profile" in completed.stdout


class TestAllExamplesCompile:
    @pytest.mark.parametrize(
        "path",
        sorted(EXAMPLES.glob("*.py")),
        ids=lambda p: p.name,
    )
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)
