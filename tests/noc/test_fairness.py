"""Arbitration fairness: competing sources share contended resources."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.topology import MeshTopology, RingTopology, SpidergonTopology
from repro.traffic import HotspotTraffic, TrafficSpec


def delivered_by_source(topology, targets, rate=0.5, cycles=8_000):
    net = Network(
        topology,
        config=NocConfig(source_queue_packets=16),
        traffic=TrafficSpec(HotspotTraffic(topology, targets), rate),
        seed=6,
    )
    net.run(cycles=cycles, warmup=2_000)
    return net.stats.delivered_by_source


class TestHotspotFairness:
    @pytest.mark.parametrize(
        "topology",
        [RingTopology(8), SpidergonTopology(8), MeshTopology(2, 4)],
        ids=lambda t: t.name,
    )
    def test_all_sources_served_at_saturation(self, topology):
        # Past saturation the sink is the scarce resource; with
        # round-robin arbitration no source may starve.
        counts = delivered_by_source(topology, [0])
        sources = set(range(1, topology.num_nodes))
        assert set(counts) == sources
        assert min(counts.values()) > 0

    def test_symmetric_sources_get_symmetric_service(self):
        # Nodes 1 and 7 are mirror images around target 0 on a ring:
        # their delivered counts must match closely.
        counts = delivered_by_source(RingTopology(8), [0])
        assert counts[1] == pytest.approx(counts[7], rel=0.2)
        assert counts[2] == pytest.approx(counts[6], rel=0.2)

    def test_near_sources_not_infinitely_favored(self):
        # Distance-based throughput bias exists in wormhole networks
        # (the parking-lot effect: each merge point roughly halves
        # the share of upstream sources), but per-queue round-robin
        # keeps it geometric rather than starving: the farthest
        # sources still land within ~2^5 of the best at N=16.
        counts = delivered_by_source(SpidergonTopology(16), [0])
        best = max(counts.values())
        worst = min(counts.values())
        assert worst > best / 50

    def test_ring_parking_lot_halving(self):
        # On the symmetric ring the per-merge halving is exact:
        # distance-1 sources get ~2x distance-2, which get ~2x
        # distance-3/4.
        counts = delivered_by_source(RingTopology(8), [0])
        assert counts[1] == pytest.approx(2 * counts[2], rel=0.25)
        assert counts[2] == pytest.approx(2 * counts[4], rel=0.3)
