"""Unit tests for FIFOs, output queues and switching state."""

import pytest

from repro.noc.buffers import (
    BufferError,
    FlitFifo,
    OutputQueue,
    SwitchingState,
)
from repro.noc.packet import Flit, Packet


def flits(size=3, src=0, dst=1):
    pkt = Packet(src, dst, size, created_at=0)
    return pkt, [Flit(pkt, i) for i in range(size)]


class TestFlitFifo:
    def test_fifo_order(self):
        _, fs = flits(3)
        fifo = FlitFifo(3)
        for f in fs:
            fifo.push(f)
        assert [fifo.pop() for _ in range(3)] == fs

    def test_capacity_enforced(self):
        _, fs = flits(3)
        fifo = FlitFifo(2)
        fifo.push(fs[0])
        fifo.push(fs[1])
        assert fifo.is_full
        with pytest.raises(BufferError):
            fifo.push(fs[2])

    def test_pop_empty_raises(self):
        with pytest.raises(BufferError):
            FlitFifo(1).pop()

    def test_head_peeks_without_removing(self):
        _, fs = flits(2)
        fifo = FlitFifo(2)
        fifo.push(fs[0])
        assert fifo.head() is fs[0]
        assert len(fifo) == 1

    def test_head_of_empty_is_none(self):
        assert FlitFifo(1).head() is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FlitFifo(0)


class TestOutputQueue:
    def test_head_flit_takes_ownership(self):
        pkt, fs = flits(3)
        queue = OutputQueue("cw", 0, 3)
        assert queue.can_accept(fs[0], now=0)
        queue.enqueue(fs[0], now=0)
        assert queue.owner is pkt

    def test_tail_releases_ownership(self):
        pkt, fs = flits(2)
        queue = OutputQueue("cw", 0, 3)
        queue.enqueue(fs[0], now=0)
        queue.enqueue(fs[1], now=1)
        assert queue.owner is None

    def test_foreign_head_rejected_while_owned(self):
        _, fs = flits(3)
        other_pkt, other = flits(3, src=2, dst=3)
        queue = OutputQueue("cw", 0, 4)
        queue.enqueue(fs[0], now=0)
        assert not queue.can_accept(other[0], now=1)

    def test_foreign_body_rejected(self):
        _, fs = flits(3)
        _, other = flits(3, src=2, dst=3)
        queue = OutputQueue("cw", 0, 4)
        queue.enqueue(fs[0], now=0)
        assert not queue.can_accept(other[1], now=1)

    def test_new_head_allowed_after_tail(self):
        _, fs = flits(1)
        _, other = flits(2, src=2, dst=3)
        queue = OutputQueue("cw", 0, 4)
        queue.enqueue(fs[0], now=0)  # head == tail
        assert queue.can_accept(other[0], now=1)

    def test_one_enqueue_per_cycle(self):
        _, fs = flits(3)
        queue = OutputQueue("cw", 0, 4)
        queue.enqueue(fs[0], now=5)
        assert not queue.can_accept(fs[1], now=5)
        assert queue.can_accept(fs[1], now=6)

    def test_full_queue_rejects(self):
        _, fs = flits(3)
        queue = OutputQueue("cw", 0, 2)
        queue.enqueue(fs[0], now=0)
        queue.enqueue(fs[1], now=1)
        assert not queue.can_accept(fs[2], now=2)

    def test_enqueue_stamps_time(self):
        _, fs = flits(1)
        queue = OutputQueue("cw", 0, 2)
        queue.enqueue(fs[0], now=9)
        assert fs[0].enqueued_at == 9

    def test_illegal_enqueue_raises(self):
        _, fs = flits(3)
        _, other = flits(3, src=2, dst=3)
        queue = OutputQueue("cw", 0, 4)
        queue.enqueue(fs[0], now=0)
        with pytest.raises(BufferError):
            queue.enqueue(other[0], now=1)


class TestSwitchingState:
    def test_set_and_lookup(self):
        pkt, _ = flits()
        state = SwitchingState()
        state.set_route(0, pkt, "cw", 1)
        assert state.route_of(0, pkt) == ("cw", 1)

    def test_lookup_wrong_packet_raises(self):
        pkt, _ = flits()
        other, _ = flits(src=2, dst=3)
        state = SwitchingState()
        state.set_route(0, pkt, "cw", 1)
        with pytest.raises(BufferError):
            state.route_of(0, other)

    def test_lookup_missing_raises(self):
        pkt, _ = flits()
        with pytest.raises(BufferError):
            SwitchingState().route_of(0, pkt)

    def test_double_set_raises(self):
        pkt, _ = flits()
        other, _ = flits(src=2, dst=3)
        state = SwitchingState()
        state.set_route(0, pkt, "cw", 1)
        with pytest.raises(BufferError):
            state.set_route(0, other, "ccw", 0)

    def test_clear_allows_reuse(self):
        pkt, _ = flits()
        other, _ = flits(src=2, dst=3)
        state = SwitchingState()
        state.set_route(0, pkt, "cw", 1)
        state.clear(0)
        assert not state.has_route(0)
        state.set_route(0, other, "ccw", 0)
        assert state.route_of(0, other) == ("ccw", 0)

    def test_independent_wire_vcs(self):
        a, _ = flits()
        b, _ = flits(src=2, dst=3)
        state = SwitchingState()
        state.set_route(0, a, "cw", 0)
        state.set_route(1, b, "cw", 1)
        assert state.route_of(0, a) == ("cw", 0)
        assert state.route_of(1, b) == ("cw", 1)
