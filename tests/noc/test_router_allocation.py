"""White-box tests of router allocation policies."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.routing import RingShortestRouting
from repro.routing.base import RoutingAlgorithm
from repro.topology import RingTopology, SpidergonTopology
from repro.traffic import HotspotTraffic, TrafficSpec, UniformTraffic


class CountingRouting(RoutingAlgorithm):
    """Wraps a base algorithm and counts decide() invocations."""

    def __init__(self, base):
        super().__init__(base.topology, f"counting[{base.name}]")
        self.base = base
        self.required_vcs = base.required_vcs
        self.decisions = 0

    def decide(self, node, packet):
        self.decisions += 1
        return self.base.decide(node, packet)


class TestDecideOnce:
    def test_decide_called_once_per_packet_per_router(self):
        # Even under heavy contention (hot-spot at saturating load,
        # where head flits wait many cycles for queue ownership) the
        # router must consult the routing function exactly once per
        # packet per traversed router: parked decisions are reused.
        topology = RingTopology(8)
        routing = CountingRouting(RingShortestRouting(topology))
        net = Network(
            topology,
            routing=routing,
            config=NocConfig(source_queue_packets=8),
            traffic=TrafficSpec(HotspotTraffic(topology, [0]), 0.6),
            seed=3,
        )
        net.run(cycles=4_000)
        # Expected decisions: per delivered/in-flight packet, one per
        # router visited = hops + 1 (the ejecting router's LOCAL
        # decision happens at the destination router).  Count exactly
        # for delivered packets and bound the rest.
        delivered_decisions = sum(
            hops + 1 for hops in net.stats.hop_counts
        )
        # All packets measured (warmup=0): delivered ones account for
        # hops+1 decisions each; packets still in flight add at most
        # (diameter + 1) each.
        in_flight_packets = (
            net.stats.packets_generated
            - net.stats.packets_consumed
            - net.stats.packets_rejected
        )
        upper = delivered_decisions + in_flight_packets * (4 + 1)
        assert delivered_decisions <= routing.decisions <= upper


class TestPerQueueGrantRotation:
    def test_two_sources_alternate_ownership(self):
        # Nodes 1 and 7 both eject at node 0 on separate VC0 paths
        # converging on the local queue; with per-queue grants their
        # delivered counts match exactly over a long run.
        topology = RingTopology(8)
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=8),
            traffic=TrafficSpec(HotspotTraffic(topology, [0]), 0.9),
            seed=3,
        )
        net.run(cycles=10_000, warmup=2_000)
        counts = net.stats.delivered_by_source
        assert counts[1] == pytest.approx(counts[7], rel=0.05)

    def test_queue_grant_pointer_moves(self):
        topology = SpidergonTopology(8)
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=8),
            traffic=TrafficSpec(UniformTraffic(topology), 0.6),
            seed=3,
        )
        net.run(cycles=2_000)
        # After sustained contention, grant pointers on loaded queues
        # have rotated away from their initial value somewhere.
        pointers = {
            queue.rr_grant
            for router in net.routers
            for port in router._output_order
            for queue in port.queues
        }
        assert pointers != {0}
