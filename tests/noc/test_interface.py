"""Network-interface behaviour: generation, IP memory, injection rate."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.topology import RingTopology, SpidergonTopology
from repro.traffic import HotspotTraffic, TrafficSpec, UniformTraffic
from repro.traffic.injection import PeriodicInjection


def build(topology, pattern, rate, *, cycles, process=None, seed=3,
          **config_kwargs):
    config = NocConfig(**config_kwargs)
    kwargs = {} if process is None else {"process": process}
    net = Network(
        topology,
        config=config,
        traffic=TrafficSpec(pattern, rate, **kwargs),
        seed=seed,
    )
    result = net.run(cycles=cycles)
    return net, result


class TestGeneration:
    def test_poisson_rate_approximately_met(self):
        # lambda = 0.12 flits/cycle, 6-flit packets, 10k cycles,
        # 8 sources -> expect ~1600 packets +- sampling noise.
        topo = RingTopology(8)
        net, _ = build(topo, UniformTraffic(topo), 0.12, cycles=10_000)
        expected = 8 * 0.12 / 6 * 10_000
        assert expected * 0.85 < net.stats.packets_generated < expected * 1.15

    def test_zero_rate_generates_nothing(self):
        topo = RingTopology(8)
        net, result = build(topo, UniformTraffic(topo), 0.0, cycles=2_000)
        assert net.stats.packets_generated == 0
        assert result.throughput == 0.0

    def test_periodic_process_is_exact(self):
        # Periodic interarrival size/rate = 60 cycles: each source
        # generates floor(cycles/60) packets (first at t=60).
        topo = RingTopology(4)
        net, _ = build(
            topo,
            UniformTraffic(topo),
            0.1,
            cycles=6_000,
            process=PeriodicInjection(),
        )
        assert net.stats.packets_generated == 4 * 100

    def test_hotspot_targets_generate_nothing(self):
        topo = SpidergonTopology(8)
        pattern = HotspotTraffic(topo, [0])
        net, _ = build(topo, pattern, 0.2, cycles=3_000)
        # Node 0 never sources traffic: its NI has no backlog and all
        # consumed flits land at node 0.
        assert net.interfaces[0].backlog_packets == 0
        assert net.stats.packets_consumed > 0

    def test_seed_reproducibility(self):
        topo = SpidergonTopology(8)

        def run(seed):
            net, result = build(
                topo_a := SpidergonTopology(8),
                UniformTraffic(topo_a),
                0.15,
                cycles=4_000,
                seed=seed,
            )
            return (
                result.throughput,
                result.avg_latency,
                net.stats.packets_generated,
            )

        assert run(11) == run(11)
        assert run(11) != run(12)


class TestIpMemory:
    def test_bounded_queue_rejects_overflow(self):
        # Saturating hot-spot: 7 sources at high rate into one sink;
        # a tiny IP memory must overflow.
        topo = RingTopology(8)
        net, _ = build(
            topo,
            HotspotTraffic(topo, [0]),
            0.9,
            cycles=6_000,
            source_queue_packets=4,
        )
        assert net.stats.packets_rejected > 0
        # Delivered + queued + rejected + in-flight == generated.
        assert (
            net.stats.packets_rejected < net.stats.packets_generated
        )

    def test_unbounded_queue_never_rejects(self):
        topo = RingTopology(8)
        net, _ = build(
            topo, HotspotTraffic(topo, [0]), 0.9, cycles=3_000
        )
        assert net.stats.packets_rejected == 0


class TestInjectionRate:
    def test_at_most_one_flit_per_cycle_per_source(self):
        topo = RingTopology(8)
        net, _ = build(
            topo, UniformTraffic(topo), 2.0, cycles=2_000,
            source_queue_packets=64,
        )
        # 8 sources, 2000 cycles: injection can never exceed 1
        # flit/cycle/node even at offered rate 2.0.
        assert net.stats.flits_injected <= 8 * 2_000

    def test_misrouted_flit_detected(self):
        # A routing function that ejects everywhere must trip the
        # NI's destination check.
        from repro.routing.base import (
            LOCAL_PORT,
            RouteDecision,
            RoutingAlgorithm,
        )

        class EjectEverywhere(RoutingAlgorithm):
            required_vcs = 1

            def decide(self, node, packet):
                return RouteDecision(LOCAL_PORT, 0)

        topo = RingTopology(4)
        net = Network(
            topo,
            routing=EjectEverywhere(topo, "broken"),
            traffic=TrafficSpec(UniformTraffic(topo), 0.3),
            seed=1,
        )
        with pytest.raises(RuntimeError, match="misrouted"):
            net.run(cycles=2_000)
