"""Unit tests for the two-phase cycle scheduler."""

from repro.noc.scheduler import CycleScheduler
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule


class StubAgent:
    """Records phase invocations; stays active for a given number of
    send phases."""

    def __init__(self, name, active_cycles=1):
        self.name = name
        self.log = []
        self.remaining = active_cycles

    def advance_phase(self):
        self.log.append("advance")

    def send_phase(self):
        self.log.append("send")
        self.remaining -= 1

    def has_pending_work(self):
        return self.remaining > 0


class TestPhases:
    def test_advance_runs_before_send(self):
        sim = Simulator()
        scheduler = CycleScheduler(sim)
        agent = StubAgent("a")
        scheduler.activate(agent)
        sim.run(until=0)
        assert agent.log == ["advance", "send"]

    def test_idle_agent_dropped_after_send(self):
        sim = Simulator()
        scheduler = CycleScheduler(sim)
        agent = StubAgent("a", active_cycles=1)
        scheduler.activate(agent)
        sim.run(until=5)
        assert scheduler.active_agents == 0
        assert agent.log == ["advance", "send"]

    def test_busy_agent_ticked_every_cycle(self):
        sim = Simulator()
        scheduler = CycleScheduler(sim)
        agent = StubAgent("a", active_cycles=3)
        scheduler.activate(agent)
        sim.run(until=10)
        assert agent.log == ["advance", "send"] * 3

    def test_no_ticks_without_agents(self):
        sim = Simulator()
        CycleScheduler(sim)
        processed = sim.run(until=100)
        assert processed == 0

    def test_multiple_agents_share_phases(self):
        sim = Simulator()
        scheduler = CycleScheduler(sim)
        agents = [StubAgent(f"a{i}", active_cycles=2) for i in range(3)]
        for agent in agents:
            scheduler.activate(agent)
        sim.run(until=5)
        for agent in agents:
            assert agent.log == ["advance", "send"] * 2

    def test_activation_is_idempotent(self):
        sim = Simulator()
        scheduler = CycleScheduler(sim)
        agent = StubAgent("a")
        scheduler.activate(agent)
        scheduler.activate(agent)
        sim.run(until=3)
        assert agent.log == ["advance", "send"]


class TestActivationTiming:
    def test_delivery_activation_joins_same_cycle(self):
        # A message delivered at cycle t (priority 0) activates its
        # agent before the phases of t run.
        sim = Simulator()
        scheduler = CycleScheduler(sim)
        agent = StubAgent("a")

        class Activator(SimModule):
            def handle_message(self, message):
                scheduler.activate(agent)
                agent.log.append(f"delivery@{self.now}")

        activator = Activator(sim, "activator")
        sim.schedule(7, activator, Message("wake"))
        sim.run(until=7)
        assert agent.log == ["delivery@7", "advance", "send"]

    def test_reactivation_next_cycle(self):
        sim = Simulator()
        scheduler = CycleScheduler(sim)
        first = StubAgent("first", active_cycles=1)
        late = StubAgent("late", active_cycles=1)

        class Activator(SimModule):
            def handle_message(self, message):
                scheduler.activate(late)

        activator = Activator(sim, "activator")
        scheduler.activate(first)  # phases at cycle 0
        sim.schedule(3, activator, Message("wake"))
        sim.run(until=5)
        assert first.log == ["advance", "send"]
        assert late.log == ["advance", "send"]
