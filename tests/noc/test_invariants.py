"""Tests for the runtime invariant checker."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.invariants import InvariantChecker, InvariantViolation
from repro.noc.network import Network
from repro.topology import MeshTopology, RingTopology, SpidergonTopology
from repro.traffic import HotspotTraffic, TrafficSpec, UniformTraffic


def run_network(topology, pattern_cls, rate, cycles=2_500, **pattern_kw):
    pattern = pattern_cls(topology, **pattern_kw)
    net = Network(
        topology,
        config=NocConfig(source_queue_packets=16),
        traffic=TrafficSpec(pattern, rate),
        seed=11,
    )
    net.run(cycles=cycles)
    return net


class TestCleanRunsPass:
    @pytest.mark.parametrize(
        "topology_factory,rate",
        [
            (lambda: RingTopology(8), 0.6),
            (lambda: SpidergonTopology(12), 0.4),
            (lambda: MeshTopology(2, 4), 0.5),
        ],
    )
    def test_uniform(self, topology_factory, rate):
        net = run_network(topology_factory(), UniformTraffic, rate)
        InvariantChecker(net).check_all()

    def test_hotspot(self):
        net = run_network(
            SpidergonTopology(16),
            HotspotTraffic,
            0.5,
            targets=[0],
        )
        InvariantChecker(net).check_all()

    def test_mid_run_checks(self):
        # Invariants hold at arbitrary intermediate points too.
        topology = RingTopology(8)
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(topology), 0.5),
            seed=2,
        )
        checker = InvariantChecker(net)
        for until in (100, 500, 1_000, 2_000):
            net.simulator.run(until=until)
            checker.check_all()


class TestViolationsDetected:
    def test_conservation_detects_tampering(self):
        net = run_network(RingTopology(8), UniformTraffic, 0.3)
        net.stats.flits_injected += 1
        with pytest.raises(InvariantViolation, match="conservation"):
            InvariantChecker(net).check_conservation()

    def test_credit_detects_tampering(self):
        net = run_network(RingTopology(8), UniformTraffic, 0.3)
        # Steal a credit from the first router's first link port.
        router = net.routers[0]
        port = router._output_order[0]
        port.credits[0] += 1
        with pytest.raises(InvariantViolation, match="credits"):
            InvariantChecker(net).check_credit_consistency()

    def test_wormhole_detects_interleaving(self):
        from repro.noc.packet import Flit, Packet

        net = Network(RingTopology(8))
        router = net.routers[0]
        queue = router._output_order[0].queues[0]
        a = Packet(0, 2, 2, created_at=0)
        b = Packet(0, 3, 2, created_at=0)
        # Force an illegal interleave directly into the deque.
        queue._flits.extend(
            [Flit(a, 0), Flit(b, 0), Flit(a, 1)]
        )
        with pytest.raises(InvariantViolation, match="interleaved"):
            InvariantChecker(net).check_wormhole_integrity()

    def test_out_of_order_flits_detected(self):
        from repro.noc.packet import Flit, Packet

        net = Network(RingTopology(8))
        router = net.routers[0]
        queue = router._output_order[0].queues[0]
        pkt = Packet(0, 2, 3, created_at=0)
        queue._flits.extend([Flit(pkt, 0), Flit(pkt, 2)])
        with pytest.raises(InvariantViolation, match="out of order"):
            InvariantChecker(net).check_wormhole_integrity()
