"""Per-link latency end-to-end: the heterogeneous link model.

Pins the tentpole API contract:

* zero-load latency generalises from ``2h + S + 2`` to
  ``sum(d_i + 1) + 2*d_local + (S - 1)*max(d) + 1`` where ``d_i`` is
  each link's delay and ``max(d)`` spans the path including the local
  links: links are **not pipelined**, so the slowest link serialises
  the whole packet at one flit per ``d`` cycles (weighted-distance
  oracle).  With all-unit delays this collapses to ``2h + S + 2``.
* TSV penalty 1 reproduces the uniform-link model **byte-for-byte**,
* penalty > 1 measurably shifts average latency,
* the deprecation shims fold ``SimulationSettings.link_delay`` into
  the config and warn on mixed global/per-link intent.
"""

import warnings

import pytest

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.specs import parse_pattern
from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.topology import (
    LinkAttrs,
    Mesh3DTopology,
    RingTopology,
    Torus3DTopology,
)
from repro.topology.base import DEFAULT_LINK_ATTRS


def deliver_one(topology, src, dst, size=6, **config_kwargs):
    """Inject a single packet and return (latency, hops)."""
    config = NocConfig(packet_size_flits=size, **config_kwargs)
    net = Network(topology, config=config, seed=0)
    net.interfaces[src].enqueue_packet(
        Packet(src, dst, size, created_at=0)
    )
    net.simulator.run(until=1_000)
    assert net.stats.packets_consumed == 1
    return net.stats.latencies[0], net.stats.hop_counts[0]


class _UniformMesh3D(Mesh3DTopology):
    """Mesh3D with the link-attrs hook forced back to uniform —
    the latency-1 reference the penalty-1 grid must reproduce."""

    def link_attrs(self, src, port):
        return DEFAULT_LINK_ATTRS


def zero_load_latency(link_delays, size=6, local_delay=1):
    """Expected single-packet latency over *link_delays* (per hop).

    Head flit: ``d + 1`` per router link plus ``2 * local_delay`` for
    injection/ejection, plus one consume cycle.  Body flits: links are
    not pipelined, so the slowest channel on the path (including the
    two local links) clocks the remaining ``size - 1`` flits.
    """
    head = sum(d + 1 for d in link_delays) + 2 * local_delay
    bottleneck = max([local_delay, *link_delays])
    return head + (size - 1) * bottleneck + 1


class TestWeightedDistanceOracle:
    """Flit arrival time == per-link head latency along the route plus
    serialisation at the slowest channel — see :func:`zero_load_latency`."""

    @pytest.mark.parametrize("tsv_latency", [1, 2, 3, 5])
    def test_mesh3d_single_packet_latency(self, tsv_latency):
        topo = Mesh3DTopology(4, 4, 4, tsv_latency=tsv_latency)
        src = topo.node_at(0, 0, 0)
        dst = topo.node_at(1, 2, 3)
        latency, hops = deliver_one(topo, src, dst)
        assert hops == 6
        delays = [1] * 3 + [tsv_latency] * 3  # 3 planar + 3 vertical
        assert latency == zero_load_latency(delays)

    def test_uniform_collapses_to_paper_formula(self):
        # All-unit delays: 2h + S + 2 from the paper's timing model.
        assert zero_load_latency([1, 1, 1], size=6) == 2 * 3 + 6 + 2

    def test_purely_vertical_route(self):
        topo = Mesh3DTopology(2, 2, 4, tsv_latency=3)
        src = topo.node_at(0, 0, 0)
        dst = topo.node_at(0, 0, 3)
        latency, hops = deliver_one(topo, src, dst)
        assert hops == 3
        assert latency == zero_load_latency([3, 3, 3])

    def test_purely_planar_route_unaffected(self):
        fast = Mesh3DTopology(4, 4, 2)
        slow = Mesh3DTopology(4, 4, 2, tsv_latency=7)
        src, dst = 0, 3  # same layer: x hops only
        assert deliver_one(fast, src, dst) == deliver_one(slow, src, dst)

    @pytest.mark.parametrize("tsv_latency", [1, 4])
    def test_torus3d_wrap_route(self, tsv_latency):
        topo = Torus3DTopology(3, 3, 3, tsv_latency=tsv_latency)
        # (0,0,2) -> (0,0,0): one vertical wrap hop via "up".
        src = topo.node_at(0, 0, 2)
        dst = topo.node_at(0, 0, 0)
        latency, hops = deliver_one(topo, src, dst)
        assert hops == 1
        assert latency == zero_load_latency([tsv_latency])

    def test_global_multiplier_scales_per_link_latency(self):
        # config.link_delay multiplies the topology-assigned latency
        # (local NI links included).
        topo = Mesh3DTopology(2, 2, 2, tsv_latency=2)
        src = topo.node_at(0, 0, 0)
        dst = topo.node_at(0, 0, 1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            latency, hops = deliver_one(topo, src, dst, link_delay=3)
        assert hops == 1
        assert latency == zero_load_latency([2 * 3], local_delay=3)


class TestUniformBaselineReproduction:
    """TSV penalty 1 == the uniform-link model, byte for byte."""

    def test_penalty_one_matches_uniform_run(self):
        settings = SimulationSettings(cycles=2_000, warmup=400, seed=7)
        results = []
        for topo in (
            Mesh3DTopology(4, 4, 4, tsv_latency=1),
            _UniformMesh3D(4, 4, 4),
        ):
            pattern = parse_pattern("uniform", topo)
            results.append(
                run_simulation(topo, pattern, 0.1, settings).to_dict()
            )
        assert results[0] == results[1]

    def test_penalty_shifts_average_latency(self):
        settings = SimulationSettings(cycles=2_000, warmup=400, seed=7)
        latencies = {}
        for penalty in (1, 2, 4):
            topo = Mesh3DTopology(4, 4, 4, tsv_latency=penalty)
            pattern = parse_pattern("uniform", topo)
            result = run_simulation(topo, pattern, 0.05, settings)
            latencies[penalty] = result.avg_latency
        assert latencies[1] < latencies[2] < latencies[4]


class TestLinkAttrsApi:
    def test_default_attrs_and_validation(self):
        from repro.topology import TopologyError

        assert DEFAULT_LINK_ATTRS == LinkAttrs(1, 1.0, "planar")
        with pytest.raises(TopologyError):
            LinkAttrs(latency=0)
        with pytest.raises(TopologyError):
            LinkAttrs(width=-1.0)

    def test_topology_link_lookup(self):
        from repro.topology import TopologyError

        topo = Mesh3DTopology(3, 3, 3, tsv_latency=2)
        link = topo.link(0, "up")
        assert (link.src, link.dst) == (0, 9)
        assert (link.kind, link.latency) == ("tsv", 2)
        with pytest.raises(TopologyError):
            topo.link(0, "west")  # no such port at the x=0 face

    def test_network_link_attrs_of(self):
        net = Network(Mesh3DTopology(3, 3, 3, tsv_latency=2))
        assert net.link_attrs_of(0, "up").kind == "tsv"
        assert net.link_attrs_of(0, "east").kind == "planar"
        assert net.link_attrs_of(0, "local").kind == "local"

    def test_uniform_topologies_report_uniform(self):
        assert RingTopology(8).is_uniform
        assert not Torus3DTopology(3, 3, 3, tsv_latency=2).is_uniform


class TestDeprecationShims:
    def test_settings_link_delay_folds_and_warns(self):
        with pytest.warns(DeprecationWarning, match="link_delay"):
            settings = SimulationSettings(link_delay=3)
        assert settings.config.link_delay == 3
        assert settings.link_delay is None

    def test_scaled_copy_does_not_rewarn(self):
        with pytest.warns(DeprecationWarning):
            settings = SimulationSettings(link_delay=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            scaled = settings.scaled(0.5)
        assert scaled.config.link_delay == 2

    def test_global_knob_on_heterogeneous_topology_warns(self):
        topo = Mesh3DTopology(3, 3, 2, tsv_latency=2)
        with pytest.warns(DeprecationWarning, match="link_attrs"):
            Network(topo, config=NocConfig(link_delay=2))

    def test_global_knob_on_uniform_topology_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Network(RingTopology(6), config=NocConfig(link_delay=2))
