"""Flit-conservation and progress properties of the full model.

Every injected flit must either be consumed at its destination or
still be in the network (router buffers, link flight) when the run
stops — flits are never duplicated or dropped.
"""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.signals import FlitMessage
from repro.topology import MeshTopology, RingTopology, SpidergonTopology
from repro.traffic import HotspotTraffic, TrafficSpec, UniformTraffic


def flits_in_flight(network):
    """Flits sitting in pending link events."""
    return sum(
        1
        for event in network.simulator.pending_events()
        if isinstance(event.message, FlitMessage)
    )


def flits_in_routers(network):
    return sum(r.total_buffered_flits() for r in network.routers)


@pytest.mark.parametrize(
    "topology_factory,rate",
    [
        (lambda: RingTopology(8), 0.15),
        (lambda: RingTopology(8), 0.6),
        (lambda: SpidergonTopology(12), 0.3),
        (lambda: MeshTopology(2, 4), 0.4),
        (lambda: MeshTopology(4, 6), 0.25),
    ],
)
class TestConservation:
    def test_no_flit_lost_or_duplicated(self, topology_factory, rate):
        topology = topology_factory()
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=32),
            traffic=TrafficSpec(UniformTraffic(topology), rate),
            seed=9,
        )
        net.run(cycles=4_000)
        consumed = (
            net.stats.flits_consumed + net.stats.warmup_flits_consumed
        )
        in_network = flits_in_routers(net) + flits_in_flight(net)
        assert net.stats.flits_injected == consumed + in_network


class TestProgress:
    @pytest.mark.parametrize(
        "topology_factory",
        [
            lambda: RingTopology(16),
            lambda: SpidergonTopology(16),
            lambda: MeshTopology(4, 4),
        ],
    )
    def test_saturated_uniform_load_keeps_flowing(self, topology_factory):
        # Deadlock regression test: at saturating uniform load the
        # network must keep delivering in the measured window.
        topology = topology_factory()
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(topology), 0.8),
            seed=13,
        )
        result = net.run(cycles=6_000, warmup=3_000)
        assert result.throughput > 0.5

    def test_saturated_hotspot_keeps_flowing(self):
        topology = SpidergonTopology(16)
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(HotspotTraffic(topology, [3]), 0.8),
            seed=13,
        )
        result = net.run(cycles=6_000, warmup=3_000)
        # The single sink absorbs ~1 flit/cycle at saturation.
        assert result.throughput == pytest.approx(1.0, abs=0.1)

    def test_network_drains_when_sources_stop(self):
        # Inject a burst, then let the network run dry: everything
        # must be delivered.
        topology = RingTopology(8)
        net = Network(topology, seed=2)
        from repro.noc.packet import Packet

        for src in range(8):
            for dst in range(8):
                if src != dst:
                    net.interfaces[src].enqueue_packet(
                        Packet(src, dst, 6, created_at=0)
                    )
        net.simulator.run(until=5_000)
        assert net.stats.packets_consumed == 8 * 7
        assert flits_in_routers(net) == 0
        assert net.simulator.pending_event_count == 0
