"""Unit tests for NocConfig validation and defaults."""

import pytest

from repro.noc.config import NocConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = NocConfig()
        assert config.packet_size_flits == 6
        assert config.input_buffer_flits == 1
        assert config.output_buffer_flits == 3
        assert config.link_delay == 1
        assert config.num_vcs is None
        assert config.source_queue_packets is None
        assert config.router_pipeline is True

    def test_frozen(self):
        config = NocConfig()
        with pytest.raises(AttributeError):
            config.packet_size_flits = 10


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"packet_size_flits": 0},
            {"input_buffer_flits": 0},
            {"output_buffer_flits": 0},
            {"link_delay": 0},
            {"num_vcs": 0},
            {"source_queue_packets": 0},
        ],
    )
    def test_rejects_nonpositive(self, kwargs):
        with pytest.raises(ValueError):
            NocConfig(**kwargs)

    def test_accepts_custom_values(self):
        config = NocConfig(
            packet_size_flits=4,
            input_buffer_flits=2,
            output_buffer_flits=8,
            link_delay=2,
            num_vcs=3,
            source_queue_packets=16,
            router_pipeline=False,
        )
        assert config.num_vcs == 3
        assert config.router_pipeline is False
