"""Unit tests for packets and flits."""

import pytest

from repro.noc.packet import Flit, Packet


class TestPacket:
    def test_fields(self):
        pkt = Packet(1, 5, 6, created_at=100)
        assert pkt.src == 1
        assert pkt.dst == 5
        assert pkt.size_flits == 6
        assert pkt.created_at == 100
        assert pkt.vc == 0
        assert pkt.hops == 0
        assert pkt.injected_at is None

    def test_unique_ids(self):
        a = Packet(0, 1, 6, created_at=0)
        b = Packet(0, 1, 6, created_at=0)
        assert a.packet_id != b.packet_id

    def test_rejects_self_destination(self):
        with pytest.raises(ValueError):
            Packet(3, 3, 6, created_at=0)

    def test_rejects_empty_packet(self):
        with pytest.raises(ValueError):
            Packet(0, 1, 0, created_at=0)

    def test_route_state_is_private_per_packet(self):
        a = Packet(0, 1, 6, created_at=0)
        b = Packet(0, 1, 6, created_at=0)
        a.route_state["k"] = "v"
        assert "k" not in b.route_state


class TestFlit:
    def test_head_and_tail_flags(self):
        pkt = Packet(0, 1, 3, created_at=0)
        head, body, tail = (Flit(pkt, i) for i in range(3))
        assert head.is_head and not head.is_tail
        assert not body.is_head and not body.is_tail
        assert tail.is_tail and not tail.is_head

    def test_single_flit_packet_is_head_and_tail(self):
        pkt = Packet(0, 1, 1, created_at=0)
        only = Flit(pkt, 0)
        assert only.is_head and only.is_tail

    def test_index_bounds(self):
        pkt = Packet(0, 1, 2, created_at=0)
        with pytest.raises(ValueError):
            Flit(pkt, 2)
        with pytest.raises(ValueError):
            Flit(pkt, -1)

    def test_wire_vc_defaults_to_zero(self):
        pkt = Packet(0, 1, 2, created_at=0)
        assert Flit(pkt, 0).wire_vc == 0
