"""Network assembly and end-to-end single-packet behaviour."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.routing import TableRouting
from repro.topology import MeshTopology, RingTopology, SpidergonTopology
from repro.traffic import TrafficSpec, UniformTraffic


class TestConstruction:
    def test_one_router_and_ni_per_node(self):
        net = Network(SpidergonTopology(8))
        assert len(net.routers) == 8
        assert len(net.interfaces) == 8

    def test_vcs_follow_routing_requirement(self):
        assert Network(RingTopology(8)).num_vcs == 2
        assert Network(SpidergonTopology(8)).num_vcs == 2
        assert Network(MeshTopology(2, 4)).num_vcs == 1

    def test_vcs_config_override(self):
        net = Network(RingTopology(8), config=NocConfig(num_vcs=1))
        assert net.num_vcs == 1

    def test_foreign_routing_rejected(self):
        topo_a = SpidergonTopology(8)
        topo_b = SpidergonTopology(8)
        with pytest.raises(ValueError):
            Network(topo_a, routing=TableRouting(topo_b))

    def test_foreign_traffic_pattern_rejected(self):
        topo_a = RingTopology(8)
        topo_b = RingTopology(8)
        with pytest.raises(ValueError):
            Network(topo_a, traffic=TrafficSpec(UniformTraffic(topo_b), 0.1))

    def test_run_is_single_use(self):
        net = Network(RingTopology(4))
        net.run(cycles=10)
        with pytest.raises(ValueError):
            net.run(cycles=10)

    def test_run_argument_validation(self):
        with pytest.raises(ValueError):
            Network(RingTopology(4)).run(cycles=0)
        with pytest.raises(ValueError):
            Network(RingTopology(4)).run(cycles=10, warmup=10)


def deliver_one(topology, src, dst, size=6, **config_kwargs):
    """Inject a single packet and return (latency, hops)."""
    config = NocConfig(packet_size_flits=size, **config_kwargs)
    net = Network(topology, config=config, seed=0)
    net.interfaces[src].enqueue_packet(
        Packet(src, dst, size, created_at=0)
    )
    net.simulator.run(until=500)
    assert net.stats.packets_consumed == 1
    return net.stats.latencies[0], net.stats.hop_counts[0]


class TestSinglePacketTiming:
    """Freeze the zero-load timing model: latency = 2*hops + size + 2
    (one cycle per link + one per router stage, plus injection,
    ejection and flit serialisation)."""

    @pytest.mark.parametrize(
        "topology,src,dst",
        [
            (RingTopology(8), 0, 3),
            (RingTopology(8), 0, 4),
            (SpidergonTopology(8), 0, 4),
            (SpidergonTopology(16), 2, 10),
            (MeshTopology(2, 4), 0, 7),
            (MeshTopology(4, 6), 0, 23),
        ],
        ids=str,
    )
    def test_zero_load_latency_formula(self, topology, src, dst):
        latency, hops = deliver_one(topology, src, dst)
        expected_hops = topology.to_graph().bfs_distances(src)[dst]
        assert hops == expected_hops
        assert latency == 2 * hops + 6 + 2

    @pytest.mark.parametrize("size", [1, 2, 6, 12])
    def test_latency_scales_with_packet_size(self, size):
        latency, hops = deliver_one(SpidergonTopology(8), 0, 4, size=size)
        assert latency == 2 * hops + size + 2

    def test_longer_link_delay_increases_latency(self):
        fast, _ = deliver_one(RingTopology(8), 0, 2)
        slow, _ = deliver_one(RingTopology(8), 0, 2, link_delay=3)
        assert slow > fast

    def test_pipeline_off_reduces_latency(self):
        on, _ = deliver_one(RingTopology(8), 0, 2)
        off, _ = deliver_one(
            RingTopology(8), 0, 2, router_pipeline=False
        )
        assert off < on


class TestMultiplePackets:
    def test_two_packets_same_source_fifo(self):
        # Application packets are consumed from IP memory in FIFO
        # order (paper): the first enqueued must arrive first.
        topo = RingTopology(8)
        net = Network(topo, seed=0)
        first = Packet(0, 2, 6, created_at=0)
        second = Packet(0, 2, 6, created_at=0)
        net.interfaces[0].enqueue_packet(first)
        net.interfaces[0].enqueue_packet(second)
        net.simulator.run(until=500)
        assert net.stats.packets_consumed == 2
        assert net.stats.latencies[0] < net.stats.latencies[1]

    def test_enqueue_wrong_source_rejected(self):
        net = Network(RingTopology(8))
        with pytest.raises(ValueError):
            net.interfaces[1].enqueue_packet(Packet(0, 2, 6, created_at=0))

    def test_enqueue_respects_ip_memory_bound(self):
        net = Network(
            RingTopology(8), config=NocConfig(source_queue_packets=1)
        )
        net.interfaces[0].enqueue_packet(Packet(0, 2, 6, created_at=0))
        with pytest.raises(ValueError, match="full"):
            net.interfaces[0].enqueue_packet(
                Packet(0, 3, 6, created_at=0)
            )

    def test_all_pairs_deliverable(self):
        # Every (src, dst) pair is individually deliverable on each
        # paper topology.
        for topology in (
            RingTopology(6),
            SpidergonTopology(6),
            MeshTopology(2, 3),
        ):
            n = topology.num_nodes
            for src in range(n):
                for dst in range(n):
                    if src == dst:
                        continue
                    latency, hops = deliver_one(topology, src, dst)
                    assert hops == (
                        topology.to_graph().bfs_distances(src)[dst]
                    )
