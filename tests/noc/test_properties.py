"""Property-based tests of the full NoC model (hypothesis).

For random topologies, loads and seeds the model must uphold:

* flit conservation (nothing lost, nothing duplicated),
* hop correctness (every delivered packet took a minimal route),
* determinism (same seed, same results).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.signals import FlitMessage
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    TorusTopology,
    all_pairs_distances,
)
from repro.traffic import HotspotTraffic, TrafficSpec, UniformTraffic


def build_topology(kind: int, size: int):
    if kind == 0:
        return RingTopology(3 + size)
    if kind == 1:
        return SpidergonTopology(4 + 2 * (size % 7))
    if kind == 2:
        return MeshTopology(2 + size % 3, 2 + size % 4)
    return TorusTopology(3 + size % 2, 3 + size % 3)


topology_strategy = st.builds(
    build_topology,
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=12),
)

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestConservationProperty:
    @given(
        topology_strategy,
        st.floats(min_value=0.02, max_value=0.9),
        st.integers(min_value=0, max_value=2**16),
    )
    @SLOW
    def test_flits_conserved(self, topology, rate, seed):
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=8),
            traffic=TrafficSpec(UniformTraffic(topology), rate),
            seed=seed,
        )
        net.run(cycles=1_200)
        consumed = (
            net.stats.flits_consumed + net.stats.warmup_flits_consumed
        )
        in_routers = sum(
            r.total_buffered_flits() for r in net.routers
        )
        in_flight = sum(
            1
            for event in net.simulator.pending_events()
            if isinstance(event.message, FlitMessage)
        )
        assert net.stats.flits_injected == (
            consumed + in_routers + in_flight
        )

    @given(
        topology_strategy,
        st.integers(min_value=0, max_value=2**16),
    )
    @SLOW
    def test_hotspot_conservation(self, topology, seed):
        target = topology.num_nodes - 1
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=8),
            traffic=TrafficSpec(
                HotspotTraffic(topology, [target]), 0.5
            ),
            seed=seed,
        )
        net.run(cycles=1_200)
        consumed = (
            net.stats.flits_consumed + net.stats.warmup_flits_consumed
        )
        assert consumed <= net.stats.flits_injected


class TestHopCorrectnessProperty:
    @given(
        topology_strategy,
        st.integers(min_value=0, max_value=2**16),
    )
    @SLOW
    def test_delivered_packets_took_minimal_routes(self, topology, seed):
        # All implemented default routings are minimal, so measured
        # hop counts must match BFS distances in distribution: mean
        # hops within [min distance, diameter].
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=8),
            traffic=TrafficSpec(UniformTraffic(topology), 0.1),
            seed=seed,
        )
        result = net.run(cycles=1_500)
        if not net.stats.hop_counts:
            return
        dist = all_pairs_distances(topology)
        worst = max(max(row) for row in dist)
        assert 1 <= min(net.stats.hop_counts)
        assert max(net.stats.hop_counts) <= worst


class TestDeterminismProperty:
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.floats(min_value=0.05, max_value=0.6),
    )
    @settings(max_examples=8, deadline=None)
    def test_same_seed_same_run(self, seed, rate):
        def run():
            topology = SpidergonTopology(8)
            net = Network(
                topology,
                config=NocConfig(source_queue_packets=8),
                traffic=TrafficSpec(UniformTraffic(topology), rate),
                seed=seed,
            )
            result = net.run(cycles=1_000)
            return (
                result.throughput,
                result.avg_latency,
                net.stats.packets_generated,
                tuple(net.stats.latencies[:20]),
            )

        assert run() == run()
