"""Unit tests for the torus topology (extension)."""

import pytest

from repro.topology import (
    TopologyError,
    TorusTopology,
    average_distance,
    diameter,
)


class TestStructure:
    def test_requires_min_dims(self):
        with pytest.raises(TopologyError):
            TorusTopology(2, 4)
        with pytest.raises(TopologyError):
            TorusTopology(4, 2)

    def test_constant_degree_four(self):
        torus = TorusTopology(3, 5)
        assert all(torus.degree(n) == 4 for n in range(15))

    def test_link_count_is_4n(self):
        torus = TorusTopology(4, 4)
        assert torus.num_links == 4 * 16

    def test_wraparound_ports(self):
        torus = TorusTopology(3, 4)
        corner = torus.node_at(0, 0)
        ports = torus.out_ports(corner)
        assert ports["north"] == torus.node_at(2, 0)
        assert ports["west"] == torus.node_at(0, 3)
        assert ports["south"] == torus.node_at(1, 0)
        assert ports["east"] == torus.node_at(0, 1)

    def test_validates(self):
        TorusTopology(4, 5).validate()

    def test_vertex_symmetry(self):
        torus = TorusTopology(4, 4)
        graph = torus.to_graph()
        reference = sorted(graph.bfs_distances(0))
        for node in range(1, 16):
            assert sorted(graph.bfs_distances(node)) == reference


class TestMetrics:
    def test_diameter_formula(self):
        # Torus diameter is floor(m/2) + floor(n/2).
        for rows, cols in ((3, 3), (4, 4), (4, 6), (5, 7)):
            torus = TorusTopology(rows, cols)
            assert diameter(torus) == rows // 2 + cols // 2

    def test_beats_same_size_mesh(self):
        from repro.topology import MeshTopology

        torus = TorusTopology(4, 6)
        mesh = MeshTopology(4, 6)
        assert diameter(torus) < diameter(mesh)
        assert average_distance(torus) < average_distance(mesh)
