"""Unit tests for graph-based topology metrics, with networkx as an
independent oracle."""

import networkx as nx
import pytest

from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    all_pairs_distances,
    average_distance,
    diameter,
    distance_histogram,
    per_node_distance_sum,
)


def to_networkx(topology):
    g = nx.DiGraph()
    g.add_nodes_from(range(topology.num_nodes))
    for link in topology.links():
        g.add_edge(link.src, link.dst)
    return g


TOPOLOGIES = [
    RingTopology(5),
    RingTopology(8),
    SpidergonTopology(6),
    SpidergonTopology(16),
    MeshTopology(2, 4),
    MeshTopology(4, 6),
    MeshTopology.irregular(11),
    MeshTopology.irregular(23),
]


@pytest.mark.parametrize(
    "topology", TOPOLOGIES, ids=lambda t: t.name
)
class TestAgainstNetworkx:
    def test_diameter_matches(self, topology):
        oracle = nx.diameter(to_networkx(topology))
        assert diameter(topology) == oracle

    def test_average_distance_matches(self, topology):
        g = to_networkx(topology)
        n = topology.num_nodes
        total = sum(
            d
            for lengths in dict(nx.all_pairs_shortest_path_length(g)).values()
            for d in lengths.values()
        )
        assert average_distance(topology) == pytest.approx(total / n**2)
        assert average_distance(
            topology, include_self=False
        ) == pytest.approx(total / (n * (n - 1)))

    def test_all_pairs_matches(self, topology):
        g = to_networkx(topology)
        ours = all_pairs_distances(topology)
        for src, lengths in nx.all_pairs_shortest_path_length(g):
            for dst, d in lengths.items():
                assert ours[src][dst] == d


class TestHelpers:
    def test_per_node_sum_on_ring(self):
        # Even ring: sum of distances from any node is N^2/4.
        ring = RingTopology(8)
        for node in range(8):
            assert per_node_distance_sum(ring, node) == 16

    def test_distance_histogram_counts_pairs(self):
        ring = RingTopology(4)
        hist = distance_histogram(ring)
        # 4 nodes: 8 ordered pairs at distance 1, 4 at distance 2.
        assert hist == {1: 8, 2: 4}

    def test_histogram_total_is_all_ordered_pairs(self):
        topology = SpidergonTopology(10)
        hist = distance_histogram(topology)
        assert sum(hist.values()) == 10 * 9

    def test_disconnected_raises(self):
        mesh = MeshTopology(1, 2, cells=[(0, 0), (0, 1)])
        # Break connectivity by constructing two isolated cells.
        isolated = MeshTopology(3, 3, cells=[(0, 0), (2, 2)])
        with pytest.raises(ValueError):
            diameter(isolated)
        with pytest.raises(ValueError):
            average_distance(isolated)
        with pytest.raises(ValueError):
            per_node_distance_sum(isolated, 0)
        assert diameter(mesh) == 1
