"""Tests for link-fault injection."""

import pytest

from repro.routing import TableRouting, routing_for
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    TopologyError,
    TorusTopology,
    diameter,
)
from repro.topology.faults import FaultyTopology


class TestConstruction:
    def test_removes_both_directions(self):
        mesh = MeshTopology(3, 3)
        faulty = FaultyTopology(mesh, [(0, 1)])
        assert 1 not in faulty.neighbors(0)
        assert 0 not in faulty.neighbors(1)
        assert faulty.num_links == mesh.num_links - 2

    def test_pair_order_irrelevant(self):
        mesh = MeshTopology(3, 3)
        a = FaultyTopology(mesh, [(0, 1)])
        b = FaultyTopology(mesh, [(1, 0)])
        assert a.failed_links == b.failed_links

    def test_rejects_nonexistent_link(self):
        with pytest.raises(TopologyError, match="non-existent"):
            FaultyTopology(MeshTopology(3, 3), [(0, 8)])

    def test_rejects_disconnecting_faults(self):
        # Cutting both links of ring node 1 isolates it.
        ring = RingTopology(6)
        with pytest.raises(TopologyError, match="disconnects"):
            FaultyTopology(ring, [(0, 1), (1, 2)])

    def test_still_validates_as_paired(self):
        faulty = FaultyTopology(TorusTopology(3, 3), [(0, 1), (4, 5)])
        faulty.validate()

    def test_name_reports_fault_count(self):
        faulty = FaultyTopology(SpidergonTopology(8), [(0, 4)])
        assert faulty.name == "spidergon8-faulty1"


class TestRandomFaults:
    def test_requested_count(self):
        faulty = FaultyTopology.with_random_faults(
            TorusTopology(4, 4), 5, seed=3
        )
        assert len(faulty.failed_links) == 5
        faulty.validate()

    def test_deterministic_per_seed(self):
        a = FaultyTopology.with_random_faults(
            MeshTopology(4, 4), 4, seed=9
        )
        b = FaultyTopology.with_random_faults(
            MeshTopology(4, 4), 4, seed=9
        )
        assert a.failed_links == b.failed_links

    def test_zero_faults_is_base(self):
        base = MeshTopology(3, 3)
        faulty = FaultyTopology.with_random_faults(base, 0)
        assert faulty.num_links == base.num_links

    def test_too_many_faults_rejected(self):
        with pytest.raises(TopologyError):
            FaultyTopology.with_random_faults(RingTopology(4), 5)


class TestRoutingAndSimulation:
    def test_routing_for_falls_back_to_table(self):
        faulty = FaultyTopology(MeshTopology(4, 4), [(5, 6)])
        assert isinstance(routing_for(faulty), TableRouting)

    def test_diameter_grows_gracefully(self):
        base = TorusTopology(4, 4)
        faulty = FaultyTopology.with_random_faults(base, 6, seed=2)
        assert diameter(faulty) >= diameter(base)
        assert diameter(faulty) <= base.num_nodes

    def test_degraded_network_still_delivers(self):
        from repro.noc.config import NocConfig
        from repro.noc.network import Network
        from repro.traffic import TrafficSpec, UniformTraffic

        base = TorusTopology(4, 4)
        faulty = FaultyTopology.with_random_faults(base, 4, seed=7)
        net = Network(
            faulty,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(faulty), 0.1),
            seed=7,
        )
        result = net.run(cycles=4_000, warmup=1_000)
        # Low load: the degraded network still accepts the offered
        # traffic (16 x 0.1 = 1.6 flits/cycle).
        assert result.throughput == pytest.approx(1.6, rel=0.15)

    def test_paths_lengthen_with_faults(self):
        # Below saturation the degraded network still delivers
        # everything, but packets detour around the dead links: mean
        # hop count (and with it latency) grows with the fault count.
        from repro.noc.config import NocConfig
        from repro.noc.network import Network
        from repro.traffic import TrafficSpec, UniformTraffic

        def mean_hops(fault_count):
            base = TorusTopology(4, 4)
            topology = (
                base
                if fault_count == 0
                else FaultyTopology.with_random_faults(
                    base, fault_count, seed=5
                )
            )
            net = Network(
                topology,
                routing=TableRouting(topology),
                config=NocConfig(source_queue_packets=16),
                traffic=TrafficSpec(UniformTraffic(topology), 0.1),
                seed=5,
            )
            return net.run(cycles=4_000, warmup=1_000).avg_hops

        healthy = mean_hops(0)
        degraded = mean_hops(8)
        assert degraded > healthy
