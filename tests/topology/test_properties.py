"""Property-based tests (hypothesis) on topology invariants."""

from hypothesis import given, settings, strategies as st

from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    average_distance,
    diameter,
)

ring_sizes = st.integers(min_value=3, max_value=64)
even_sizes = st.integers(min_value=2, max_value=32).map(lambda x: 2 * x)
mesh_dims = st.tuples(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=10),
).filter(lambda rc: rc[0] * rc[1] >= 2)


class TestStructuralInvariants:
    @given(ring_sizes)
    def test_ring_links_paired_and_connected(self, n):
        RingTopology(n).validate()

    @given(even_sizes)
    def test_spidergon_links_paired_and_connected(self, n):
        SpidergonTopology(n).validate()

    @given(mesh_dims)
    def test_mesh_links_paired_and_connected(self, dims):
        MeshTopology(*dims).validate()

    @given(st.integers(min_value=2, max_value=80))
    def test_irregular_mesh_valid(self, n):
        MeshTopology.irregular(n).validate()

    @given(even_sizes)
    def test_spidergon_degree_constant(self, n):
        sp = SpidergonTopology(n)
        assert all(sp.degree(v) == 3 for v in range(n))

    @given(mesh_dims)
    def test_mesh_degree_bounds(self, dims):
        mesh = MeshTopology(*dims)
        for node in range(mesh.num_nodes):
            assert 1 <= mesh.degree(node) <= 4


class TestMetricRelations:
    @given(even_sizes)
    @settings(max_examples=25, deadline=None)
    def test_spidergon_no_worse_than_ring(self, n):
        # Adding across links can only shrink distances.
        ring_ed = average_distance(RingTopology(max(n, 3)))
        spider_ed = average_distance(SpidergonTopology(max(n, 4)))
        assert spider_ed <= ring_ed + 1e-9

    @given(even_sizes)
    @settings(max_examples=25, deadline=None)
    def test_diameter_bounds_average(self, n):
        topology = SpidergonTopology(max(n, 4))
        assert average_distance(topology) <= diameter(topology)

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_irregular_mesh_diameter_le_strip(self, n):
        # The near-square irregular grid never does worse than the
        # 1 x N strip.
        assert diameter(MeshTopology.irregular(n)) <= n - 1

    @given(mesh_dims)
    @settings(max_examples=30, deadline=None)
    def test_mesh_diameter_exact(self, dims):
        rows, cols = dims
        assert diameter(MeshTopology(rows, cols)) == rows + cols - 2

    @given(even_sizes)
    @settings(max_examples=20, deadline=None)
    def test_links_formulas(self, n):
        n = max(n, 4)
        assert RingTopology(n).num_links == 2 * n
        assert SpidergonTopology(n).num_links == 3 * n
