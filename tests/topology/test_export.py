"""Tests for topology export helpers."""

from repro.topology import MeshTopology, RingTopology, SpidergonTopology
from repro.topology.export import to_adjacency_text, to_dot


class TestDot:
    def test_undirected_edges_deduplicated(self):
        dot = to_dot(RingTopology(6))
        assert dot.count(" -- ") == 6  # 12 directed links -> 6 edges

    def test_spidergon_edge_count(self):
        dot = to_dot(SpidergonTopology(8))
        # 8 ring edges + 4 across edges.
        assert dot.count(" -- ") == 12

    def test_mesh_gets_positions(self):
        dot = to_dot(MeshTopology(2, 3))
        assert 'pos="2,-1!"' in dot

    def test_valid_structure(self):
        dot = to_dot(SpidergonTopology(8))
        assert dot.startswith("graph spidergon8 {")
        assert dot.rstrip().endswith("}")
        assert 'label="across"' in dot

    def test_custom_name_sanitised(self):
        dot = to_dot(MeshTopology.irregular(11), name="my-floorplan")
        assert dot.startswith("graph my_floorplan {")


class TestAdjacencyText:
    def test_lists_every_node(self):
        text = to_adjacency_text(RingTopology(5))
        lines = text.strip().splitlines()
        assert len(lines) == 6  # header + 5 nodes
        assert lines[1] == "0: ccw->4 cw->1"

    def test_header_has_counts(self):
        text = to_adjacency_text(SpidergonTopology(8))
        assert "8 nodes, 24 links" in text


class TestLinkAttrAnnotations:
    def test_uniform_topologies_render_without_notes(self):
        for topology in (RingTopology(6), MeshTopology(3, 3)):
            assert "lat=" not in to_dot(topology)
            assert "(" not in to_adjacency_text(topology)

    def test_tsv_links_annotated_and_dashed(self):
        from repro.topology import Mesh3DTopology

        topology = Mesh3DTopology(2, 2, 2, tsv_latency=2)
        dot = to_dot(topology)
        assert "[tsv lat=2]" in dot
        assert "style=dashed" in dot
        text = to_adjacency_text(topology)
        assert "up->4 (tsv lat=2)" in text
        assert "east->1\n" in text or "east->1 " in text

    def test_penalty_one_tsv_still_tagged(self):
        # Latency-1 TSVs are timing-uniform but the kind tag is
        # still worth surfacing in exports.
        from repro.topology import Mesh3DTopology

        text = to_adjacency_text(Mesh3DTopology(2, 2, 2))
        assert "up->4 (tsv)" in text

    def test_width_annotation(self):
        from repro.topology import Mesh3DTopology

        dot = to_dot(Mesh3DTopology(2, 2, 2, tsv_width=0.5))
        assert "[tsv w=0.5]" in dot

    def test_3d_grid_gets_layered_positions(self):
        from repro.topology import Mesh3DTopology

        dot = to_dot(Mesh3DTopology(2, 2, 2))
        # Layer z=1 is offset by size_x + 1 = 3 on the x axis.
        assert 'pos="0,0!"' in dot
        assert 'pos="3,0!"' in dot
