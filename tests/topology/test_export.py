"""Tests for topology export helpers."""

from repro.topology import MeshTopology, RingTopology, SpidergonTopology
from repro.topology.export import to_adjacency_text, to_dot


class TestDot:
    def test_undirected_edges_deduplicated(self):
        dot = to_dot(RingTopology(6))
        assert dot.count(" -- ") == 6  # 12 directed links -> 6 edges

    def test_spidergon_edge_count(self):
        dot = to_dot(SpidergonTopology(8))
        # 8 ring edges + 4 across edges.
        assert dot.count(" -- ") == 12

    def test_mesh_gets_positions(self):
        dot = to_dot(MeshTopology(2, 3))
        assert 'pos="2,-1!"' in dot

    def test_valid_structure(self):
        dot = to_dot(SpidergonTopology(8))
        assert dot.startswith("graph spidergon8 {")
        assert dot.rstrip().endswith("}")
        assert 'label="across"' in dot

    def test_custom_name_sanitised(self):
        dot = to_dot(MeshTopology.irregular(11), name="my-floorplan")
        assert dot.startswith("graph my_floorplan {")


class TestAdjacencyText:
    def test_lists_every_node(self):
        text = to_adjacency_text(RingTopology(5))
        lines = text.strip().splitlines()
        assert len(lines) == 6  # header + 5 nodes
        assert lines[1] == "0: ccw->4 cw->1"

    def test_header_has_counts(self):
        text = to_adjacency_text(SpidergonTopology(8))
        assert "8 nodes, 24 links" in text
