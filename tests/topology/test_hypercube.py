"""Unit tests for the hypercube topology (extension)."""

import pytest

from repro.topology import (
    HypercubeTopology,
    TopologyError,
    average_distance,
    diameter,
    per_node_distance_sum,
)


class TestStructure:
    def test_node_count(self):
        assert HypercubeTopology(3).num_nodes == 8
        assert HypercubeTopology.with_nodes(16).dimension == 4

    def test_with_nodes_requires_power_of_two(self):
        with pytest.raises(TopologyError):
            HypercubeTopology.with_nodes(12)

    def test_dimension_bounds(self):
        with pytest.raises(TopologyError):
            HypercubeTopology(0)
        with pytest.raises(TopologyError):
            HypercubeTopology(17)

    def test_ports_flip_one_bit(self):
        cube = HypercubeTopology(3)
        assert cube.out_ports(0) == {"dim0": 1, "dim1": 2, "dim2": 4}
        assert cube.out_ports(5) == {"dim0": 4, "dim1": 7, "dim2": 1}

    def test_degree_is_log_n(self):
        cube = HypercubeTopology(4)
        assert all(cube.degree(n) == 4 for n in range(16))

    def test_link_count(self):
        # d * 2^d unidirectional links.
        assert HypercubeTopology(3).num_links == 24

    def test_validates(self):
        HypercubeTopology(4).validate()


class TestMetrics:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
    def test_diameter_is_dimension(self, d):
        assert diameter(HypercubeTopology(d)) == d

    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_average_distance_is_half_dimension(self, d):
        # Sum over all nodes of Hamming distance = d * 2^(d-1);
        # divided by N (self included) gives exactly d/2.
        cube = HypercubeTopology(d)
        assert average_distance(cube) == pytest.approx(d / 2)
        assert per_node_distance_sum(cube, 0) == d * 2 ** (d - 1)

    def test_shortest_paths_of_all_studied_topologies(self):
        # The paper's complexity trade-off, in one assertion: at
        # N=16 the hypercube beats every constant-degree topology on
        # average distance.
        from repro.topology import (
            MeshTopology,
            RingTopology,
            SpidergonTopology,
            TorusTopology,
        )

        cube = average_distance(HypercubeTopology(4))
        for other in (
            RingTopology(16),
            SpidergonTopology(16),
            MeshTopology(4, 4),
        ):
            assert cube < average_distance(other)
        # The 4x4 torus is graph-isomorphic to Q4 (C4 = Q2, and
        # C4 x C4 = Q2 x Q2 = Q4): identical distance structure.
        assert cube == average_distance(TorusTopology(4, 4))
