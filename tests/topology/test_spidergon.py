"""Unit tests for the Spidergon topology."""

import pytest

from repro.topology import SpidergonTopology, TopologyError, diameter


class TestStructure:
    def test_requires_even_size(self):
        with pytest.raises(TopologyError):
            SpidergonTopology(7)

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            SpidergonTopology(2)

    def test_ports(self):
        sp = SpidergonTopology(8)
        assert sp.out_ports(0) == {"cw": 1, "ccw": 7, "across": 4}
        assert sp.out_ports(5) == {"cw": 6, "ccw": 4, "across": 1}

    def test_constant_degree_three(self):
        # Paper: "constant node degree (equal to 3)".
        sp = SpidergonTopology(12)
        assert all(sp.degree(n) == 3 for n in range(12))

    def test_link_count_is_3n(self):
        for n in (4, 8, 16, 30):
            assert SpidergonTopology(n).num_links == 3 * n

    def test_across_is_involution(self):
        sp = SpidergonTopology(10)
        for node in range(10):
            assert sp.opposite(sp.opposite(node)) == node

    def test_validates(self):
        SpidergonTopology(16).validate()


class TestVertexSymmetry:
    def test_degree_sequence_identical_from_every_node(self):
        # Paper: "vertex symmetry (same topology appears from any
        # node)" — check that distance multisets agree across nodes.
        sp = SpidergonTopology(12)
        graph = sp.to_graph()
        reference = sorted(graph.bfs_distances(0))
        for node in range(1, 12):
            assert sorted(graph.bfs_distances(node)) == reference


class TestDiameter:
    def test_matches_ceiling_formula(self):
        for n in range(4, 40, 2):
            assert diameter(SpidergonTopology(n)) == -(-n // 4)

    def test_small_spidergon_is_complete(self):
        # N=4: ring plus both diagonals = K4.
        assert diameter(SpidergonTopology(4)) == 1
