"""Unit tests for the minimal directed graph."""

import pytest

from repro.topology.graph import Graph


class TestConstruction:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Graph(0)

    def test_add_edge_and_query(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.successors(0) == (1,)

    def test_add_edge_idempotent(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_out_of_range_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 3)
        with pytest.raises(ValueError):
            g.add_edge(-1, 0)

    def test_edges_listing(self):
        g = Graph(3)
        g.add_edge(2, 0)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        assert set(g.edges()) == {(2, 0), (0, 1), (0, 2)}


class TestBfs:
    def _path_graph(self, n):
        g = Graph(n)
        for i in range(n - 1):
            g.add_edge(i, i + 1)
            g.add_edge(i + 1, i)
        return g

    def test_distances_on_path(self):
        g = self._path_graph(5)
        assert g.bfs_distances(0) == [0, 1, 2, 3, 4]
        assert g.bfs_distances(2) == [2, 1, 0, 1, 2]

    def test_unreachable_marked_minus_one(self):
        g = Graph(4)
        g.add_edge(0, 1)
        assert g.bfs_distances(0) == [0, 1, -1, -1]

    def test_directed_asymmetry(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.bfs_distances(0) == [0, 1, 2]
        assert g.bfs_distances(2) == [-1, -1, 0]


class TestShortestPath:
    def test_trivial_path(self):
        g = Graph(2)
        g.add_edge(0, 1)
        assert g.shortest_path(0, 0) == [0]
        assert g.shortest_path(0, 1) == [0, 1]

    def test_path_length_matches_bfs(self):
        g = Graph(6)
        edges = [(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5)]
        for a, b in edges:
            g.add_edge(a, b)
            g.add_edge(b, a)
        path = g.shortest_path(0, 5)
        assert len(path) - 1 == g.bfs_distances(0)[5]
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)

    def test_deterministic_tie_break(self):
        # Two equal-length routes 0->1->3 and 0->2->3: BFS must pick
        # the lowest-numbered first hop.
        g = Graph(4)
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            g.add_edge(a, b)
        assert g.shortest_path(0, 3) == [0, 1, 3]

    def test_unreachable_target_raises(self):
        g = Graph(3)
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            g.shortest_path(0, 2)


class TestConnectivity:
    def test_strongly_connected_cycle(self):
        g = Graph(4)
        for i in range(4):
            g.add_edge(i, (i + 1) % 4)
        assert g.is_strongly_connected()

    def test_one_way_chain_not_strongly_connected(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert not g.is_strongly_connected()

    def test_disconnected_not_strongly_connected(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert not g.is_strongly_connected()
