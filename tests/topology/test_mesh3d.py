"""3D mesh/torus construction, addressing and link attributes."""

import pytest

from repro.topology import (
    LinkAttrs,
    Mesh3DTopology,
    Torus3DTopology,
    TopologyError,
    diameter,
)
from repro.topology.base import PLANAR, TSV
from repro.topology.mesh3d import DOWN, UP


class TestConstruction:
    def test_mesh3d_name_and_counts(self):
        topo = Mesh3DTopology(4, 3, 2)
        assert topo.name == "mesh3d4x3x2"
        assert topo.num_nodes == 24
        topo.validate()

    def test_torus3d_name_and_counts(self):
        topo = Torus3DTopology(3, 4, 5)
        assert topo.name == "torus3d3x4x5"
        assert topo.num_nodes == 60
        topo.validate()

    def test_tsv_latency_suffixes_name(self):
        assert Mesh3DTopology(3, 3, 3, tsv_latency=2).name == (
            "mesh3d3x3x3@tsv2"
        )
        assert Torus3DTopology(3, 3, 3, tsv_latency=4).name == (
            "torus3d3x3x3@tsv4"
        )
        # Penalty 1 is the uniform model: no suffix.
        assert Mesh3DTopology(3, 3, 3, tsv_latency=1).name == (
            "mesh3d3x3x3"
        )

    def test_cube_classmethods(self):
        assert Mesh3DTopology.cube(4).num_nodes == 64
        assert Torus3DTopology.cube(3, tsv_latency=2).tsv_latency == 2

    def test_single_layer_rejected(self):
        with pytest.raises(TopologyError):
            Mesh3DTopology(4, 4, 1)

    def test_mesh3d_planar_extent_zero_rejected(self):
        with pytest.raises(TopologyError):
            Mesh3DTopology(0, 4, 2)

    def test_torus3d_small_dimension_rejected(self):
        # Wraparound links would duplicate mesh links below size 3.
        with pytest.raises(TopologyError):
            Torus3DTopology(2, 3, 3)

    def test_bad_tsv_attrs_rejected(self):
        with pytest.raises(TopologyError):
            Mesh3DTopology(3, 3, 3, tsv_latency=0)
        with pytest.raises(TopologyError):
            Mesh3DTopology(3, 3, 3, tsv_width=0.0)


class TestAddressing:
    def test_coordinates_node_at_round_trip(self):
        topo = Mesh3DTopology(4, 3, 2)
        for node in range(topo.num_nodes):
            assert topo.node_at(*topo.coordinates(node)) == node

    def test_x_varies_fastest(self):
        topo = Mesh3DTopology(4, 3, 2)
        assert topo.coordinates(0) == (0, 0, 0)
        assert topo.coordinates(1) == (1, 0, 0)
        assert topo.coordinates(4) == (0, 1, 0)
        assert topo.coordinates(12) == (0, 0, 1)

    def test_node_at_out_of_grid(self):
        topo = Mesh3DTopology(4, 3, 2)
        for bad in [(-1, 0, 0), (4, 0, 0), (0, 3, 0), (0, 0, 2)]:
            with pytest.raises(TopologyError):
                topo.node_at(*bad)

    def test_mesh_boundary_has_no_wrap_ports(self):
        topo = Mesh3DTopology(3, 3, 3)
        corner = topo.out_ports(0)
        assert sorted(corner) == ["east", "south", "up"]
        far_corner = topo.out_ports(topo.num_nodes - 1)
        assert sorted(far_corner) == ["down", "north", "west"]

    def test_torus_every_node_has_six_ports(self):
        topo = Torus3DTopology(3, 3, 3)
        for node in range(topo.num_nodes):
            assert len(topo.out_ports(node)) == 6

    def test_torus_wraparound(self):
        topo = Torus3DTopology(3, 3, 3)
        # Node (2, 0, 0) -> east wraps to (0, 0, 0).
        assert topo.out_ports(topo.node_at(2, 0, 0))["east"] == 0
        # Top layer's up wraps to the bottom layer.
        assert topo.out_ports(topo.node_at(0, 0, 2))[UP] == 0

    def test_ring_distance(self):
        topo = Torus3DTopology(5, 3, 3)
        assert topo.ring_distance(5, 0, 3) == 2
        assert topo.ring_distance(5, 4, 0) == 1


class TestLinkAttrs:
    def test_vertical_links_are_tsv(self):
        topo = Mesh3DTopology(3, 3, 3, tsv_latency=2, tsv_width=0.5)
        for port in (UP, DOWN):
            attrs = topo.link_attrs(topo.node_at(1, 1, 1), port)
            assert attrs == LinkAttrs(latency=2, width=0.5, kind=TSV)
        planar = topo.link_attrs(0, "east")
        assert planar.kind == PLANAR
        assert planar.latency == 1

    def test_links_carry_attrs(self):
        topo = Torus3DTopology(3, 3, 3, tsv_latency=4)
        tsv_links = [l for l in topo.links() if l.kind == TSV]
        planar_links = [l for l in topo.links() if l.kind == PLANAR]
        assert len(tsv_links) == 2 * 27  # up + down per node
        assert len(planar_links) == 4 * 27
        assert all(l.latency == 4 for l in tsv_links)
        assert all(l.latency == 1 for l in planar_links)

    def test_is_uniform(self):
        assert Mesh3DTopology(3, 3, 2).is_uniform
        assert not Mesh3DTopology(3, 3, 2, tsv_latency=2).is_uniform
        assert not Mesh3DTopology(3, 3, 2, tsv_width=0.5).is_uniform


class TestGraphShape:
    @pytest.mark.parametrize("dims", [(2, 2, 2), (3, 2, 4), (4, 4, 4)])
    def test_mesh3d_diameter_is_manhattan(self, dims):
        topo = Mesh3DTopology(*dims)
        assert diameter(topo) == sum(d - 1 for d in dims)

    @pytest.mark.parametrize("dims", [(3, 3, 3), (4, 3, 5), (4, 4, 4)])
    def test_torus3d_diameter_is_wrap_manhattan(self, dims):
        topo = Torus3DTopology(*dims)
        assert diameter(topo) == sum(d // 2 for d in dims)

    def test_mesh3d_degenerates_to_stacked_grid(self):
        # 1x1xZ is a path graph of Z nodes joined purely by TSVs.
        topo = Mesh3DTopology(1, 1, 4)
        assert topo.num_links == 6
        assert all(l.port in (UP, DOWN) for l in topo.links())
