"""Unit tests for regular, factorized and irregular meshes."""

import pytest

from repro.topology import (
    MeshTopology,
    TopologyError,
    best_factorization,
    diameter,
)


class TestBestFactorization:
    def test_perfect_square(self):
        assert best_factorization(16) == (4, 4)

    def test_rectangles(self):
        assert best_factorization(24) == (4, 6)
        assert best_factorization(8) == (2, 4)

    def test_prime_degenerates_to_strip(self):
        assert best_factorization(13) == (1, 13)

    def test_two_times_prime(self):
        assert best_factorization(22) == (2, 11)

    def test_rejects_nonpositive(self):
        with pytest.raises(TopologyError):
            best_factorization(0)


class TestRegularMesh:
    def test_row_major_numbering(self):
        mesh = MeshTopology(2, 4)
        assert mesh.coordinates(0) == (0, 0)
        assert mesh.coordinates(3) == (0, 3)
        assert mesh.coordinates(4) == (1, 0)
        assert mesh.node_at(1, 3) == 7

    def test_corner_ports(self):
        mesh = MeshTopology(3, 3)
        assert mesh.out_ports(0) == {"south": 3, "east": 1}
        assert mesh.out_ports(8) == {"north": 5, "west": 7}

    def test_center_ports(self):
        mesh = MeshTopology(3, 3)
        assert mesh.out_ports(4) == {
            "north": 1,
            "south": 7,
            "east": 5,
            "west": 3,
        }

    def test_link_count_formula(self):
        # Paper: 2(m-1)n + 2(n-1)m unidirectional links.
        for rows, cols in ((2, 4), (3, 3), (4, 6), (1, 7)):
            mesh = MeshTopology(rows, cols)
            expected = 2 * (rows - 1) * cols + 2 * (cols - 1) * rows
            assert mesh.num_links == expected

    def test_diameter_formula(self):
        for rows, cols in ((2, 4), (4, 6), (5, 5)):
            assert diameter(MeshTopology(rows, cols)) == rows + cols - 2

    def test_validates(self):
        MeshTopology(4, 6).validate()

    def test_is_regular(self):
        assert MeshTopology(3, 4).is_regular

    def test_ideal_requires_perfect_square(self):
        assert MeshTopology.ideal(25).rows == 5
        with pytest.raises(TopologyError):
            MeshTopology.ideal(24)

    def test_factorized_shape(self):
        mesh = MeshTopology.factorized(24)
        assert (mesh.rows, mesh.cols) == (4, 6)

    def test_center_node(self):
        assert MeshTopology(3, 3).center_node() == 4
        # 2x4 mesh: paper's "middle" is node 5 (1-based) = node 4.
        assert MeshTopology(2, 4).center_node() in (1, 2, 5, 6, 4)


class TestIrregularMesh:
    def test_node_count(self):
        for n in (5, 7, 11, 23, 37):
            assert MeshTopology.irregular(n).num_nodes == n

    def test_partial_row_has_north_neighbor(self):
        mesh = MeshTopology.irregular(11)
        assert not mesh.is_regular
        mesh.validate()  # connected with paired links

    def test_square_count_is_regular(self):
        assert MeshTopology.irregular(16).is_regular

    def test_missing_cell_lookup_raises(self):
        mesh = MeshTopology.irregular(11)  # 3x4 grid, 11 cells
        with pytest.raises(TopologyError):
            mesh.node_at(2, 3)

    def test_has_cell(self):
        mesh = MeshTopology.irregular(11)
        assert mesh.has_cell(0, 0)
        assert not mesh.has_cell(2, 3)

    def test_explicit_cells_validation(self):
        with pytest.raises(TopologyError):
            MeshTopology(2, 2, cells=[(0, 0), (5, 5)])

    def test_name_distinguishes_irregular(self):
        assert "irregular" in MeshTopology.irregular(11).name
        assert "irregular" not in MeshTopology(3, 4).name

    def test_rejects_tiny(self):
        with pytest.raises(TopologyError):
            MeshTopology.irregular(1)

    def test_all_irregular_sizes_connected(self):
        for n in range(2, 50):
            MeshTopology.irregular(n).validate()
