"""Unit tests for the Topology base class helpers."""

import pytest

from repro.topology import Link, RingTopology, Topology, TopologyError


class Broken(Topology):
    """A topology with an unpaired link, for validate() tests."""

    def __init__(self):
        super().__init__(3, "broken")

    def out_ports(self, node):
        self.check_node(node)
        # 0 -> 1 -> 2 -> 0 one-way only: reverses missing.
        return {"next": (node + 1) % 3}


class SelfLinker(Topology):
    def __init__(self):
        super().__init__(2, "selfish")

    def out_ports(self, node):
        self.check_node(node)
        return {"loop": node}


class TestBase:
    def test_minimum_nodes(self):
        class Tiny(Topology):
            def __init__(self):
                super().__init__(1, "tiny")

            def out_ports(self, node):
                return {}

        with pytest.raises(TopologyError):
            Tiny()

    def test_links_are_sorted_by_node_then_port(self):
        ring = RingTopology(3)
        links = ring.links()
        assert links[0] == Link(0, 2, "ccw")
        assert links[1] == Link(0, 1, "cw")
        assert [l.src for l in links] == [0, 0, 1, 1, 2, 2]

    def test_neighbors(self):
        ring = RingTopology(5)
        assert set(ring.neighbors(0)) == {1, 4}

    def test_validate_detects_unpaired_links(self):
        with pytest.raises(TopologyError, match="no reverse"):
            Broken().validate()

    def test_validate_detects_self_links(self):
        with pytest.raises(TopologyError, match="links to itself"):
            SelfLinker().validate()

    def test_check_node_bounds(self):
        ring = RingTopology(4)
        ring.check_node(0)
        ring.check_node(3)
        with pytest.raises(TopologyError):
            ring.check_node(4)
