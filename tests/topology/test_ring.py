"""Unit tests for the Ring topology."""

import pytest

from repro.topology import RingTopology, TopologyError, diameter


class TestStructure:
    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            RingTopology(2)

    def test_ports(self):
        ring = RingTopology(6)
        assert ring.out_ports(0) == {"cw": 1, "ccw": 5}
        assert ring.out_ports(5) == {"cw": 0, "ccw": 4}

    def test_constant_degree_two(self):
        ring = RingTopology(9)
        assert all(ring.degree(n) == 2 for n in range(9))

    def test_link_count_is_2n(self):
        for n in (3, 4, 8, 17):
            assert RingTopology(n).num_links == 2 * n

    def test_validates(self):
        RingTopology(8).validate()

    def test_port_to(self):
        ring = RingTopology(5)
        assert ring.port_to(0, 1) == "cw"
        assert ring.port_to(0, 4) == "ccw"
        with pytest.raises(TopologyError):
            ring.port_to(0, 2)

    def test_name(self):
        assert RingTopology(12).name == "ring12"


class TestDistances:
    def test_ring_distance_symmetry(self):
        ring = RingTopology(10)
        for a in range(10):
            for b in range(10):
                assert ring.ring_distance(a, b) == ring.ring_distance(b, a)

    def test_ring_distance_values(self):
        ring = RingTopology(8)
        assert ring.ring_distance(0, 0) == 0
        assert ring.ring_distance(0, 1) == 1
        assert ring.ring_distance(0, 4) == 4
        assert ring.ring_distance(0, 7) == 1

    def test_clockwise_distance(self):
        ring = RingTopology(8)
        assert ring.clockwise_distance(6, 1) == 3
        assert ring.clockwise_distance(1, 6) == 5

    def test_diameter_matches_formula(self):
        for n in (4, 5, 8, 11, 16):
            assert diameter(RingTopology(n)) == n // 2

    def test_out_of_range_node(self):
        ring = RingTopology(4)
        with pytest.raises(TopologyError):
            ring.out_ports(4)
        with pytest.raises(TopologyError):
            ring.ring_distance(0, -1)
