"""Unit and property tests for the circulant family C(N; 1, s)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import (
    CirculantTopology,
    SpidergonTopology,
    TopologyError,
    average_distance,
    diameter,
)
from repro.topology.circulant import (
    CHORD_CLOCKWISE,
    CHORD_COUNTERCLOCKWISE,
    minimal_decomposition,
)
from repro.topology.spidergon import ACROSS


def circulant_params(max_nodes=64):
    """(N, s) pairs with 4 <= N and 2 <= s <= N//2."""
    return st.integers(min_value=4, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n), st.integers(min_value=2, max_value=n // 2)
        )
    )


class TestConstruction:
    def test_name_encodes_parameters(self):
        assert CirculantTopology(16, 4).name == "circulant16s4"

    def test_rejects_tiny_networks(self):
        with pytest.raises(TopologyError):
            CirculantTopology(3, 2)

    @pytest.mark.parametrize("skip", [0, 1, 9, 15, 16])
    def test_rejects_non_canonical_skip(self, skip):
        with pytest.raises(TopologyError):
            CirculantTopology(16, skip)

    def test_non_canonical_error_explains_mirror(self):
        with pytest.raises(TopologyError, match="C\\(N; 1, N-s\\)"):
            CirculantTopology(16, 12)

    def test_multiplicative_classmethod(self):
        topology = CirculantTopology.multiplicative(5)
        assert topology.num_nodes == 25
        assert topology.skip == 5
        assert topology.is_multiplicative

    def test_multiplicative_rejects_small_base(self):
        with pytest.raises(TopologyError):
            CirculantTopology.multiplicative(1)

    def test_is_multiplicative_false_otherwise(self):
        assert CirculantTopology(16, 4).is_multiplicative  # 16 == 4^2
        assert not CirculantTopology(16, 5).is_multiplicative
        assert not CirculantTopology(20, 6).is_multiplicative

    @given(circulant_params())
    @settings(max_examples=60, deadline=None)
    def test_links_paired_and_connected(self, params):
        CirculantTopology(*params).validate()

    @given(circulant_params())
    @settings(max_examples=60, deadline=None)
    def test_degree_constant(self, params):
        n, s = params
        topology = CirculantTopology(n, s)
        expected = 3 if 2 * s == n else 4
        assert all(
            topology.degree(v) == expected for v in range(n)
        )


class TestSpidergonEquivalence:
    """s = N/2 is exactly the Spidergon, ports and all."""

    @pytest.mark.parametrize("n", [4, 8, 12, 16, 24])
    def test_same_ports_as_spidergon(self, n):
        circulant = CirculantTopology(n, n // 2)
        spidergon = SpidergonTopology(n)
        assert circulant.has_diametral_chord
        for node in range(n):
            assert circulant.out_ports(node) == spidergon.out_ports(node)

    def test_proper_chord_uses_chord_ports(self):
        topology = CirculantTopology(16, 4)
        ports = topology.out_ports(0)
        assert ports[CHORD_CLOCKWISE] == 4
        assert ports[CHORD_COUNTERCLOCKWISE] == 12
        assert ACROSS not in ports

    def test_chord_port_selector(self):
        proper = CirculantTopology(16, 4)
        assert proper.chord_port(+1) == CHORD_CLOCKWISE
        assert proper.chord_port(-1) == CHORD_COUNTERCLOCKWISE
        diametral = CirculantTopology(16, 8)
        assert diametral.chord_port(+1) == ACROSS
        assert diametral.chord_port(-1) == ACROSS


class TestChordCycles:
    def test_cycle_length_is_n_over_gcd(self):
        assert CirculantTopology(16, 4).chord_cycle_length() == 4
        assert CirculantTopology(15, 6).chord_cycle_length() == 5
        assert CirculantTopology(16, 5).chord_cycle_length() == 16

    @given(circulant_params(max_nodes=40))
    @settings(max_examples=60, deadline=None)
    def test_cycles_partition_the_nodes(self, params):
        n, s = params
        topology = CirculantTopology(n, s)
        cycles = {
            tuple(sorted(topology.chord_cycle_nodes(v)))
            for v in range(n)
        }
        assert len(cycles) == math.gcd(n, s)
        covered = sorted(v for cycle in cycles for v in cycle)
        assert covered == list(range(n))
        assert all(
            len(cycle) == topology.chord_cycle_length()
            for cycle in cycles
        )

    def test_cycle_min_max(self):
        topology = CirculantTopology(16, 4)
        # cycle through 1: 1, 5, 9, 13
        assert topology.chord_cycle_min(5) == 1
        assert topology.chord_cycle_max(5) == 13


class TestMinimalDecomposition:
    @given(circulant_params(), st.data())
    @settings(max_examples=120, deadline=None)
    def test_decomposition_is_congruent_and_minimal(self, params, data):
        n, s = params
        topology = CirculantTopology(n, s)
        graph = topology.to_graph()
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        chords, steps = minimal_decomposition(n, s, dst - src)
        assert (chords * s + steps) % n == (dst - src) % n
        assert abs(chords) + abs(steps) == graph.bfs_distances(src)[dst]
        assert abs(chords) < topology.chord_cycle_length()

    @given(circulant_params(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_analytic_distance_matches_bfs(self, params, data):
        n, s = params
        topology = CirculantTopology(n, s)
        src = data.draw(st.integers(0, n - 1))
        distances = topology.to_graph().bfs_distances(src)
        for dst in range(n):
            assert topology.analytic_distance(src, dst) == distances[dst]

    def test_diametral_ties_break_clockwise(self):
        # +1 and -1 chords always tie on the Spidergon; the canonical
        # choice must be clockwise so only one across port exists.
        for offset in range(16):
            chords, _ = minimal_decomposition(16, 8, offset)
            assert chords >= 0


class TestMetrics:
    @given(circulant_params(max_nodes=40))
    @settings(max_examples=30, deadline=None)
    def test_no_worse_than_plain_ring(self, params):
        # A chord can only shrink ring distances.
        n, s = params
        assert average_distance(CirculantTopology(n, s)) <= (
            n / 4 + 1e-9
        )

    def test_multiplicative_diameter_near_sqrt(self):
        # C(s^2; 1, s) has diameter about s — the family's sweet spot.
        for s in (4, 5, 6, 8):
            topology = CirculantTopology.multiplicative(s)
            assert diameter(topology) <= s

    def test_ring_distance(self):
        topology = CirculantTopology(10, 3)
        assert topology.ring_distance(0, 4) == 4
        assert topology.ring_distance(0, 7) == 3
