"""Tests for run-energy accounting."""

import pytest

from repro.cost import EnergyModel, EnergyReport
from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.topology import RingTopology, SpidergonTopology
from repro.traffic import TrafficSpec, UniformTraffic


def burst_network(topology, pairs, size=6):
    """Inject a deterministic burst and drain it completely."""
    net = Network(topology, seed=0)
    for src, dst in pairs:
        net.interfaces[src].enqueue_packet(
            Packet(src, dst, size, created_at=0)
        )
    net.simulator.run(until=2_000)
    net.cycles_run = 2_000
    return net


class TestAccounting:
    def test_requires_completed_run(self):
        net = Network(RingTopology(4))
        with pytest.raises(ValueError):
            EnergyReport.from_network(net)

    def test_single_packet_energy_exact(self):
        # One 6-flit packet over 2 unit-length ring hops:
        # wire = 2 hops * 6 flits * 1.0
        # router hops = (2 links + 1 ejection) * 6 flits * 1.2
        # routing = 12 flit-hops / 6 flits * 0.3
        net = burst_network(RingTopology(8), [(0, 2)])
        report = EnergyReport.from_network(net)
        assert report.wire_energy == pytest.approx(12.0)
        assert report.router_energy == pytest.approx(18 * 1.2)
        assert report.routing_energy == pytest.approx(2 * 0.3)
        assert report.flits_delivered == 6
        assert report.energy_per_flit == pytest.approx(
            report.total / 6
        )

    def test_custom_model_scales(self):
        net = burst_network(RingTopology(8), [(0, 2)])
        doubled = EnergyReport.from_network(
            net, EnergyModel(wire=2.0, router_hop=2.4,
                             routing_decision=0.6)
        )
        base = EnergyReport.from_network(net)
        assert doubled.total == pytest.approx(2 * base.total)

    def test_empty_run_zero_energy(self):
        net = Network(RingTopology(4))
        net.run(cycles=100)
        report = EnergyReport.from_network(net)
        assert report.total == 0.0
        assert report.energy_per_flit == 0.0


class TestTopologyComparison:
    def test_across_links_cost_wire_energy(self):
        # The same packet delivered over the Spidergon across link
        # spends more wire energy than two ring hops would, but fewer
        # router hops: the model resolves the trade-off numerically.
        spider = SpidergonTopology(16)
        net = burst_network(spider, [(0, 8)])
        report = EnergyReport.from_network(net)
        # One across hop: 6 flits * 16/pi length.
        assert report.wire_energy == pytest.approx(
            6 * 16 / 3.141592653589793, rel=1e-6
        )

    def test_uniform_traffic_energy_per_flit_finite(self):
        topology = SpidergonTopology(16)
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(topology), 0.2),
            seed=3,
        )
        net.run(cycles=3_000)
        report = EnergyReport.from_network(net)
        assert report.total > 0
        assert report.energy_per_flit > 0
        # Per-link map only holds loaded links.
        assert all(e > 0 for e in report.per_link.values())
