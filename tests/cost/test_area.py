"""Tests for the router/network area model."""

import pytest

from repro.cost import RouterArea, network_area, router_area
from repro.noc.config import NocConfig
from repro.topology import MeshTopology, RingTopology, SpidergonTopology


class TestRouterArea:
    def test_breakdown_sums(self):
        area = router_area(SpidergonTopology(8), 0, num_vcs=2)
        assert area.total == pytest.approx(
            area.buffers + area.crossbar + area.control
        )

    def test_spidergon_routers_identical(self):
        # Constant degree 3: "same topology appears from any node".
        topology = SpidergonTopology(12)
        areas = {
            router_area(topology, n, num_vcs=2).total
            for n in range(12)
        }
        assert len(areas) == 1

    def test_mesh_routers_vary_with_degree(self):
        topology = MeshTopology(3, 3)
        corner = router_area(topology, 0).total
        center = router_area(topology, 4).total
        assert center > corner

    def test_more_vcs_more_area(self):
        topology = RingTopology(8)
        one = router_area(topology, 0, num_vcs=1).total
        two = router_area(topology, 0, num_vcs=2).total
        assert two > one

    def test_deeper_buffers_more_area(self):
        topology = RingTopology(8)
        shallow = router_area(
            topology, 0, NocConfig(output_buffer_flits=1)
        ).total
        deep = router_area(
            topology, 0, NocConfig(output_buffer_flits=8)
        ).total
        assert deep > shallow

    def test_rejects_bad_vcs(self):
        with pytest.raises(ValueError):
            router_area(RingTopology(8), 0, num_vcs=0)


class TestNetworkArea:
    def test_ordering_at_equal_provisioning(self):
        # At equal VC provisioning the ring (degree 2) is cheapest.
        # The Spidergon's constant 4-port routers come in slightly
        # *below* the 4x4 mesh, whose five-port inner routers pay
        # quadratically in the crossbar — the quantified form of the
        # paper's "constant node degree ... translating in simple
        # router HW and efficiency".
        n = 16
        ring = network_area(RingTopology(n), num_vcs=1)
        mesh = network_area(MeshTopology(4, 4), num_vcs=1)
        spider = network_area(SpidergonTopology(n), num_vcs=1)
        assert ring < spider <= mesh

    def test_deadlock_vcs_shift_the_ordering(self):
        # With each topology's actual provisioning (2 VCs on the
        # ring-based schemes, 1 on the mesh) the mesh becomes
        # cheaper than the 2-VC ring — buffer storage dominates.
        # This is the quantified form of the paper's area trade-off.
        n = 16
        ring = network_area(RingTopology(n), num_vcs=2)
        spider = network_area(SpidergonTopology(n), num_vcs=2)
        mesh = network_area(MeshTopology(4, 4), num_vcs=1)
        assert mesh < ring < spider

    def test_scales_linearly_for_symmetric_topologies(self):
        small = network_area(SpidergonTopology(8), num_vcs=2)
        large = network_area(SpidergonTopology(16), num_vcs=2)
        assert large == pytest.approx(2 * small)
