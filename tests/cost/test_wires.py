"""Tests for the wire-length model."""

import math

import pytest

from repro.cost import link_length, total_wire_length
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    TorusTopology,
)
from repro.topology.base import Link


class TestLinkLength:
    def test_ring_links_unit(self):
        topology = RingTopology(12)
        assert all(
            link_length(topology, link) == 1.0
            for link in topology.links()
        )

    def test_mesh_links_unit(self):
        topology = MeshTopology(3, 4)
        assert all(
            link_length(topology, link) == 1.0
            for link in topology.links()
        )

    def test_spidergon_across_crosses_die(self):
        topology = SpidergonTopology(16)
        across = Link(0, 8, "across")
        assert link_length(topology, across) == pytest.approx(
            16 / math.pi
        )
        ring_link = Link(0, 1, "cw")
        assert link_length(topology, ring_link) == 1.0

    def test_folded_torus_links_constant(self):
        topology = TorusTopology(4, 4)
        lengths = {
            link_length(topology, link) for link in topology.links()
        }
        assert lengths == {2.0}


class TestTotalWireLength:
    def test_ring_total(self):
        assert total_wire_length(RingTopology(10)) == 20.0

    def test_mesh_total_matches_link_count(self):
        topology = MeshTopology(4, 6)
        assert total_wire_length(topology) == topology.num_links

    def test_spidergon_more_wire_than_ring(self):
        n = 16
        ring = total_wire_length(RingTopology(n))
        spider = total_wire_length(SpidergonTopology(n))
        # 2N unit ring links + N across links of length N/pi.
        assert spider == pytest.approx(2 * n + n * n / math.pi)
        assert spider > ring

    def test_wire_ordering(self):
        # Per unit of bisection capacity the mesh spends its wire in
        # short hops; the Spidergon concentrates it in chords.  At
        # N=16 the Spidergon's total wire exceeds the mesh's.
        spider = total_wire_length(SpidergonTopology(16))
        mesh = total_wire_length(MeshTopology(4, 4))
        assert spider > mesh


class TestCirculantWireModel:
    def test_chord_is_circle_chord(self):
        from repro.topology import CirculantTopology
        from repro.topology.circulant import CHORD_CLOCKWISE

        topology = CirculantTopology(16, 4)
        chord = Link(0, 4, CHORD_CLOCKWISE)
        assert link_length(topology, chord) == pytest.approx(
            (16 / math.pi) * math.sin(math.pi * 4 / 16)
        )
        ring_link = Link(0, 1, "cw")
        assert link_length(topology, ring_link) == 1.0

    def test_diametral_chord_matches_spidergon_across(self):
        from repro.topology import CirculantTopology

        circulant = CirculantTopology(16, 8)
        spidergon = SpidergonTopology(16)
        across = Link(0, 8, "across")
        assert link_length(circulant, across) == pytest.approx(
            link_length(spidergon, across)
        )
        assert total_wire_length(circulant) == pytest.approx(
            total_wire_length(spidergon)
        )

    def test_chord_length_monotone_in_span(self):
        from repro.topology import CirculantTopology
        from repro.topology.circulant import CHORD_CLOCKWISE

        n = 32
        lengths = [
            link_length(
                CirculantTopology(n, s),
                Link(0, s, CHORD_CLOCKWISE),
            )
            for s in range(2, n // 2)
        ]
        assert lengths == sorted(lengths)
        # sin is bounded: no chord is longer than the diameter.
        assert all(length <= n / math.pi for length in lengths)
