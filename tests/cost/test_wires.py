"""Tests for the wire-length model."""

import math

import pytest

from repro.cost import link_length, total_wire_length
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    TorusTopology,
)
from repro.topology.base import Link


class TestLinkLength:
    def test_ring_links_unit(self):
        topology = RingTopology(12)
        assert all(
            link_length(topology, link) == 1.0
            for link in topology.links()
        )

    def test_mesh_links_unit(self):
        topology = MeshTopology(3, 4)
        assert all(
            link_length(topology, link) == 1.0
            for link in topology.links()
        )

    def test_spidergon_across_crosses_die(self):
        topology = SpidergonTopology(16)
        across = Link(0, 8, "across")
        assert link_length(topology, across) == pytest.approx(
            16 / math.pi
        )
        ring_link = Link(0, 1, "cw")
        assert link_length(topology, ring_link) == 1.0

    def test_folded_torus_links_constant(self):
        topology = TorusTopology(4, 4)
        lengths = {
            link_length(topology, link) for link in topology.links()
        }
        assert lengths == {2.0}


class TestTotalWireLength:
    def test_ring_total(self):
        assert total_wire_length(RingTopology(10)) == 20.0

    def test_mesh_total_matches_link_count(self):
        topology = MeshTopology(4, 6)
        assert total_wire_length(topology) == topology.num_links

    def test_spidergon_more_wire_than_ring(self):
        n = 16
        ring = total_wire_length(RingTopology(n))
        spider = total_wire_length(SpidergonTopology(n))
        # 2N unit ring links + N across links of length N/pi.
        assert spider == pytest.approx(2 * n + n * n / math.pi)
        assert spider > ring

    def test_wire_ordering(self):
        # Per unit of bisection capacity the mesh spends its wire in
        # short hops; the Spidergon concentrates it in chords.  At
        # N=16 the Spidergon's total wire exceeds the mesh's.
        spider = total_wire_length(SpidergonTopology(16))
        mesh = total_wire_length(MeshTopology(4, 4))
        assert spider > mesh


class TestCirculantWireModel:
    def test_chord_is_circle_chord(self):
        from repro.topology import CirculantTopology
        from repro.topology.circulant import CHORD_CLOCKWISE

        topology = CirculantTopology(16, 4)
        chord = Link(0, 4, CHORD_CLOCKWISE)
        assert link_length(topology, chord) == pytest.approx(
            (16 / math.pi) * math.sin(math.pi * 4 / 16)
        )
        ring_link = Link(0, 1, "cw")
        assert link_length(topology, ring_link) == 1.0

    def test_diametral_chord_matches_spidergon_across(self):
        from repro.topology import CirculantTopology

        circulant = CirculantTopology(16, 8)
        spidergon = SpidergonTopology(16)
        across = Link(0, 8, "across")
        assert link_length(circulant, across) == pytest.approx(
            link_length(spidergon, across)
        )
        assert total_wire_length(circulant) == pytest.approx(
            total_wire_length(spidergon)
        )

    def test_chord_length_monotone_in_span(self):
        from repro.topology import CirculantTopology
        from repro.topology.circulant import CHORD_CLOCKWISE

        n = 32
        lengths = [
            link_length(
                CirculantTopology(n, s),
                Link(0, s, CHORD_CLOCKWISE),
            )
            for s in range(2, n // 2)
        ]
        assert lengths == sorted(lengths)
        # sin is bounded: no chord is longer than the diameter.
        assert all(length <= n / math.pi for length in lengths)


class TestTsvWireModel:
    def test_mesh3d_link_lengths(self):
        from repro.cost.wires import TSV_LINK_LENGTH
        from repro.topology import Mesh3DTopology
        from repro.topology.base import TSV

        topology = Mesh3DTopology(3, 3, 2)
        for link in topology.links():
            expected = TSV_LINK_LENGTH if link.kind == TSV else 1.0
            assert link_length(topology, link) == expected

    def test_torus3d_folds_planar_and_vertical_wraps(self):
        from repro.cost.wires import (
            FOLDED_TORUS_LINK_LENGTH,
            TSV_LINK_LENGTH,
        )
        from repro.topology import Torus3DTopology
        from repro.topology.base import TSV

        topology = Torus3DTopology(3, 3, 3)
        for link in topology.links():
            expected = (
                2 * TSV_LINK_LENGTH
                if link.kind == TSV
                else FOLDED_TORUS_LINK_LENGTH
            )
            assert link_length(topology, link) == expected

    def test_total_wire_length_closed_form(self):
        from repro.cost.wires import TSV_LINK_LENGTH
        from repro.topology import Mesh3DTopology

        topology = Mesh3DTopology(4, 4, 4)
        planar = 2 * (3 * 4 * 4) * 2  # x links + y links
        tsv = 2 * (3 * 4 * 4)
        assert total_wire_length(topology) == pytest.approx(
            planar + tsv * TSV_LINK_LENGTH
        )

    def test_stacking_spends_less_wire_than_planar(self):
        # Same 64 nodes: folding into layers replaces long planar
        # rows with near-free vertical hops.
        from repro.topology import Mesh3DTopology

        assert total_wire_length(
            Mesh3DTopology(4, 4, 4)
        ) < total_wire_length(MeshTopology(8, 8))


class TestWireArea:
    def test_equals_length_when_uniform(self):
        from repro.cost import total_wire_area

        for topology in (RingTopology(8), MeshTopology(3, 4)):
            assert total_wire_area(topology) == pytest.approx(
                total_wire_length(topology)
            )

    def test_narrow_tsv_discounts_vertical_wire(self):
        from repro.cost import total_wire_area
        from repro.cost.wires import TSV_LINK_LENGTH
        from repro.topology import Mesh3DTopology

        wide = Mesh3DTopology(3, 3, 3)
        narrow = Mesh3DTopology(3, 3, 3, tsv_width=0.25)
        tsv_wire = 2 * (2 * 3 * 3) * TSV_LINK_LENGTH
        assert total_wire_area(wide) == pytest.approx(
            total_wire_length(wide)
        )
        assert total_wire_area(narrow) == pytest.approx(
            total_wire_area(wide) - 0.75 * tsv_wire
        )
