"""Tests for the top-level CLI and package metadata."""

import subprocess
import sys

import repro
from repro.__main__ import main


class TestMain:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "DATE 2006" in out
        assert "fig10" in out

    def test_no_args_prints_info(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_figures_dispatch(self, capsys):
        assert main(["figures", "fig2"]) == 0
        assert "spidergon" in capsys.readouterr().out

    def test_ablations_dispatch(self, capsys):
        assert main(["ablations", "mesh-policy"]) == 0
        assert "irregular" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["bogus"]) == 2

    def test_campaign_dispatch(self, tmp_path, capsys):
        import json

        spec = {
            "name": "cli-smoke",
            "cycles": 600,
            "warmup": 100,
            "topologies": ["ring8"],
            "patterns": ["uniform"],
            "rates": [0.1],
            "source_queue_packets": 8,
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        csv_path = tmp_path / "out.csv"
        assert main(["campaign", str(spec_path), str(csv_path)]) == 0
        assert csv_path.exists()
        assert "1 runs executed" in capsys.readouterr().out

    def test_campaign_parallel_flags(self, tmp_path, capsys):
        import json

        spec = {
            "name": "cli-parallel",
            "cycles": 600,
            "warmup": 100,
            "topologies": ["ring8"],
            "patterns": ["uniform"],
            "rates": [0.05, 0.1],
            "source_queue_packets": 8,
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        serial_csv = tmp_path / "serial.csv"
        parallel_csv = tmp_path / "parallel.csv"
        assert main(
            ["campaign", str(spec_path), str(serial_csv), "--no-cache"]
        ) == 0
        assert main(
            [
                "campaign",
                str(spec_path),
                str(parallel_csv),
                "--workers",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "workers 2" in out
        serial = sorted(serial_csv.read_text().strip().splitlines())
        parallel = sorted(parallel_csv.read_text().strip().splitlines())
        assert serial == parallel
        assert (tmp_path / "cache").is_dir()
        assert not (tmp_path / ".repro-cache").exists()

    def test_topologies_dispatch(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "mesh3d" in out
        assert "torus3d4x4x4@tsv2" in out
        assert "faulty" in out

    def test_mesh3d_dispatch(self, capsys):
        assert main(
            [
                "mesh3d", "3",
                "--patterns", "uniform",
                "--tsv", "2",
                "--rates", "0.1",
                "--cycles", "400",
                "--warmup", "100",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "mesh3d3x3x3@tsv2" in out
        assert "torus3d3x3x3@tsv2" in out
        assert "uniform traffic" in out

    def test_mesh3d_usage_errors(self, capsys):
        # Side below the torus3d minimum fails fast...
        assert main(["mesh3d", "2"]) == 2
        assert "side >= 3" in capsys.readouterr().out
        # ...and malformed sweeps are caught before any run.
        assert main(["mesh3d", "--tsv", "abc"]) == 2

    def test_campaign_usage_error(self, capsys):
        assert main(["campaign", "only-one-arg"]) == 2

    def test_routings_dispatch(self, capsys):
        assert main(["routings"]) == 0
        out = capsys.readouterr().out
        assert "adaptive" in out
        assert "mesh4x4:adaptive" in out

    def test_drain_smoke(self, capsys):
        assert main(["drain", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "without drain: degraded=True delivered=0/24" in out
        assert "with drain:    degraded=False delivered=24/24" in out

    def test_drain_usage_error(self, capsys):
        assert main(["drain", "--rates", "abc"]) == 2

    def test_trace_accepts_routing_suffix(self, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        assert main(
            [
                "trace",
                "ring8:adaptive",
                "uniform",
                "0.05",
                "--cycles",
                "400",
                "--out",
                str(out_path),
            ]
        ) == 0
        assert out_path.exists()

    def test_chaos_accepts_routing_suffix(self, capsys):
        assert main(
            [
                "chaos",
                "mesh4x4:adaptive",
                "uniform",
                "0.05",
                "--cycles",
                "1200",
                "--warmup",
                "200",
                "--fail",
                "5:6@400",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "degraded=False" in out

    def test_module_invocation(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "repro" in completed.stdout


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_api_importable(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert getattr(repro, name) is not None

    def test_star_import_clean(self):
        namespace = {}
        exec("from repro import *", namespace)
        assert "Network" in namespace
        assert "SpidergonTopology" in namespace
