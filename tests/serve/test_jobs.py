"""Tests for the asyncio job layer: dedupe tiers and single-flight.

The pool-backed tests spawn real worker processes, so they carry the
``chaos`` marker like the executor's pool tests.
"""

import asyncio
import json

import pytest

from repro.experiments.parallel import (
    FailedResult,
    execute_points,
    point_key,
)
from repro.experiments.runner import SimulationSettings, SweepPoint
from repro.noc.config import NocConfig
from repro.resilience.chaos import ENV_VAR
from repro.serve.jobs import JobManager
from repro.serve.store import ResultStore


def quick_point(rate=0.05, seed=2, topology="ring8"):
    return SweepPoint(
        topology=topology,
        pattern="uniform",
        rate=rate,
        settings=SimulationSettings(
            cycles=400,
            warmup=100,
            config=NocConfig(source_queue_packets=8),
            seed=seed,
        ),
    )


def make_jobs(tmp_path, **kwargs):
    return JobManager(ResultStore(tmp_path / "store"), **kwargs)


class TestValidation:
    def test_rejects_bad_workers(self, tmp_path):
        with pytest.raises(ValueError):
            make_jobs(tmp_path, workers=0)

    def test_rejects_bad_timeout(self, tmp_path):
        with pytest.raises(ValueError):
            make_jobs(tmp_path, timeout=0)

    def test_rejects_bad_retries(self, tmp_path):
        with pytest.raises(ValueError):
            make_jobs(tmp_path, retries=-1)


@pytest.mark.chaos
class TestDedupeTiers:
    def test_store_hit_skips_simulation(self, tmp_path):
        jobs = make_jobs(tmp_path)
        point = quick_point()
        (expected,), _ = execute_points([point])
        jobs.store.put(point_key(point), expected)
        try:
            result, source = asyncio.run(jobs.result_for(point))
        finally:
            jobs.close()
        assert source == "store"
        assert result == expected
        assert jobs.stats.store_hits == 1
        assert jobs.stats.simulated == 0

    def test_simulation_matches_batch_executor(self, tmp_path):
        """A served point is byte-identical to the same point run by
        execute_points — the dedupe key really is content-addressed."""
        jobs = make_jobs(tmp_path)
        point = quick_point()
        (expected,), _ = execute_points([point])
        try:
            result, source = asyncio.run(jobs.result_for(point))
        finally:
            jobs.close()
        assert source == "simulated"
        assert result == expected
        assert jobs.store.get(point_key(point)) == expected

    def test_concurrent_requests_coalesce_to_one_simulation(
        self, tmp_path
    ):
        jobs = make_jobs(tmp_path)
        point = quick_point()

        async def submit_many():
            return await asyncio.gather(
                *(jobs.result_for(point) for _ in range(5))
            )

        try:
            outcomes = asyncio.run(submit_many())
        finally:
            jobs.close()
        sources = sorted(source for _, source in outcomes)
        assert sources.count("simulated") == 1
        assert sources.count("coalesced") == 4
        assert jobs.stats.simulated == 1
        assert jobs.stats.coalesced == 4
        results = {
            json.dumps(result.to_dict(), sort_keys=True)
            for result, _ in outcomes
        }
        assert len(results) == 1  # everyone got the same payload

    def test_sequential_requests_hit_the_store(self, tmp_path):
        jobs = make_jobs(tmp_path)
        point = quick_point()

        async def twice():
            first = await jobs.result_for(point)
            second = await jobs.result_for(point)
            return first, second

        try:
            (r1, s1), (r2, s2) = asyncio.run(twice())
        finally:
            jobs.close()
        assert (s1, s2) == ("simulated", "store")
        assert r1 == r2
        assert jobs.stats.simulated == 1

    def test_distinct_points_each_simulate(self, tmp_path):
        jobs = make_jobs(tmp_path, workers=2)
        points = [quick_point(0.05), quick_point(0.1)]

        async def both():
            return await asyncio.gather(
                *(jobs.result_for(p) for p in points)
            )

        try:
            outcomes = asyncio.run(both())
        finally:
            jobs.close()
        assert [source for _, source in outcomes] == [
            "simulated",
            "simulated",
        ]
        assert jobs.stats.simulated == 2


@pytest.mark.chaos
class TestFailures:
    def test_model_error_becomes_failed_result_and_is_not_stored(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            ENV_VAR, json.dumps({"match": ":0.05", "mode": "error"})
        )
        jobs = make_jobs(tmp_path)
        point = quick_point()
        try:
            result, source = asyncio.run(jobs.result_for(point))
        finally:
            jobs.close()
        assert source == "simulated"
        assert isinstance(result, FailedResult)
        assert result.error == "error"
        assert jobs.stats.failed == 1
        assert len(jobs.store) == 0  # failures never persist
        assert jobs.inflight_keys == set()

    def test_failure_resolves_coalesced_waiters(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            ENV_VAR, json.dumps({"match": ":0.05", "mode": "error"})
        )
        jobs = make_jobs(tmp_path)
        point = quick_point()

        async def both():
            return await asyncio.gather(
                jobs.result_for(point), jobs.result_for(point)
            )

        try:
            outcomes = asyncio.run(both())
        finally:
            jobs.close()
        assert all(
            isinstance(result, FailedResult)
            for result, _ in outcomes
        )
        assert jobs.stats.simulated == 1
        assert jobs.stats.failed == 2  # owner + coalesced waiter

    def test_retry_recovers_with_once_dir(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            ENV_VAR,
            json.dumps(
                {
                    "match": ":0.05",
                    "mode": "error",
                    "once_dir": str(tmp_path / "once"),
                }
            ),
        )
        (tmp_path / "once").mkdir()
        jobs = make_jobs(tmp_path, retries=1)
        point = quick_point()
        try:
            result, source = asyncio.run(jobs.result_for(point))
        finally:
            jobs.close()
        assert source == "simulated"
        assert result.ok
        assert jobs.stats.failed == 0

    def test_crash_rebuilds_pool_and_reports_crash(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            ENV_VAR, json.dumps({"match": ":0.05", "mode": "crash"})
        )
        jobs = make_jobs(tmp_path)
        point = quick_point()

        async def crash_then_recover():
            failed, _ = await jobs.result_for(point)
            monkeypatch.delenv(ENV_VAR)
            healthy, source = await jobs.result_for(point)
            return failed, healthy, source

        try:
            failed, healthy, source = asyncio.run(
                crash_then_recover()
            )
        finally:
            jobs.close()
        assert isinstance(failed, FailedResult)
        assert failed.error == "crash"
        # The replacement pool serves the next request normally.
        assert healthy.ok and source == "simulated"
