"""End-to-end tests for the campaign server over real HTTP.

Each harness spins a :class:`BackgroundServer` (own thread, own event
loop, real worker processes) on an ephemeral port and talks to it
with the stdlib :class:`ServeClient` — the exact production path of
``python -m repro serve`` / ``python -m repro submit``.  The dedupe
acceptance test at the bottom is the PR's contract: identical
campaign JSON submitted concurrently and sequentially costs exactly
one simulation per unique point.
"""

import json
import threading

import pytest

from repro.experiments.campaign import campaign_points
from repro.experiments.parallel import (
    CampaignManifest,
    point_key,
)
from repro.serve.client import ServeClient, ServerError
from repro.serve.jobs import JobManager
from repro.serve.server import BackgroundServer, CampaignServer
from repro.serve.store import ResultStore


def small_spec(**overrides):
    spec = {
        "name": "serve-smoke",
        "cycles": 400,
        "warmup": 100,
        "seed": 4,
        "source_queue_packets": 8,
        "topologies": ["ring8"],
        "patterns": ["uniform"],
        "rates": [0.05, 0.1],
    }
    spec.update(overrides)
    return spec


@pytest.fixture
def served(tmp_path):
    """A running server + client; yields (client, jobs)."""
    jobs = JobManager(ResultStore(tmp_path / "store"), workers=2)
    server = CampaignServer(jobs, port=0)
    with BackgroundServer(server) as background:
        client = ServeClient(port=background.port)
        client.wait_until_ready(10.0)
        yield client, jobs


@pytest.mark.chaos
class TestEndpoints:
    def test_health_and_stats(self, served):
        client, jobs = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        stats = client.stats()
        assert stats["submissions"] == 0
        assert stats["stored_results"] == 0

    def test_unknown_route_is_404(self, served):
        client, _ = served
        with pytest.raises(ServerError) as excinfo:
            client._get_json("/nope")
        assert excinfo.value.status == 404

    def test_invalid_spec_rejected_before_simulation(self, served):
        client, jobs = served
        with pytest.raises(ServerError) as excinfo:
            list(client.submit(small_spec(topologies=["butterfly9"])))
        assert excinfo.value.status == 400
        assert "butterfly9" in excinfo.value.detail
        assert jobs.stats.simulated == 0

    def test_invalid_json_body_rejected(self, served):
        client, _ = served
        import http.client

        connection = http.client.HTTPConnection(
            client.host, client.port, timeout=30
        )
        try:
            connection.request("POST", "/campaign", body=b"{not json")
            response = connection.getresponse()
            assert response.status == 400
        finally:
            connection.close()

    def test_result_endpoint_serves_stored_point(self, served):
        client, _ = served
        entries, _ = client.submit_campaign(small_spec())
        payload = client.result(entries[0]["key"])
        assert payload is not None
        assert payload["packets_generated"] > 0
        assert client.result("0" * 64) is None


@pytest.mark.chaos
class TestCampaignStream:
    def test_entries_are_manifest_jsonl(self, served, tmp_path):
        """The streamed per-point lines load as a campaign manifest."""
        client, _ = served
        spec = small_spec()
        entries, summary = client.submit_campaign(spec)
        stream_path = tmp_path / "stream.jsonl"
        with stream_path.open("w") as handle:
            for entry in entries:
                handle.write(json.dumps(entry) + "\n")
        manifest = CampaignManifest(stream_path)
        expected_keys = {
            point_key(point) for point in campaign_points(spec)
        }
        assert manifest.completed_keys() == expected_keys
        assert manifest.failures() == []
        for entry in entries:
            assert entry["status"] == "ok"
            assert entry["source"] == "simulated"
            assert entry["cached"] is False
        assert summary == {
            "type": "summary",
            "points": 2,
            "ok": 2,
            "failed": 0,
            "store_hits": 0,
            "coalesced": 0,
            "simulated": 2,
        }

    def test_served_results_match_batch_execution(
        self, served, tmp_path
    ):
        """Server-side simulation is the same simulation: the stored
        payload equals a local execute_points run of the point."""
        from repro.experiments.parallel import execute_points

        client, jobs = served
        spec = small_spec(rates=[0.05])
        client.submit_campaign(spec)
        (point,) = campaign_points(spec)
        (local,), _ = execute_points([point])
        assert jobs.store.get(point_key(point)) == local


@pytest.mark.chaos
class TestDedupe:
    """Acceptance criterion: N identical submissions, one simulation
    per unique point."""

    def test_sequential_resubmission_is_all_store_hits(self, served):
        client, jobs = served
        spec = small_spec()
        _, first = client.submit_campaign(spec)
        _, second = client.submit_campaign(spec)
        assert first["simulated"] == 2
        assert second == {
            "type": "summary",
            "points": 2,
            "ok": 2,
            "failed": 0,
            "store_hits": 2,
            "coalesced": 0,
            "simulated": 0,
        }
        assert jobs.stats.simulated == 2  # not 4

    def test_concurrent_and_sequential_submissions_cost_one_run_each(
        self, served
    ):
        client, jobs = served
        spec = small_spec()
        unique_points = len(campaign_points(spec))
        outcomes: list[tuple[list, dict]] = []
        failures: list[BaseException] = []

        def submit():
            try:
                outcomes.append(client.submit_campaign(spec))
            except BaseException as exc:  # surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=submit) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not failures
        assert len(outcomes) == 3
        # ... then one more, sequentially, after everything settled.
        entries, summary = client.submit_campaign(spec)

        # Exactly one simulation per unique point, ever.
        assert jobs.stats.simulated == unique_points
        # The late submission is served entirely from the store.
        assert summary["store_hits"] == unique_points
        assert summary["simulated"] == 0
        # Every submission saw every point succeed, and the dedupe
        # tiers account for every resolution.
        for got_entries, got_summary in outcomes + [
            (entries, summary)
        ]:
            assert got_summary["points"] == unique_points
            assert got_summary["ok"] == unique_points
            assert (
                got_summary["store_hits"]
                + got_summary["coalesced"]
                + got_summary["simulated"]
            ) == unique_points
            # All submissions streamed parseable manifest entries
            # naming the same content-addressed keys.
            assert {e["key"] for e in got_entries} == {
                point_key(p) for p in campaign_points(spec)
            }
        # Across the concurrent trio: 2 simulations happened once
        # each; everything else coalesced or hit the store.
        total_simulated = sum(
            s["simulated"] for _, s in outcomes
        )
        assert total_simulated == unique_points
