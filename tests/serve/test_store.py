"""Tests for the content-addressed result store."""

from repro.experiments.parallel import (
    ResultCache,
    execute_points,
    point_key,
)
from repro.experiments.runner import SimulationSettings, SweepPoint
from repro.noc.config import NocConfig
from repro.serve.store import ResultStore


def quick_point(rate=0.05, seed=2):
    return SweepPoint(
        topology="ring8",
        pattern="uniform",
        rate=rate,
        settings=SimulationSettings(
            cycles=400,
            warmup=100,
            config=NocConfig(source_queue_packets=8),
            seed=seed,
        ),
    )


def run_point(point):
    (result,), _ = execute_points([point])
    return result


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        point = quick_point()
        result = run_point(point)
        key = point_key(point)
        assert store.get(key) is None
        assert key not in store
        store.put(key, result)
        assert store.get(key) == result
        assert key in store
        assert store.keys() == {key}
        assert len(store) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        point = quick_point()
        store.put(point_key(point), run_point(point))
        store.path_for(point_key(point)).write_text("{not json")
        assert store.get(point_key(point)) is None

    def test_get_dict_serves_raw_payload(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        point = quick_point()
        result = run_point(point)
        store.put(point_key(point), result)
        payload = store.get_dict(point_key(point))
        assert payload == result.to_dict()
        assert store.get_dict("no-such-key") is None

    def test_missing_directory_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "never-created")
        assert store.keys() == set()
        assert len(store) == 0
        assert store.get("anything") is None

    def test_overwrite_replaces_entry(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        point = quick_point()
        result = run_point(point)
        store.put(point_key(point), result)
        store.put(point_key(point), result)
        assert len(store) == 1
        assert store.get(point_key(point)) == result


class TestResultCacheCompatibility:
    """The sweep cache and the serve store share one on-disk layout."""

    def test_cache_writes_are_store_readable(self, tmp_path):
        cache = ResultCache(tmp_path / "shared")
        point = quick_point()
        result = run_point(point)
        cache.put(point, result)
        store = ResultStore(tmp_path / "shared")
        assert store.get(point_key(point)) == result

    def test_store_writes_are_cache_readable(self, tmp_path):
        store = ResultStore(tmp_path / "shared")
        point = quick_point()
        result = run_point(point)
        store.put(point_key(point), result)
        cache = ResultCache(tmp_path / "shared")
        assert cache.get(point) == result

    def test_cache_exposes_its_store(self, tmp_path):
        cache = ResultCache(tmp_path / "shared")
        assert isinstance(cache.store, ResultStore)
        assert cache.directory == tmp_path / "shared"
