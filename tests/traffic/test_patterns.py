"""Unit tests for spatial traffic patterns."""

import pytest

from repro.sim.rng import RngStream
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    TopologyError,
)
from repro.traffic import (
    BitComplementTraffic,
    BitReverseTraffic,
    HotspotTraffic,
    NearestNeighborTraffic,
    ShuffleTraffic,
    TornadoTraffic,
    TransposeTraffic,
    UniformTraffic,
    double_hotspot_targets,
)


def rng():
    return RngStream(0, "test")


class TestUniform:
    def test_never_targets_self(self):
        pattern = UniformTraffic(RingTopology(8))
        r = rng()
        assert all(
            pattern.destination_for(src, r) != src
            for src in range(8)
            for _ in range(50)
        )

    def test_covers_all_destinations(self):
        pattern = UniformTraffic(RingTopology(6))
        r = rng()
        seen = {pattern.destination_for(0, r) for _ in range(500)}
        assert seen == {1, 2, 3, 4, 5}

    def test_roughly_uniform(self):
        pattern = UniformTraffic(RingTopology(5))
        r = rng()
        counts = {d: 0 for d in range(1, 5)}
        for _ in range(4000):
            counts[pattern.destination_for(0, r)] += 1
        for count in counts.values():
            assert 800 < count < 1200

    def test_all_nodes_are_sources(self):
        pattern = UniformTraffic(RingTopology(7))
        assert pattern.sources() == list(range(7))


class TestHotspot:
    def test_single_target(self):
        pattern = HotspotTraffic(RingTopology(8), [3])
        r = rng()
        assert all(
            pattern.destination_for(src, r) == 3
            for src in range(8)
            if src != 3
        )

    def test_targets_excluded_from_sources(self):
        pattern = HotspotTraffic(RingTopology(8), [3, 5])
        assert pattern.sources() == [0, 1, 2, 4, 6, 7]

    def test_double_target_covers_both(self):
        pattern = HotspotTraffic(RingTopology(8), [2, 6])
        r = rng()
        seen = {pattern.destination_for(0, r) for _ in range(200)}
        assert seen == {2, 6}

    def test_rejects_empty_targets(self):
        with pytest.raises(ValueError):
            HotspotTraffic(RingTopology(8), [])

    def test_rejects_duplicate_targets(self):
        with pytest.raises(ValueError):
            HotspotTraffic(RingTopology(8), [1, 1])

    def test_rejects_out_of_range_target(self):
        with pytest.raises(TopologyError):
            HotspotTraffic(RingTopology(8), [8])

    def test_rejects_all_nodes_as_targets(self):
        with pytest.raises(ValueError):
            HotspotTraffic(RingTopology(4), [0, 1, 2, 3])

    def test_name_lists_targets(self):
        assert HotspotTraffic(RingTopology(8), [5, 2]).name == (
            "hotspot[2,5]"
        )


class TestDoubleHotspotPlacements:
    def test_mesh_scenario_a_opposite_corners(self):
        mesh = MeshTopology(4, 6)
        assert double_hotspot_targets(mesh, "A") == [0, 23]

    def test_mesh_scenario_b_corner_and_middle(self):
        # Paper: node 14 (1-based) = node 13 in the 4x6 mesh.
        mesh = MeshTopology(4, 6)
        targets = double_hotspot_targets(mesh, "B")
        assert targets[0] == 0
        assert targets[1] == mesh.center_node()

    def test_mesh_scenario_c_middle_pair(self):
        mesh = MeshTopology(4, 6)
        targets = double_hotspot_targets(mesh, "C")
        assert len(targets) == 2
        rows = [mesh.coordinates(t)[0] for t in targets]
        assert rows[0] == rows[1]  # adjacent middle nodes share a row

    def test_mesh_2x4_central_placement(self):
        # Paper (1-based): B uses nodes 1 and 5, C nodes 5 and 6 — a
        # central cell plus a neighbor.  Our grid orientation differs
        # (rows x cols vs the paper's cols x rows), so the exact id
        # differs but the placement must still be a central cell.
        mesh = MeshTopology(2, 4)
        central = {mesh.node_at(r, c) for r in (0, 1) for c in (1, 2)}
        b_targets = double_hotspot_targets(mesh, "B")
        assert b_targets[0] == 0
        assert b_targets[1] in central
        c_targets = double_hotspot_targets(mesh, "C")
        assert c_targets[0] in central

    def test_ring_scenario_a_opposition(self):
        assert double_hotspot_targets(RingTopology(16), "A") == [0, 8]

    def test_ring_scenario_b_north_west(self):
        assert double_hotspot_targets(RingTopology(16), "B") == [0, 12]

    def test_spidergon_placements(self):
        sp = SpidergonTopology(8)
        assert double_hotspot_targets(sp, "A") == [0, 4]
        assert double_hotspot_targets(sp, "B") == [0, 6]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            double_hotspot_targets(RingTopology(8), "Z")
        with pytest.raises(ValueError):
            double_hotspot_targets(RingTopology(8), "C")

    def test_lowercase_accepted(self):
        assert double_hotspot_targets(RingTopology(8), "a") == [0, 4]


class TestSyntheticPatterns:
    def test_bit_complement(self):
        pattern = BitComplementTraffic(RingTopology(8))
        assert pattern.destination_for(0, rng()) == 7
        assert pattern.destination_for(3, rng()) == 4

    def test_bit_complement_excludes_middle_of_odd(self):
        pattern = BitComplementTraffic(RingTopology(7))
        assert 3 not in pattern.sources()

    def test_tornado_offset(self):
        pattern = TornadoTraffic(RingTopology(16))
        assert pattern.destination_for(0, rng()) == 7
        assert pattern.destination_for(10, rng()) == 1

    def test_tornado_never_self(self):
        for n in (4, 5, 8, 13):
            pattern = TornadoTraffic(RingTopology(max(n, 3)))
            assert all(
                pattern.destination_for(s, rng()) != s
                for s in range(max(n, 3))
            )

    def test_transpose_square_mesh(self):
        mesh = MeshTopology(3, 3)
        pattern = TransposeTraffic(mesh)
        assert pattern.destination_for(mesh.node_at(0, 2), rng()) == (
            mesh.node_at(2, 0)
        )

    def test_transpose_excludes_diagonal(self):
        mesh = MeshTopology(3, 3)
        pattern = TransposeTraffic(mesh)
        diagonal = {mesh.node_at(i, i) for i in range(3)}
        assert not diagonal & set(pattern.sources())

    def test_transpose_rejects_non_square(self):
        with pytest.raises(TopologyError):
            TransposeTraffic(MeshTopology(2, 4))

    def test_transpose_rejects_non_mesh(self):
        with pytest.raises(TopologyError):
            TransposeTraffic(RingTopology(9))

    def test_nearest_neighbor_targets_adjacent(self):
        topology = SpidergonTopology(8)
        pattern = NearestNeighborTraffic(topology)
        r = rng()
        for src in range(8):
            for _ in range(20):
                dst = pattern.destination_for(src, r)
                assert dst in topology.neighbors(src)


class TestBitPermutationPatterns:
    def test_shuffle_rotates_bits_left(self):
        pattern = ShuffleTraffic(RingTopology(8))
        # 3 bits: 0b011 -> 0b110, 0b110 -> 0b101, 0b100 -> 0b001
        assert pattern.destination_for(0b011, rng()) == 0b110
        assert pattern.destination_for(0b110, rng()) == 0b101
        assert pattern.destination_for(0b100, rng()) == 0b001

    def test_shuffle_is_a_permutation(self):
        for n in (4, 8, 16, 32, 64):
            pattern = ShuffleTraffic(RingTopology(n))
            targets = [
                pattern.destination_for(s, rng()) for s in range(n)
            ]
            assert sorted(targets) == list(range(n))

    def test_shuffle_excludes_fixed_points(self):
        # All-zeros and all-ones addresses map to themselves.
        pattern = ShuffleTraffic(RingTopology(16))
        sources = pattern.sources()
        assert 0 not in sources
        assert 15 not in sources
        assert all(
            pattern.destination_for(s, rng()) != s for s in sources
        )

    def test_bit_reverse_reverses_bits(self):
        pattern = BitReverseTraffic(RingTopology(16))
        # 4 bits: 0b0001 -> 0b1000, 0b0011 -> 0b1100
        assert pattern.destination_for(0b0001, rng()) == 0b1000
        assert pattern.destination_for(0b0011, rng()) == 0b1100

    def test_bit_reverse_is_an_involution(self):
        for n in (4, 8, 16, 64):
            pattern = BitReverseTraffic(RingTopology(n))
            for src in range(n):
                dst = pattern.destination_for(src, rng())
                assert pattern.destination_for(dst, rng()) == src

    def test_bit_reverse_excludes_palindromes(self):
        pattern = BitReverseTraffic(RingTopology(16))
        sources = pattern.sources()
        # 4-bit palindromes: 0000, 0110, 1001, 1111
        assert set(range(16)) - set(sources) == {0, 0b0110, 0b1001, 0b1111}

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 9, 12, 15])
    def test_power_of_two_guard(self, n):
        with pytest.raises(ValueError, match="power-of-two"):
            ShuffleTraffic(RingTopology(n))
        with pytest.raises(ValueError, match="power-of-two"):
            BitReverseTraffic(RingTopology(n))

    def test_guard_names_the_pattern_and_size(self):
        with pytest.raises(ValueError, match="shuffle.*12"):
            ShuffleTraffic(RingTopology(12))
        with pytest.raises(ValueError, match="bit-reverse.*12"):
            BitReverseTraffic(RingTopology(12))

    def test_names(self):
        assert ShuffleTraffic(RingTopology(8)).name == "shuffle"
        assert BitReverseTraffic(RingTopology(8)).name == "bit-reverse"


class TestTranspose3D:
    def _pattern(self, side=3, torus=False):
        from repro.topology import Mesh3DTopology, Torus3DTopology
        from repro.traffic import Transpose3DTraffic

        cls = Torus3DTopology if torus else Mesh3DTopology
        return Transpose3DTraffic(cls(side, side, side))

    def test_rotates_coordinates(self):
        pattern = self._pattern(side=4)
        grid = pattern.topology
        src = grid.node_at(1, 2, 3)
        assert pattern.destination_for(src, rng()) == grid.node_at(
            2, 3, 1
        )

    def test_rotation_has_period_three(self):
        pattern = self._pattern(side=3)
        r = rng()
        for src in pattern.sources():
            node = src
            for _ in range(3):
                node = pattern.destination_for(node, r)
            assert node == src

    def test_diagonal_nodes_excluded_from_sources(self):
        pattern = self._pattern(side=3)
        grid = pattern.topology
        diagonal = {grid.node_at(i, i, i) for i in range(3)}
        sources = set(pattern.sources())
        assert sources == set(range(27)) - diagonal

    def test_works_on_torus(self):
        pattern = self._pattern(side=3, torus=True)
        assert len(pattern.sources()) == 24

    def test_rejects_non_cubic_grid(self):
        from repro.topology import Mesh3DTopology
        from repro.traffic import Transpose3DTraffic

        with pytest.raises(TopologyError):
            Transpose3DTraffic(Mesh3DTopology(4, 4, 2))

    def test_rejects_planar_topology(self):
        from repro.traffic import Transpose3DTraffic

        with pytest.raises(TopologyError):
            Transpose3DTraffic(MeshTopology(4, 4))


class LegacyNearestNeighbor(NearestNeighborTraffic):
    """The pre-optimization implementation, kept as the equivalence
    oracle: re-sorts the full adjacency list on every packet."""

    def destination_for(self, src, rng):
        neighbors = sorted(self.topology.neighbors(src))
        return neighbors[rng.uniform_int(0, len(neighbors) - 1)]


class TestNearestNeighborPrecompute:
    """The construction-time neighbor tables must be draw-for-draw
    identical to sorting per packet (regression for the per-packet
    re-sort hot spot)."""

    def test_neighbor_tables_match_sorted_adjacency(self):
        for topology in (
            MeshTopology(3, 3),
            SpidergonTopology(8),
            RingTopology(7),
        ):
            pattern = NearestNeighborTraffic(topology)
            for node in range(topology.num_nodes):
                assert pattern._neighbors[node] == tuple(
                    sorted(topology.neighbors(node))
                )

    def test_destinations_identical_to_legacy(self):
        topology = MeshTopology(3, 4)
        fast = NearestNeighborTraffic(topology)
        legacy = LegacyNearestNeighbor(topology)
        fast_rng, legacy_rng = rng(), rng()
        draws = [
            (fast.destination_for(src, fast_rng),
             legacy.destination_for(src, legacy_rng))
            for _ in range(50)
            for src in range(topology.num_nodes)
        ]
        assert all(new == old for new, old in draws)

    def test_run_results_byte_identical_to_legacy(self):
        from repro.experiments.runner import (
            SimulationSettings,
            run_simulation,
        )
        from repro.noc.config import NocConfig

        settings = SimulationSettings(
            cycles=600,
            warmup=100,
            config=NocConfig(source_queue_packets=8),
            seed=5,
        )
        fast_topology = MeshTopology(3, 3)
        fast = run_simulation(
            fast_topology,
            NearestNeighborTraffic(fast_topology),
            0.2,
            settings,
        )
        legacy_topology = MeshTopology(3, 3)
        legacy = run_simulation(
            legacy_topology,
            LegacyNearestNeighbor(legacy_topology),
            0.2,
            settings,
        )
        assert fast == legacy
        assert fast.to_dict() == legacy.to_dict()
