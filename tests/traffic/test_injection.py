"""Unit tests for injection processes and the traffic spec."""

import pytest

from repro.sim.rng import RngStream
from repro.topology import RingTopology
from repro.traffic import (
    BernoulliInjection,
    PeriodicInjection,
    PoissonInjection,
    TrafficSpec,
    UniformTraffic,
)


def rng():
    return RngStream(1, "inj")


class TestPoisson:
    def test_mean_matches(self):
        process = PoissonInjection()
        r = rng()
        draws = [process.next_interarrival(30.0, r) for _ in range(20_000)]
        assert 29.0 < sum(draws) / len(draws) < 31.0

    def test_draws_positive(self):
        process = PoissonInjection()
        r = rng()
        assert all(
            process.next_interarrival(5.0, r) > 0 for _ in range(100)
        )


class TestPeriodic:
    def test_constant(self):
        process = PeriodicInjection()
        r = rng()
        assert [process.next_interarrival(12.5, r) for _ in range(5)] == [
            12.5
        ] * 5

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            PeriodicInjection().next_interarrival(0, rng())


class TestBernoulli:
    def test_mean_matches(self):
        process = BernoulliInjection()
        r = rng()
        draws = [process.next_interarrival(20.0, r) for _ in range(20_000)]
        assert 19.0 < sum(draws) / len(draws) < 21.0

    def test_draws_are_positive_integers(self):
        process = BernoulliInjection()
        r = rng()
        for _ in range(200)        :
            draw = process.next_interarrival(7.0, r)
            assert draw >= 1 and draw == int(draw)

    def test_rejects_sub_cycle_mean(self):
        with pytest.raises(ValueError):
            BernoulliInjection().next_interarrival(0.5, rng())


class TestTrafficSpec:
    def test_mean_interarrival(self):
        spec = TrafficSpec(UniformTraffic(RingTopology(8)), 0.3)
        assert spec.mean_interarrival(6) == pytest.approx(20.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            TrafficSpec(UniformTraffic(RingTopology(8)), -0.1)

    def test_zero_rate_has_no_interarrival(self):
        spec = TrafficSpec(UniformTraffic(RingTopology(8)), 0.0)
        with pytest.raises(ValueError):
            spec.mean_interarrival(6)

    def test_default_process_is_poisson(self):
        spec = TrafficSpec(UniformTraffic(RingTopology(8)), 0.1)
        assert isinstance(spec.process, PoissonInjection)
