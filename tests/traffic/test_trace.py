"""Tests for trace recording, serialisation and replay."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.topology import RingTopology, SpidergonTopology
from repro.traffic import UniformTraffic
from repro.traffic.trace import Trace, TraceEntry, record_trace


class TestTraceContainer:
    def test_entries_sorted_by_time(self):
        trace = Trace(
            [TraceEntry(5, 0, 1), TraceEntry(2, 1, 0), TraceEntry(9, 0, 2)]
        )
        assert [e.time for e in trace] == [2, 5, 9]

    def test_horizon(self):
        assert Trace([TraceEntry(7, 0, 1)]).horizon == 7
        assert Trace([]).horizon == 0

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Trace([TraceEntry(-1, 0, 1)])

    def test_rejects_self_addressed(self):
        with pytest.raises(ValueError):
            Trace([TraceEntry(0, 3, 3)])

    def test_validate_for_topology(self):
        trace = Trace([TraceEntry(0, 0, 9)])
        with pytest.raises(ValueError):
            trace.validate_for(RingTopology(8))
        trace.validate_for(RingTopology(10))


class TestCsvRoundTrip:
    def test_round_trip(self):
        trace = Trace(
            [TraceEntry(1, 0, 2), TraceEntry(3, 2, 1), TraceEntry(3, 1, 0)]
        )
        assert Trace.from_csv(trace.to_csv()).entries == trace.entries

    def test_header_optional(self):
        parsed = Trace.from_csv("4,1,2\n")
        assert parsed.entries == [TraceEntry(4, 1, 2)]

    def test_blank_lines_skipped(self):
        parsed = Trace.from_csv("time,src,dst\n\n1,0,2\n\n")
        assert len(parsed) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            Trace.from_csv("1,2\n")


class TestRecordTrace:
    def test_rate_matches(self):
        topology = RingTopology(8)
        trace = record_trace(
            UniformTraffic(topology), 0.12, 6, cycles=10_000, seed=4
        )
        expected = 8 * 0.12 / 6 * 10_000
        assert expected * 0.85 < len(trace) < expected * 1.15

    def test_deterministic_per_seed(self):
        topology = RingTopology(8)
        a = record_trace(UniformTraffic(topology), 0.1, 6, 2_000, seed=4)
        b = record_trace(UniformTraffic(topology), 0.1, 6, 2_000, seed=4)
        c = record_trace(UniformTraffic(topology), 0.1, 6, 2_000, seed=5)
        assert a.entries == b.entries
        assert a.entries != c.entries

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            record_trace(UniformTraffic(RingTopology(4)), 0.1, 6, 0)


class TestReplay:
    def test_exact_packet_count_delivered(self):
        topology = SpidergonTopology(8)
        trace = Trace(
            [
                TraceEntry(0, 0, 4),
                TraceEntry(10, 1, 5),
                TraceEntry(10, 2, 6),
                TraceEntry(25, 7, 3),
            ]
        )
        net = Network(topology, seed=1)
        driver = net.install_trace(trace)
        net.run(cycles=500)
        assert driver.packets_injected == 4
        assert driver.packets_dropped == 0
        assert net.stats.packets_consumed == 4
        assert net.stats.packets_generated == 4

    def test_replay_matches_live_pattern_population(self):
        # record_trace uses the same seed derivation as live sources:
        # replaying must deliver the same number of packets the live
        # run generates.
        topology = RingTopology(8)
        pattern = UniformTraffic(topology)
        trace = record_trace(pattern, 0.05, 6, cycles=2_000, seed=9)

        from repro.traffic import TrafficSpec

        live = Network(
            topology_live := RingTopology(8),
            traffic=TrafficSpec(UniformTraffic(topology_live), 0.05),
            seed=9,
        )
        live.run(cycles=2_000)
        assert live.stats.packets_generated == len(trace)

    def test_trace_respects_ip_memory(self):
        topology = RingTopology(4)
        entries = [TraceEntry(0, 0, 1) for _ in range(5)]
        # Same-cycle burst into a 2-packet IP memory: 3 drops.
        trace = Trace(entries)
        net = Network(
            topology, config=NocConfig(source_queue_packets=2), seed=1
        )
        driver = net.install_trace(trace)
        net.run(cycles=300)
        assert driver.packets_injected == 2
        assert driver.packets_dropped == 3
        assert net.stats.packets_rejected == 3

    def test_install_after_run_rejected(self):
        net = Network(RingTopology(4))
        net.run(cycles=10)
        with pytest.raises(ValueError):
            net.install_trace(Trace([]))

    def test_trace_for_wrong_topology_rejected(self):
        net = Network(RingTopology(4))
        with pytest.raises(ValueError):
            net.install_trace(Trace([TraceEntry(0, 0, 7)]))
