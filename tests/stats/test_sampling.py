"""Tests for occupancy sampling and batch means."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.stats import OccupancySampler, batch_means
from repro.topology import SpidergonTopology
from repro.traffic import TrafficSpec, UniformTraffic


def sampled_network(rate, period=50, cycles=2_000):
    topology = SpidergonTopology(8)
    net = Network(
        topology,
        config=NocConfig(source_queue_packets=16),
        traffic=TrafficSpec(UniformTraffic(topology), rate),
        seed=4,
    )
    sampler = OccupancySampler(net, period=period)
    net.run(cycles=cycles)
    return net, sampler


class TestOccupancySampler:
    def test_samples_on_period(self):
        _, sampler = sampled_network(0.2, period=100, cycles=1_000)
        times = [t for t, _ in sampler.series]
        assert times == list(range(100, 1_001, 100))

    def test_idle_network_samples_zero(self):
        net = Network(SpidergonTopology(8))
        sampler = OccupancySampler(net, period=100)
        net.run(cycles=500)
        assert all(v == 0 for _, v in sampler.series)

    def test_loaded_network_holds_flits(self):
        _, sampler = sampled_network(0.8)
        summary = sampler.summary(warmup=500)
        assert summary.mean_total_flits > 0
        assert summary.peak_total_flits >= summary.mean_total_flits
        assert summary.peak_router.startswith("router")

    def test_higher_load_higher_occupancy(self):
        _, light = sampled_network(0.05)
        _, heavy = sampled_network(0.8)
        assert (
            heavy.summary(500).mean_total_flits
            > light.summary(500).mean_total_flits
        )

    def test_summary_requires_samples(self):
        _, sampler = sampled_network(0.1, cycles=500)
        with pytest.raises(ValueError):
            sampler.summary(warmup=10_000)

    def test_rejects_bad_period(self):
        net = Network(SpidergonTopology(8))
        with pytest.raises(ValueError):
            OccupancySampler(net, period=0)


class TestBatchMeans:
    def test_matches_plain_mean(self):
        values = [float(i % 7) for i in range(200)]
        center, half = batch_means(values, num_batches=10)
        assert center == pytest.approx(sum(values) / len(values))
        assert half >= 0

    def test_wider_than_iid_for_correlated_series(self):
        # A strongly autocorrelated series (slow sine drift): the
        # batch-means CI must be wider than the naive i.i.d. CI.
        import math

        from repro.stats import confidence_interval

        values = [math.sin(i / 40) for i in range(400)]
        _, naive = confidence_interval(values)
        _, batched = batch_means(values, num_batches=10)
        assert batched > naive

    def test_requires_enough_data(self):
        with pytest.raises(ValueError):
            batch_means([1.0, 2.0, 3.0], num_batches=10)
        with pytest.raises(ValueError):
            batch_means(list(range(100)), num_batches=1)
