"""Degraded/truncated runs must summarise, not crash.

A run the stall watchdog aborts before any post-warmup delivery
reaches the summary layer with empty latency/hop series.  These tests
pin the contract: zero-sample metrics are reported as ``None``
(undefined), downstream sweep analysis skips them, and the end-to-end
degraded path produces a well-formed ``RunResult``.
"""

import pytest

from repro.stats.collectors import NetworkStats
from repro.stats.summary import (
    RunResult,
    detect_saturation_point,
    mean_or_none,
    percentile_or_none,
)


class TestZeroSampleHelpers:
    def test_mean_or_none_empty(self):
        assert mean_or_none([]) is None

    def test_mean_or_none_nonempty(self):
        assert mean_or_none([2, 4]) == 3.0

    def test_percentile_or_none_empty(self):
        assert percentile_or_none([], 95) is None

    def test_percentile_or_none_nonempty(self):
        assert percentile_or_none([1, 2, 3], 50) == 2.0


class TestFromStatsWithEmptySeries:
    def test_all_latency_metrics_undefined(self):
        stats = NetworkStats()
        stats.warmup_cycles = 100
        result = RunResult.from_stats(
            stats,
            topology_name="ring4",
            routing_name="shortest",
            pattern_name="uniform",
            num_nodes=4,
            num_sources=4,
            injection_rate=0.1,
            cycles=101,  # watchdog tripped just past warmup
        )
        assert result.avg_latency is None
        assert result.avg_queueing_delay is None
        assert result.avg_network_latency is None
        assert result.p95_latency is None
        assert result.avg_hops is None
        assert result.throughput == 0.0
        # The undefined metrics survive the cache round trip.
        assert RunResult.from_dict(result.to_dict()) == result


class TestSaturationDetectionWithDegradedPoints:
    def test_none_latencies_are_skipped(self):
        rates = [0.1, 0.2, 0.3, 0.4]
        latencies = [20.0, None, 25.0, 90.0]
        assert (
            detect_saturation_point(rates, latencies, 3.0) == 0.4
        )

    def test_baseline_comes_from_first_defined_point(self):
        rates = [0.1, 0.2, 0.3]
        latencies = [None, 20.0, 70.0]
        assert (
            detect_saturation_point(rates, latencies, 3.0) == 0.3
        )

    def test_all_none_detects_nothing(self):
        assert (
            detect_saturation_point([0.1, 0.2], [None, None]) is None
        )

    def test_still_rejects_mismatched_inputs(self):
        with pytest.raises(ValueError):
            detect_saturation_point([0.1], [])


class TestDegradedRunEndToEnd:
    def test_watchdog_abort_before_post_warmup_delivery(self):
        """A ring with every link severed deadlocks instantly; the
        watchdog aborts inside warmup and the summary must carry
        None metrics instead of crashing."""
        from repro.noc.config import NocConfig
        from repro.noc.network import Network
        from repro.resilience.watchdog import StallWatchdog
        from repro.topology import RingTopology
        from repro.traffic import TrafficSpec, UniformTraffic

        topology = RingTopology(4)
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=4),
            traffic=TrafficSpec(UniformTraffic(topology), 0.2),
            seed=1,
        )
        StallWatchdog(net, stall_cycles=50)
        for a, b in [(0, 1), (1, 2), (2, 3), (0, 3)]:
            net.fail_link(a, b)
        result = net.run(cycles=5_000, warmup=1_000)
        assert result.degraded
        assert result.avg_latency is None
        assert result.p95_latency is None
        assert result.throughput == 0.0
        assert "stall" in result.extra
