"""Unit tests for the runtime statistics collector."""

import pytest

from repro.noc.packet import Packet
from repro.stats import NetworkStats


def packet(created_at=0):
    pkt = Packet(0, 1, 6, created_at=created_at)
    pkt.injected_at = created_at + 4
    pkt.hops = 3
    return pkt


class TestWarmup:
    def test_pre_warmup_flits_segregated(self):
        stats = NetworkStats(warmup_cycles=100)
        stats.record_consumed_flit(50)
        stats.record_consumed_flit(100)
        stats.record_consumed_flit(150)
        assert stats.warmup_flits_consumed == 1
        assert stats.flits_consumed == 2

    def test_pre_warmup_packets_not_measured(self):
        stats = NetworkStats(warmup_cycles=100)
        stats.record_packet_delivered(packet(), 50)
        assert stats.packets_consumed == 0
        assert stats.latencies == []
        assert stats.warmup_packets_consumed == 1

    def test_post_warmup_packet_measured(self):
        stats = NetworkStats(warmup_cycles=100)
        stats.record_packet_delivered(packet(created_at=90), 130)
        assert stats.packets_consumed == 1
        assert stats.latencies == [40]
        assert stats.hop_counts == [3]
        assert stats.queueing_delays == [4]
        assert stats.network_latencies == [36]

    def test_never_injected_packet_rejected(self):
        stats = NetworkStats()
        pkt = Packet(0, 1, 6, created_at=0)
        with pytest.raises(ValueError):
            stats.record_packet_delivered(pkt, 10)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            NetworkStats(warmup_cycles=-1)

    def test_boundary_cycle_is_measured(self):
        stats = NetworkStats(warmup_cycles=100)
        stats.record_consumed_flit(100)
        assert stats.flits_consumed == 1


class TestSourceCounters:
    def test_generation_and_rejection(self):
        stats = NetworkStats()
        stats.record_generated(1)
        stats.record_generated(2)
        stats.record_rejected(2)
        stats.record_injected_flit(3)
        assert stats.packets_generated == 2
        assert stats.packets_rejected == 1
        assert stats.flits_injected == 1
