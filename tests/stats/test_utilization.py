"""Tests for link-utilization reporting."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.stats import UtilizationReport
from repro.topology import RingTopology, SpidergonTopology
from repro.traffic import HotspotTraffic, TrafficSpec, UniformTraffic


def run_network(topology, pattern, rate=0.2, cycles=3_000):
    net = Network(
        topology,
        config=NocConfig(source_queue_packets=16),
        traffic=TrafficSpec(pattern, rate),
        seed=5,
    )
    net.run(cycles=cycles)
    return net


class TestReportConstruction:
    def test_requires_completed_run(self):
        net = Network(RingTopology(4))
        with pytest.raises(ValueError):
            UtilizationReport.from_network(net)

    def test_counts_match_single_packet(self):
        # One 6-flit packet over 2 hops: each traversed link carries
        # 6 flits; all other links carry 0.
        topology = RingTopology(8)
        net = Network(topology, seed=0)
        net.interfaces[0].enqueue_packet(Packet(0, 2, 6, created_at=0))
        net.simulator.run(until=300)
        net.cycles_run = 300
        report = UtilizationReport.from_network(net)
        by_link = {(l.node, l.port): l.flits for l in report.loads}
        assert by_link[(0, "cw")] == 6
        assert by_link[(1, "cw")] == 6
        assert by_link[(2, "cw")] == 0
        assert report.total_flit_hops == 12

    def test_local_port_excluded_by_default(self):
        topology = RingTopology(4)
        net = run_network(topology, UniformTraffic(topology))
        report = UtilizationReport.from_network(net)
        assert all(l.port != "local" for l in report.loads)
        with_local = UtilizationReport.from_network(
            net, include_local=True
        )
        assert len(with_local.loads) == len(report.loads) + 4


class TestAggregates:
    def test_utilization_bounded_by_one(self):
        topology = RingTopology(8)
        net = run_network(topology, UniformTraffic(topology), rate=0.9)
        report = UtilizationReport.from_network(net)
        for load in report.loads:
            assert 0.0 <= load.utilization <= 1.0

    def test_hotspot_concentrates_load(self):
        # Converging traffic loads the links around the target far
        # more than the average link.
        topology = SpidergonTopology(16)
        net = run_network(
            topology, HotspotTraffic(topology, [0]), rate=0.3
        )
        report = UtilizationReport.from_network(net)
        assert report.imbalance > 2.0
        # The busiest links feed the hot-spot node.
        top_nodes = {l.node for l in report.busiest(3)}
        neighbors = set(topology.neighbors(0)) | {0}
        assert top_nodes & neighbors

    def test_uniform_traffic_balanced_on_symmetric_topology(self):
        topology = RingTopology(8)
        net = run_network(
            topology, UniformTraffic(topology), rate=0.3,
            cycles=8_000,
        )
        report = UtilizationReport.from_network(net)
        assert report.imbalance < 1.5

    def test_total_flit_hops_equals_flits_times_hops(self):
        # Energy proxy consistency: total link traversals equal
        # sum(packet hops) * flits-per-packet for delivered traffic
        # (plus in-flight remainder; use a drained burst).
        topology = RingTopology(8)
        net = Network(topology, seed=0)
        for dst in (1, 2, 3, 4):
            net.interfaces[0].enqueue_packet(
                Packet(0, dst, 6, created_at=0)
            )
        net.simulator.run(until=500)
        net.cycles_run = 500
        report = UtilizationReport.from_network(net)
        expected = 6 * sum(net.stats.hop_counts)
        assert report.total_flit_hops == expected

    def test_idle_network_reports_zero(self):
        net = Network(RingTopology(4))
        net.run(cycles=50)
        report = UtilizationReport.from_network(net)
        assert report.mean_utilization == 0.0
        assert report.imbalance == 0.0

    def test_empty_peak_raises(self):
        report = UtilizationReport(loads=(), cycles=10)
        with pytest.raises(ValueError):
            report.peak
