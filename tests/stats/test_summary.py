"""Unit and property tests for statistical helpers and RunResult."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.packet import Packet
from repro.stats import (
    NetworkStats,
    RunResult,
    confidence_interval,
    detect_saturation_point,
    mean,
    percentile,
)

floats = st.floats(
    min_value=-1e6,
    max_value=1e6,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
)


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    @given(st.lists(floats, min_size=1, max_size=50))
    def test_bounded_by_extremes(self, values):
        assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7], 95) == 7.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(st.lists(floats, min_size=2, max_size=50))
    def test_monotone_in_q(self, values):
        qs = [0, 25, 50, 75, 100]
        results = [percentile(values, q) for q in qs]
        assert results == sorted(results)


class TestHistogram:
    def test_buckets(self):
        from repro.stats import histogram

        counts = histogram([1, 2, 5, 11, 12, 19], 10)
        assert counts == {0: 3, 10: 3}

    def test_fractional_width(self):
        from repro.stats import histogram

        counts = histogram([0.1, 0.4, 0.6], 0.5)
        assert counts == {0.0: 2, 0.5: 1}

    def test_total_preserved(self):
        from repro.stats import histogram

        values = list(range(137))
        assert sum(histogram(values, 7).values()) == 137

    def test_validation(self):
        from repro.stats import histogram

        with pytest.raises(ValueError):
            histogram([], 1)
        with pytest.raises(ValueError):
            histogram([1], 0)


class TestConfidenceInterval:
    def test_zero_variance(self):
        center, half = confidence_interval([5.0, 5.0, 5.0])
        assert center == 5.0
        assert half == 0.0

    def test_wider_at_higher_confidence(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        _, half95 = confidence_interval(values, 0.95)
        _, half99 = confidence_interval(values, 0.99)
        assert half99 > half95

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0])

    def test_unsupported_level_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], 0.9)

    @given(st.lists(floats, min_size=2, max_size=40))
    def test_center_is_mean(self, values):
        center, _ = confidence_interval(values)
        assert center == pytest.approx(mean(values))


class TestSaturationDetection:
    def test_finds_knee(self):
        rates = [0.1, 0.2, 0.3, 0.4]
        latencies = [10, 11, 14, 80]
        assert detect_saturation_point(rates, latencies) == 0.4

    def test_none_when_flat(self):
        assert detect_saturation_point([0.1, 0.2], [10, 11]) is None

    def test_threshold_factor(self):
        rates = [0.1, 0.2]
        latencies = [10, 25]
        assert detect_saturation_point(rates, latencies, 2.0) == 0.2
        assert detect_saturation_point(rates, latencies, 3.0) is None

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            detect_saturation_point([0.1], [1, 2])


class TestRunResult:
    def _stats(self):
        stats = NetworkStats(warmup_cycles=100)
        for t in (150, 200, 250):
            pkt = Packet(0, 1, 6, created_at=t - 20)
            pkt.injected_at = t - 15
            pkt.hops = 2
            stats.record_packet_delivered(pkt, t)
            for _ in range(6):
                stats.record_consumed_flit(t)
        stats.packets_generated = 5
        return stats

    def _result(self, cycles=1100):
        return RunResult.from_stats(
            self._stats(),
            topology_name="ring8",
            routing_name="ring-shortest/ring8",
            pattern_name="uniform",
            num_nodes=8,
            num_sources=8,
            injection_rate=0.25,
            cycles=cycles,
        )

    def test_throughput_over_measured_window(self):
        result = self._result()
        assert result.throughput == pytest.approx(18 / 1000)

    def test_latency_stats(self):
        result = self._result()
        assert result.avg_latency == 20
        assert result.p95_latency == 20
        assert result.avg_hops == 2

    def test_latency_decomposition(self):
        result = self._result()
        assert result.avg_queueing_delay == 5
        assert result.avg_network_latency == 15
        assert (
            result.avg_queueing_delay + result.avg_network_latency
            == result.avg_latency
        )

    def test_offered_load(self):
        assert self._result().offered_load == pytest.approx(2.0)

    def test_delivery_ratio(self):
        assert self._result().delivery_ratio == pytest.approx(3 / 5)

    def test_no_window_rejected(self):
        with pytest.raises(ValueError):
            self._result(cycles=100)

    def test_empty_run_has_none_latency(self):
        stats = NetworkStats()
        result = RunResult.from_stats(
            stats,
            topology_name="ring8",
            routing_name="r",
            pattern_name="uniform",
            num_nodes=8,
            num_sources=8,
            injection_rate=0.0,
            cycles=100,
        )
        assert result.avg_latency is None
        assert result.p95_latency is None
        assert result.avg_hops is None
        assert result.delivery_ratio == 0.0
