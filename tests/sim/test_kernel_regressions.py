"""Regression tests for kernel edge-case bugs.

Each class pins one historical bug:

* a ``run(until=..., max_events=...)`` call that stopped on the event
  cap used to jump ``now`` to ``until`` anyway, teleporting the clock
  past events that were still due;
* ``EventQueue.clear()`` used to drop events without cancel-marking
  them, so a stale handle later passed to ``Simulator.cancel`` drove
  the live-event count negative.
"""

import pytest

from repro.sim.events import Event, EventQueue, HeapEventQueue
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule


class Recorder(SimModule):
    def __init__(self, simulator, name):
        super().__init__(simulator, name)
        self.delivered = []

    def handle_message(self, message):
        self.delivered.append((self.now, message.name))


class TestMaxEventsStopKeepsTime:
    def test_cap_stop_leaves_now_at_last_delivery(self):
        sim = Simulator()
        module = Recorder(sim, "r")
        for t in range(5):
            sim.schedule(t, module, Message(f"m{t}"))
        processed = sim.run(until=100, max_events=3)
        assert processed == 3
        # Events at t=3 and t=4 are still due; the clock must not
        # have jumped past them to until=100.
        assert sim.now == 2
        assert sim.pending_event_count == 2

    def test_resumed_run_continues_where_the_cap_stopped(self):
        sim = Simulator()
        module = Recorder(sim, "r")
        for t in range(5):
            sim.schedule(t, module, Message(f"m{t}"))
        sim.run(until=100, max_events=3)
        sim.run(until=100)
        assert [t for t, _ in module.delivered] == [0, 1, 2, 3, 4]
        assert sim.now == 100

    def test_cap_stop_with_drained_queue_still_jumps_to_until(self):
        """When the cap coincides with the last event, the run IS
        time-limited: nothing is pending, so now advances to until
        (the pre-existing contract for drained runs)."""
        sim = Simulator()
        module = Recorder(sim, "r")
        for t in range(3):
            sim.schedule(t, module, Message(f"m{t}"))
        sim.run(until=100, max_events=3)
        assert sim.now == 100

    def test_cap_stop_with_only_later_events_jumps_to_until(self):
        """Pending events beyond the horizon don't hold the clock
        back either — they were unreachable in this run."""
        sim = Simulator()
        module = Recorder(sim, "r")
        sim.schedule(0, module, Message("inside"))
        sim.schedule(500, module, Message("beyond"))
        sim.run(until=100, max_events=1)
        assert sim.now == 100
        assert sim.pending_event_count == 1

    def test_cap_stop_respected_with_observer_attached(self):
        from repro.sim.observers import Observer

        sim = Simulator()
        sim.add_observer(Observer())
        module = Recorder(sim, "r")
        for t in range(5):
            sim.schedule(t, module, Message(f"m{t}"))
        sim.run(until=100, max_events=3)
        assert sim.now == 2


@pytest.mark.parametrize("engine", ["wheel", "heap", "batched"])
class TestClearCancelMarksDroppedEvents:
    def test_stale_cancel_after_clear_is_harmless(self, engine):
        sim = Simulator(engine=engine)
        module = Recorder(sim, "r")
        stale = sim.schedule(10, module, Message("timer"))
        sim._queue.clear()
        assert sim.pending_event_count == 0
        # The module still holds its timer handle; cancelling it must
        # be an idempotent no-op, not corrupt the live-event count.
        sim.cancel(stale)
        assert sim.pending_event_count == 0
        sim.schedule(1, module, Message("fresh"))
        assert sim.pending_event_count == 1
        sim.run()
        assert [name for _, name in module.delivered] == ["fresh"]


@pytest.mark.parametrize(
    "queue_class", [EventQueue, HeapEventQueue]
)
class TestClearMarksEveryTier:
    def test_clear_marks_every_tier(self, queue_class):
        queue = queue_class()
        near = queue.push(Event(time=1, priority=0, sequence=0))
        far = queue.push(
            Event(
                time=EventQueue.WHEEL_SLOTS + 100,
                priority=0,
                sequence=0,
            )
        )
        queue.clear()
        assert near.cancelled and far.cancelled
        assert len(queue) == 0
        assert queue.pop_next() is None
