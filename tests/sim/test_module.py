"""Unit tests for modules, gates and message plumbing."""

import pytest

from repro.sim.errors import GateConnectionError
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule


class Echo(SimModule):
    """Records deliveries; can forward through a named gate."""

    def __init__(self, simulator, name):
        super().__init__(simulator, name)
        self.received = []

    def handle_message(self, message):
        self.received.append((self.now, message))


class TestGates:
    def test_add_and_lookup_gate(self):
        sim = Simulator()
        module = Echo(sim, "a")
        gate = module.add_gate("out")
        assert module.gate("out") is gate
        assert gate.full_name == "a.out"

    def test_duplicate_gate_name_rejected(self):
        sim = Simulator()
        module = Echo(sim, "a")
        module.add_gate("out")
        with pytest.raises(GateConnectionError):
            module.add_gate("out")

    def test_missing_gate_raises_keyerror(self):
        sim = Simulator()
        module = Echo(sim, "a")
        with pytest.raises(KeyError):
            module.gate("nope")

    def test_connect_twice_rejected(self):
        sim = Simulator()
        a, b, c = Echo(sim, "a"), Echo(sim, "b"), Echo(sim, "c")
        out = a.add_gate("out")
        out.connect(b.add_gate("in"))
        with pytest.raises(GateConnectionError):
            out.connect(c.add_gate("in"))

    def test_negative_delay_rejected(self):
        sim = Simulator()
        a, b = Echo(sim, "a"), Echo(sim, "b")
        with pytest.raises(GateConnectionError):
            a.add_gate("out").connect(b.add_gate("in"), delay=-1)

    def test_is_connected(self):
        sim = Simulator()
        a, b = Echo(sim, "a"), Echo(sim, "b")
        gate = a.add_gate("out")
        assert not gate.is_connected()
        gate.connect(b.add_gate("in"))
        assert gate.is_connected()


class TestSend:
    def _wire(self, delay=1):
        sim = Simulator()
        a, b = Echo(sim, "a"), Echo(sim, "b")
        a.add_gate("out").connect(b.add_gate("in"), delay=delay)
        return sim, a, b

    def test_send_delivers_after_delay(self):
        sim, a, b = self._wire(delay=3)
        sim.schedule(5, a, Message("go"), handler=lambda m: a.send(
            Message("payload"), "out"
        ))
        sim.run()
        assert [(t, m.name) for t, m in b.received] == [(8, "payload")]

    def test_send_zero_delay_same_cycle(self):
        sim, a, b = self._wire(delay=0)
        sim.schedule(5, a, Message("go"), handler=lambda m: a.send(
            Message("payload"), "out"
        ))
        sim.run()
        assert b.received[0][0] == 5

    def test_send_records_metadata(self):
        sim, a, b = self._wire()
        payload = Message("payload")
        sim.schedule(2, a, Message("go"), handler=lambda m: a.send(
            payload, "out"
        ))
        sim.run()
        assert payload.sender is a
        assert payload.arrival_gate is b.gate("in")
        assert payload.sent_at == 2
        assert not payload.is_self_message()

    def test_send_through_unconnected_gate_rejected(self):
        sim = Simulator()
        a = Echo(sim, "a")
        a.add_gate("out")
        sim.schedule(0, a, Message("go"), handler=lambda m: a.send(
            Message("x"), "out"
        ))
        with pytest.raises(GateConnectionError):
            sim.run()

    def test_send_through_foreign_gate_rejected(self):
        sim = Simulator()
        a, b, c = Echo(sim, "a"), Echo(sim, "b"), Echo(sim, "c")
        foreign = b.add_gate("out")
        foreign.connect(c.add_gate("in"))
        sim.schedule(0, a, Message("go"), handler=lambda m: a.send(
            Message("x"), foreign
        ))
        with pytest.raises(GateConnectionError):
            sim.run()


class TestSelfMessages:
    def test_schedule_self_fires_after_delay(self):
        sim = Simulator()
        module = Echo(sim, "a")
        timer = Message("timer")
        sim.schedule(1, module, Message("go"), handler=lambda m: (
            module.schedule_self(4, timer)
        ))
        sim.run()
        assert [(t, m.name) for t, m in module.received] == [(5, "timer")]

    def test_self_message_flagged(self):
        sim = Simulator()
        module = Echo(sim, "a")
        timer = Message("timer")
        sim.schedule(0, module, Message("go"), handler=lambda m: (
            module.schedule_self(1, timer)
        ))
        sim.run()
        assert timer.is_self_message()
        assert timer.arrival_gate is None

    def test_cancel_self_message(self):
        sim = Simulator()
        module = Echo(sim, "a")
        events = []
        sim.schedule(0, module, Message("go"), handler=lambda m: (
            events.append(module.schedule_self(5, Message("timer")))
        ))
        sim.run(until=2)
        module.cancel_event(events[0])
        sim.run()
        assert module.received == []

    def test_now_property_tracks_simulator(self):
        sim = Simulator()
        module = Echo(sim, "a")
        sim.schedule(9, module, Message("m"))
        sim.run()
        assert module.now == 9
