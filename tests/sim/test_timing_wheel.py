"""Equivalence of the timing-wheel queue and the reference heap.

The kernel's correctness rests on one contract: the future-event set
delivers events in exact ``(time, priority, sequence)`` order, no
matter how pushes, cancellations, and (possibly limited) pops
interleave.  These tests drive :class:`~repro.sim.events.EventQueue`
(the timing wheel) and :class:`~repro.sim.events.HeapEventQueue` (the
reference heap) with identical operation schedules — hypothesis
generates the schedules — and require identical observable behaviour,
including same-cycle priority/sequence ties, far-future events that
live in the wheel's overflow tier, and pushes behind the wheel's
cursor (legal for the standalone queue even though the kernel never
does it).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import Event, EventQueue, HeapEventQueue

# Times cluster at the wheel's short horizon (NoC link delays) but
# also reach far past WHEEL_SLOTS so schedules exercise the overflow
# tier and the overflow->wheel migration.
_TIME = st.one_of(
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=EventQueue.WHEEL_SLOTS * 3),
)

# An operation schedule: push(time_delta, priority), cancel(k-th
# oldest live handle), pop, or pop_next(limit_delta).
_OP = st.one_of(
    st.tuples(st.just("push"), _TIME, st.integers(0, 2)),
    st.tuples(st.just("cancel"), st.integers(0, 30)),
    st.tuples(st.just("pop"), st.just(0)),
    st.tuples(st.just("pop_limit"), _TIME),
)


def _run_schedule(queue, ops):
    """Apply *ops* to *queue*; return the observable trace.

    Pop times are anchored to the queue's own clock (the time of the
    last popped event) so pushes may land behind the wheel's cursor.
    Cancellation picks among the still-pending handles only — the
    cancel-a-pending-event protocol the kernel follows.
    """
    trace = []
    pending = {}
    clock = 0
    for op in ops:
        kind = op[0]
        if kind == "push":
            _, delta, priority = op
            event = queue.push(
                Event(time=clock + delta, priority=priority, sequence=0)
            )
            pending[event.sequence] = event
        elif kind == "cancel":
            index = op[1]
            if pending:
                key = sorted(pending)[index % len(pending)]
                event = pending.pop(key)
                event.cancel()
                queue.discard_cancelled(event)
                trace.append(("cancelled", event.time, event.sequence))
        elif kind == "pop":
            event = queue.pop_next()
            if event is None:
                trace.append(("empty",))
            else:
                clock = event.time
                pending.pop(event.sequence, None)
                trace.append(
                    ("pop", event.time, event.priority, event.sequence)
                )
        else:  # pop_limit
            limit = clock + op[1]
            event = queue.pop_next(limit)
            if event is None:
                trace.append(("blocked", queue.peek_time()))
            else:
                clock = event.time
                pending.pop(event.sequence, None)
                trace.append(
                    ("pop", event.time, event.priority, event.sequence)
                )
        trace.append(("len", len(queue)))
    # Drain whatever is left: total order must match to the end.
    while True:
        event = queue.pop_next()
        if event is None:
            break
        trace.append(
            ("pop", event.time, event.priority, event.sequence)
        )
    trace.append(("final_len", len(queue)))
    return trace


class TestWheelMatchesHeap:
    @given(ops=st.lists(_OP, max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_identical_trace_for_any_schedule(self, ops):
        wheel_trace = _run_schedule(EventQueue(), ops)
        heap_trace = _run_schedule(HeapEventQueue(), ops)
        assert wheel_trace == heap_trace

    @given(
        priorities=st.lists(
            st.integers(0, 3), min_size=2, max_size=20
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_same_cycle_ties_break_by_priority_then_fifo(
        self, priorities
    ):
        """All events at one timestamp: delivery is (priority, push
        order) on both queues."""
        queues = (EventQueue(), HeapEventQueue())
        orders = []
        for queue in queues:
            for priority in priorities:
                queue.push(Event(time=5, priority=priority, sequence=0))
            order = []
            while queue:
                event = queue.pop()
                order.append((event.priority, event.sequence))
            orders.append(order)
        assert orders[0] == orders[1] == sorted(orders[0])

    def test_far_future_event_lands_in_overflow_then_delivers(self):
        queue = EventQueue()
        far = EventQueue.WHEEL_SLOTS + 50
        queue.push(Event(time=far, priority=0, sequence=0))
        queue.push(Event(time=1, priority=0, sequence=0))
        assert queue.overflow_occupancy == 1
        assert queue.wheel_occupancy == 1
        assert queue.pop().time == 1
        # The wheel is now empty; serving the overflow event migrates
        # it into the (re-based) wheel window first.
        assert queue.pop().time == far
        assert not queue

    def test_push_behind_cursor_still_delivers_first(self):
        """The kernel never schedules in the past, but the standalone
        queue must stay ordered if a caller does."""
        queue = EventQueue()
        for t in (10, 11, 12):
            queue.push(Event(time=t, priority=0, sequence=0))
        assert queue.pop().time == 10  # cursor now at 10
        queue.push(Event(time=3, priority=0, sequence=0))
        assert queue.peek_time() == 3
        assert [queue.pop().time for _ in range(3)] == [3, 11, 12]
