"""Tests for the kernel observer protocol."""

import pytest

from repro.sim.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule
from repro.sim.observers import Observer
from repro.sim.tracing import EventTracer


class Echo(SimModule):
    def handle_message(self, message):
        pass


class Recording(Observer):
    """Logs every hook invocation into a shared journal."""

    def __init__(self, name, journal):
        self.name = name
        self.journal = journal

    def on_event_delivered(self, simulator, event):
        self.journal.append(
            (self.name, "event", event.time, event.message.name)
        )

    def on_time_advanced(self, simulator, old_time, new_time):
        self.journal.append((self.name, "time", old_time, new_time))


def schedule_burst(sim, module, times):
    for t in times:
        sim.schedule(t, module, Message(f"m{t}"))


class TestRegistration:
    def test_add_returns_observer_and_lists_in_order(self):
        sim = Simulator()
        first, second = Observer(), Observer()
        assert sim.add_observer(first) is first
        sim.add_observer(second)
        assert sim.observers == (first, second)

    def test_duplicate_add_rejected(self):
        sim = Simulator()
        observer = Observer()
        sim.add_observer(observer)
        with pytest.raises(SimulationError):
            sim.add_observer(observer)

    def test_remove_unregistered_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().remove_observer(Observer())

    def test_remove_is_identity_based(self):
        # Two distinct but equal-looking observers: removing one must
        # not detach the other.
        sim = Simulator()
        first, second = Observer(), Observer()
        sim.add_observer(first)
        sim.add_observer(second)
        sim.remove_observer(first)
        assert sim.observers == (second,)


class TestDispatch:
    def test_observers_fire_in_registration_order(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        journal = []
        sim.add_observer(Recording("a", journal))
        sim.add_observer(Recording("b", journal))
        sim.schedule(3, module, Message("ping"))
        sim.run()
        deliveries = [e for e in journal if e[1] == "event"]
        assert [e[0] for e in deliveries] == ["a", "b"]

    def test_delivery_hook_fires_after_handler(self):
        order = []

        class Noting(SimModule):
            def handle_message(self, message):
                order.append("handler")

        class After(Observer):
            def on_event_delivered(self, simulator, event):
                order.append("observer")

        sim = Simulator()
        module = Noting(sim, "noting")
        sim.add_observer(After())
        sim.schedule(1, module, Message("m"))
        sim.run()
        assert order == ["handler", "observer"]

    def test_time_advanced_on_strict_increase_only(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        journal = []
        sim.add_observer(Recording("t", journal))
        # Two events at t=2 advance time once; t=5 advances again.
        schedule_burst(sim, module, [2, 2, 5])
        sim.run()
        advances = [e for e in journal if e[1] == "time"]
        assert advances == [("t", "time", 0, 2), ("t", "time", 2, 5)]

    def test_time_advanced_covers_final_jump_to_until(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        journal = []
        sim.add_observer(Recording("t", journal))
        sim.schedule(1, module, Message("m"))
        sim.run(until=10)
        advances = [e for e in journal if e[1] == "time"]
        assert advances[-1] == ("t", "time", 1, 10)
        assert sim.now == 10

    def test_observer_added_mid_run_sees_later_events(self):
        sim = Simulator()
        journal = []
        late = Recording("late", journal)

        class Attacher(SimModule):
            def handle_message(self, message):
                if message.name == "attach":
                    self.simulator.add_observer(late)

        module = Attacher(sim, "attacher")
        sim.schedule(1, module, Message("attach"))
        sim.schedule(2, module, Message("after"))
        sim.run()
        names = [e[3] for e in journal if e[1] == "event"]
        # Hooks fire post-dispatch, so the attaching delivery itself
        # is already observed.
        assert names == ["attach", "after"]


class TestDetachMidRun:
    def test_observer_can_detach_itself_from_callback(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        journal = []

        class OneShot(Recording):
            def on_event_delivered(self, simulator, event):
                super().on_event_delivered(simulator, event)
                simulator.remove_observer(self)

        keeper = Recording("keeper", journal)
        sim.add_observer(OneShot("oneshot", journal))
        sim.add_observer(keeper)
        schedule_burst(sim, module, [1, 2, 3])
        sim.run()
        events = [e for e in journal if e[1] == "event"]
        assert [e[0] for e in events if e[0] == "oneshot"] == ["oneshot"]
        assert len([e for e in events if e[0] == "keeper"]) == 3
        assert sim.observers == (keeper,)

    def test_module_can_detach_observer_mid_run(self):
        sim = Simulator()
        journal = []
        watcher = Recording("w", journal)
        sim.add_observer(watcher)

        class Detacher(SimModule):
            def handle_message(self, message):
                if message.name == "detach":
                    self.simulator.remove_observer(watcher)

        module = Detacher(sim, "detacher")
        sim.schedule(1, module, Message("before"))
        sim.schedule(2, module, Message("detach"))
        sim.schedule(3, module, Message("after"))
        sim.run()
        names = [e[3] for e in journal if e[1] == "event"]
        # Hooks fire post-dispatch: the handler detaches the watcher
        # before the delivery hook runs, so "detach" goes unobserved.
        assert names == ["before"]


class TestNoMonkeyPatching:
    def test_tracer_does_not_replace_run(self):
        sim = Simulator()
        original_run = sim.run
        tracer = EventTracer(sim)
        # The observer protocol leaves the simulator untouched: no
        # instance attribute shadows the class method.
        assert "run" not in vars(sim)
        assert sim.run == original_run
        tracer.detach()
        assert "run" not in vars(sim)

    def test_base_observer_hooks_are_noops(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        sim.add_observer(Observer())
        schedule_burst(sim, module, [1, 2])
        assert sim.run() == 2
