"""Unit and property tests for the reproducible RNG streams."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_key_changes_seed(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(), st.text(max_size=50))
    def test_seed_fits_in_64_bits(self, root, key):
        assert 0 <= derive_seed(root, key) < 2**64


class TestRngStream:
    def test_same_seed_same_draws(self):
        a = RngStream(7, "x")
        b = RngStream(7, "x")
        assert [a.uniform() for _ in range(10)] == [
            b.uniform() for _ in range(10)
        ]

    def test_streams_are_independent(self):
        # Drawing from one stream must not perturb another.
        a1 = RngStream(7, "a")
        b1 = RngStream(7, "b")
        _ = [b1.uniform() for _ in range(100)]
        a2 = RngStream(7, "a")
        assert [a1.uniform() for _ in range(5)] == [
            a2.uniform() for _ in range(5)
        ]

    def test_exponential_positive(self):
        rng = RngStream(1, "exp")
        assert all(rng.exponential(10.0) > 0 for _ in range(100))

    def test_exponential_mean_roughly_correct(self):
        rng = RngStream(1, "exp-mean")
        draws = [rng.exponential(20.0) for _ in range(20_000)]
        assert 19.0 < sum(draws) / len(draws) < 21.0

    def test_exponential_rejects_nonpositive_mean(self):
        rng = RngStream(1, "bad")
        with pytest.raises(ValueError):
            rng.exponential(0.0)

    def test_uniform_int_bounds_inclusive(self):
        rng = RngStream(1, "ui")
        draws = {rng.uniform_int(2, 4) for _ in range(200)}
        assert draws == {2, 3, 4}

    def test_bernoulli_extremes(self):
        rng = RngStream(1, "bern")
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_bernoulli_rejects_out_of_range(self):
        rng = RngStream(1, "bern2")
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)

    def test_choice_draws_members(self):
        rng = RngStream(1, "choice")
        population = ["a", "b", "c"]
        assert all(
            rng.choice(population) in population for _ in range(50)
        )

    def test_shuffle_preserves_multiset(self):
        rng = RngStream(1, "shuffle")
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
