"""Unit tests for the event queue: ordering, cancellation, laziness."""

import pytest

from repro.sim.events import Event, EventQueue


def make_event(time, priority=0):
    return Event(time=time, priority=priority, sequence=0)


class TestEventQueueOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        for t in (5, 1, 3):
            queue.push(make_event(t))
        assert [queue.pop().time for _ in range(3)] == [1, 3, 5]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(make_event(2, priority=2))
        queue.push(make_event(2, priority=0))
        queue.push(make_event(2, priority=1))
        assert [queue.pop().priority for _ in range(3)] == [0, 1, 2]

    def test_fifo_within_time_and_priority(self):
        queue = EventQueue()
        events = [make_event(4) for _ in range(5)]
        for event in events:
            queue.push(event)
        popped = [queue.pop() for _ in range(5)]
        assert popped == events

    def test_sequence_assigned_monotonically(self):
        queue = EventQueue()
        first = queue.push(make_event(1))
        second = queue.push(make_event(1))
        assert second.sequence > first.sequence

    def test_interleaved_push_pop(self):
        queue = EventQueue()
        queue.push(make_event(10))
        queue.push(make_event(2))
        assert queue.pop().time == 2
        queue.push(make_event(5))
        assert queue.pop().time == 5
        assert queue.pop().time == 10


class TestEventQueueCancellation:
    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        doomed = queue.push(make_event(1))
        queue.push(make_event(2))
        doomed.cancel()
        queue.discard_cancelled(doomed)
        assert queue.pop().time == 2

    def test_len_tracks_cancellation(self):
        queue = EventQueue()
        doomed = queue.push(make_event(1))
        queue.push(make_event(2))
        assert len(queue) == 2
        doomed.cancel()
        queue.discard_cancelled(doomed)
        assert len(queue) == 1

    def test_discard_requires_cancelled_event(self):
        queue = EventQueue()
        event = queue.push(make_event(1))
        with pytest.raises(ValueError):
            queue.discard_cancelled(event)

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        doomed = queue.push(make_event(1))
        queue.push(make_event(7))
        doomed.cancel()
        queue.discard_cancelled(doomed)
        assert queue.peek_time() == 7


class TestEventQueueEmpty:
    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_bool_reflects_liveness(self):
        queue = EventQueue()
        assert not queue
        event = queue.push(make_event(1))
        assert queue
        event.cancel()
        queue.discard_cancelled(event)
        assert not queue

    def test_clear_drops_everything(self):
        queue = EventQueue()
        for t in range(5):
            queue.push(make_event(t))
        queue.clear()
        assert len(queue) == 0
        assert queue.peek_time() is None
