"""The batched engine's CycleCalendar and fast/slow mode machinery.

Cross-engine result equivalence lives in
``tests/integration/test_kernel_equivalence.py``; this file covers
the pieces in isolation: the calendar as a drop-in queue, overflow
migration, the one-shot fast/slow decision, and the numpy flush path.
"""

import random

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.sim.batched import BatchedEngine, CycleCalendar
from repro.sim.errors import SimulationError
from repro.sim.events import Event, HeapEventQueue
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule
from repro.topology import MeshTopology, RingTopology
from repro.traffic import TrafficSpec, UniformTraffic


def _event(time, priority=0):
    return Event(time=time, priority=priority, sequence=0)


class TestCycleCalendarProtocol:
    def test_matches_heap_on_random_monotone_schedule(self):
        """Pushed with kernel-legal (monotone, in-window) times, the
        calendar pops the exact (time, priority, sequence) order the
        reference heap does."""
        rng = random.Random(7)
        calendar = CycleCalendar()
        heap = HeapEventQueue()
        now = 0
        for _ in range(500):
            delay = rng.randrange(0, 64)
            priority = rng.choice([0, 0, 0, 1, 2])
            calendar.push(_event(now + delay, priority))
            heap.push(_event(now + delay, priority))
            if rng.random() < 0.3:
                a = calendar.pop_next()
                b = heap.pop_next()
                assert (a.time, a.priority, a.sequence) == (
                    b.time,
                    b.priority,
                    b.sequence,
                )
                now = a.time
        while len(heap):
            a = calendar.pop_next()
            b = heap.pop_next()
            assert (a.time, a.priority, a.sequence) == (
                b.time,
                b.priority,
                b.sequence,
            )
        assert calendar.pop_next() is None

    def test_overflow_migration_preserves_order(self):
        """Events far beyond the window land in the overflow heap and
        migrate back in FIFO order within (time, priority)."""
        calendar = CycleCalendar()
        far = CycleCalendar.WINDOW + 50
        pushed = [calendar.push(_event(far)) for _ in range(20)]
        pushed.append(calendar.push(_event(far, priority=2)))
        pushed.insert(0, calendar.push(_event(3)))
        assert calendar.overflow_occupancy == 21
        popped = []
        while True:
            event = calendar.pop_next()
            if event is None:
                break
            popped.append(event)
        assert popped == sorted(
            pushed, key=lambda e: (e.time, e.priority, e.sequence)
        )

    def test_non_monotone_push_rejected(self):
        calendar = CycleCalendar()
        calendar.push(_event(100))
        assert calendar.pop_next().time == 100
        with pytest.raises(SimulationError, match="monotone"):
            calendar.push(_event(50))

    def test_pop_limit_parks_without_losing_events(self):
        calendar = CycleCalendar()
        calendar.push(_event(200))
        assert calendar.pop_next(limit=100) is None
        assert len(calendar) == 1
        assert calendar.peek_time() == 200
        assert calendar.pop_next(limit=200).time == 200

    def test_clear_cancels_and_empties_every_tier(self):
        calendar = CycleCalendar()
        near = calendar.push(_event(1))
        rest = calendar.push(_event(1, priority=2))
        far = calendar.push(_event(CycleCalendar.WINDOW + 9))
        calendar.clear()
        assert near.cancelled and rest.cancelled and far.cancelled
        assert len(calendar) == 0
        assert calendar.occupancy() == {
            "pending": 0,
            "wheel": 0,
            "overflow": 0,
        }
        assert calendar.pop_next() is None

    def test_discard_cancelled_keeps_len_accurate(self):
        calendar = CycleCalendar()
        stale = calendar.push(_event(5))
        calendar.push(_event(5))
        stale.cancelled = True
        calendar.discard_cancelled(stale)
        assert len(calendar) == 1
        event = calendar.pop_next()
        assert event is not stale and not event.cancelled
        assert calendar.pop_next() is None

    def test_occupancy_reports_tiers(self):
        calendar = CycleCalendar()
        calendar.push(_event(1))
        calendar.push(_event(CycleCalendar.WINDOW + 1))
        assert calendar.occupancy() == {
            "pending": 2,
            "wheel": 1,
            "overflow": 1,
        }


class Recorder(SimModule):
    def __init__(self, simulator, name="r"):
        super().__init__(simulator, name)
        self.delivered = []

    def handle_message(self, message):
        self.delivered.append((self.now, message.name))


class TestSlowPathKernel:
    """Without a network the batched engine is a plain event kernel
    over the calendar; the generic Simulator contract must hold."""

    def test_max_events_cap_resumes_mid_cycle(self):
        sim = Simulator(engine="batched")
        module = Recorder(sim)
        for i in range(4):
            sim.schedule(2, module, Message(f"m{i}"))
        sim.run(until=50, max_events=2)
        assert sim.now == 2
        assert [name for _, name in module.delivered] == ["m0", "m1"]
        sim.run(until=50)
        assert [name for _, name in module.delivered] == [
            "m0",
            "m1",
            "m2",
            "m3",
        ]
        assert sim.now == 50

    def test_mode_is_slow_without_network(self):
        sim = Simulator(engine="batched")
        module = Recorder(sim)
        sim.add_observer(__import__("repro.sim.observers", fromlist=["Observer"]).Observer())
        sim.schedule(1, module, Message("m"))
        sim.run()
        assert sim.engine.mode == "slow"


def _network(engine, size=8, rate=0.2, seed=3):
    topology = RingTopology(size)
    return Network(
        topology,
        config=NocConfig(source_queue_packets=8),
        traffic=TrafficSpec(UniformTraffic(topology), rate),
        seed=seed,
        engine=engine,
    )


class TestModeSelection:
    def test_fast_mode_without_observers(self):
        network = _network("batched")
        network.run(cycles=100)
        assert network.simulator.engine.mode == "fast"

    def test_observer_before_run_forces_slow_mode(self):
        from repro.sim.observers import Observer

        network = _network("batched")
        network.simulator.add_observer(Observer())
        network.run(cycles=100)
        assert network.simulator.engine.mode == "slow"

    def test_observer_after_fast_start_raises(self):
        from repro.sim.observers import Observer

        network = _network("batched")
        network.run(cycles=50)
        with pytest.raises(SimulationError, match="fast path"):
            network.simulator.add_observer(Observer())

    def test_engine_instance_is_single_use(self):
        engine = BatchedEngine()
        _network(engine)
        with pytest.raises(SimulationError, match="fresh engine"):
            _network(engine)

    def test_fast_path_max_events_resume(self):
        """Draining the identical horizon in small ``max_events``
        chunks — stopping mid-cycle, mid-slot — then collecting
        normally yields the same result as one continuous run."""
        whole = _network("batched").run(cycles=300)
        network = _network("batched")
        sim = network.simulator
        while sim.run(until=300, max_events=97) == 97:
            pass
        assert sim.engine.mode == "fast"
        segmented = network.run(cycles=300)
        assert whole.to_dict() == segmented.to_dict()


class TestNumpyFlush:
    def test_vector_path_matches_scalar_path(self):
        pytest.importorskip("numpy")
        topology = MeshTopology(4, 4)

        def run(engine):
            network = Network(
                topology,
                config=NocConfig(source_queue_packets=16),
                traffic=TrafficSpec(UniformTraffic(topology), 0.3),
                seed=11,
                engine=engine,
            )
            result = network.run(cycles=500)
            return result, network.simulator.engine

        vector, eng_v = run(BatchedEngine(vector_threshold=1))
        scalar, eng_s = run(BatchedEngine(vector_threshold=10**9))
        assert eng_v.vector_batches > 0
        assert eng_s.vector_batches == 0
        assert vector.to_dict() == scalar.to_dict()
