"""Tests for the event tracer."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule
from repro.sim.tracing import EventTracer


class Echo(SimModule):
    def handle_message(self, message):
        pass


def schedule_burst(sim, module, times):
    for t in times:
        sim.schedule(t, module, Message(f"m{t}"))


class TestTracer:
    def test_records_deliveries_in_order(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        tracer = EventTracer(sim)
        schedule_burst(sim, module, [5, 1, 3])
        sim.run()
        assert [r.time for r in tracer.records] == [1, 3, 5]
        assert all(r.target == "echo" for r in tracer.records)
        assert tracer.times_are_monotone()

    def test_name_filter(self):
        sim = Simulator()
        a = Echo(sim, "router0")
        b = Echo(sim, "ni0")
        tracer = EventTracer(sim, name_filter="router")
        sim.schedule(1, a, Message("to-router"))
        sim.schedule(2, b, Message("to-ni"))
        sim.run()
        assert [r.message_name for r in tracer.records] == ["to-router"]

    def test_limit_drops_oldest(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        tracer = EventTracer(sim, limit=3)
        schedule_burst(sim, module, range(10))
        sim.run()
        assert len(tracer.records) == 3
        assert tracer.dropped == 7
        assert [r.time for r in tracer.records] == [7, 8, 9]

    def test_detach_restores_plain_run(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        tracer = EventTracer(sim)
        sim.schedule(1, module, Message("seen"))
        sim.run()
        tracer.detach()
        sim.schedule(2, module, Message("unseen"))
        sim.run()
        assert [r.message_name for r in tracer.records] == ["seen"]

    def test_respects_until(self):
        sim = Simulator()
        module = Echo(sim, "echo")
        tracer = EventTracer(sim)
        schedule_burst(sim, module, [1, 5, 9])
        sim.run(until=5)
        assert [r.time for r in tracer.records] == [1, 5]
        assert sim.now == 5

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            EventTracer(Simulator(), limit=0)

    def test_traces_full_noc_run(self):
        # Kernel-ordering regression: in a real NoC run, deliveries
        # at each cycle precede that cycle's phase messages.
        from repro.noc.network import Network
        from repro.noc.packet import Packet
        from repro.topology import RingTopology

        net = Network(RingTopology(4))
        tracer = EventTracer(net.simulator)
        net.interfaces[0].enqueue_packet(Packet(0, 2, 2, created_at=0))
        net.simulator.run(until=100)
        assert tracer.times_are_monotone()
        by_time = {}
        for record in tracer.records:
            by_time.setdefault(record.time, []).append(record)
        for time, records in by_time.items():
            names = [r.message_name for r in records]
            if "phase-advance" in names and "flit" in names:
                assert names.index("flit") < names.index(
                    "phase-advance"
                )
