"""Unit tests for the simulator: scheduling, run control, lifecycle."""

import pytest

from repro.sim.errors import SchedulingError, SimulationError
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule


class Recorder(SimModule):
    """Records every delivery as (time, message name)."""

    def __init__(self, simulator, name="recorder"):
        super().__init__(simulator, name)
        self.deliveries = []
        self.initialized = False
        self.finalized = False

    def initialize(self):
        self.initialized = True

    def handle_message(self, message):
        self.deliveries.append((self.now, message.name))

    def finalize(self):
        self.finalized = True


class TestScheduling:
    def test_delivery_at_scheduled_time(self):
        sim = Simulator()
        recorder = Recorder(sim)
        sim.schedule(5, recorder, Message("hello"))
        sim.run()
        assert recorder.deliveries == [(5, "hello")]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        recorder = Recorder(sim)
        sim.schedule(3, recorder, Message("a"))
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule(2, recorder, Message("late"))

    def test_schedule_at_current_time_allowed(self):
        sim = Simulator()
        recorder = Recorder(sim)

        class Chainer(SimModule):
            def handle_message(self, message):
                if message.name == "first":
                    self.simulator.schedule(
                        self.now, recorder, Message("same-cycle")
                    )

        chainer = Chainer(sim, "chainer")
        sim.schedule(4, chainer, Message("first"))
        sim.run()
        assert recorder.deliveries == [(4, "same-cycle")]

    def test_cancel_prevents_delivery(self):
        sim = Simulator()
        recorder = Recorder(sim)
        event = sim.schedule(5, recorder, Message("doomed"))
        sim.cancel(event)
        sim.run()
        assert recorder.deliveries == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        recorder = Recorder(sim)
        event = sim.schedule(5, recorder, Message("doomed"))
        sim.cancel(event)
        sim.cancel(event)
        sim.run()
        assert recorder.deliveries == []

    def test_handler_override(self):
        sim = Simulator()
        recorder = Recorder(sim)
        seen = []
        sim.schedule(
            1, recorder, Message("custom"), handler=lambda m: seen.append(m)
        )
        sim.run()
        assert [m.name for m in seen] == ["custom"]
        assert recorder.deliveries == []


class TestRunControl:
    def test_until_processes_events_at_boundary(self):
        sim = Simulator()
        recorder = Recorder(sim)
        sim.schedule(10, recorder, Message("at-10"))
        sim.schedule(11, recorder, Message("at-11"))
        sim.run(until=10)
        assert recorder.deliveries == [(10, "at-10")]
        assert sim.now == 10

    def test_run_continues_incrementally(self):
        sim = Simulator()
        recorder = Recorder(sim)
        sim.schedule(10, recorder, Message("a"))
        sim.schedule(20, recorder, Message("b"))
        sim.run(until=15)
        assert sim.now == 15
        sim.run(until=25)
        assert [t for t, _ in recorder.deliveries] == [10, 20]

    def test_until_advances_clock_even_without_events(self):
        sim = Simulator()
        Recorder(sim)
        sim.run(until=100)
        assert sim.now == 100

    def test_max_events_limits_processing(self):
        sim = Simulator()
        recorder = Recorder(sim)
        for t in range(5):
            sim.schedule(t, recorder, Message(f"m{t}"))
        processed = sim.run(max_events=3)
        assert processed == 3
        assert len(recorder.deliveries) == 3

    def test_run_returns_processed_count(self):
        sim = Simulator()
        recorder = Recorder(sim)
        for t in (1, 2, 3):
            sim.schedule(t, recorder, Message("m"))
        assert sim.run() == 3
        assert sim.events_processed == 3

    def test_empty_queue_stops_run(self):
        sim = Simulator()
        Recorder(sim)
        assert sim.run() == 0

    def test_run_without_stop_condition_terminates_on_drain(self):
        # run() with neither `until` nor `max_events` is legal: the
        # loop ends when the queue drains, even for event chains that
        # reschedule a bounded number of follow-ups.
        sim = Simulator()
        recorder = Recorder(sim)

        class Chain(SimModule):
            def handle_message(self, message):
                hops_left = int(message.name)
                if hops_left > 0:
                    self.simulator.schedule(
                        self.now + 2, self, Message(str(hops_left - 1))
                    )
                else:
                    self.simulator.schedule(
                        self.now, recorder, Message("done")
                    )

        chain = Chain(sim, "chain")
        sim.schedule(1, chain, Message("5"))
        processed = sim.run()
        assert processed == 7  # 6 chain hops + the final delivery
        assert recorder.deliveries == [(11, "done")]
        assert sim.pending_event_count == 0


class TestLifecycle:
    def test_initialize_called_once_before_first_event(self):
        sim = Simulator()
        recorder = Recorder(sim)
        sim.schedule(1, recorder, Message("m"))
        sim.run()
        sim.run()
        assert recorder.initialized

    def test_finalize_called_once(self):
        sim = Simulator()
        recorder = Recorder(sim)
        sim.run()
        sim.finalize()
        recorder.finalized = False
        sim.finalize()  # second call must be a no-op
        assert not recorder.finalized

    def test_duplicate_module_names_rejected(self):
        sim = Simulator()
        Recorder(sim, "twin")
        with pytest.raises(SimulationError):
            Recorder(sim, "twin")

    def test_module_registered_after_init_is_initialized_on_next_run(self):
        sim = Simulator()
        first = Recorder(sim, "first")
        sim.schedule(1, first, Message("m"))
        sim.run()
        late = Recorder(sim, "late")
        # Deferred until the next run so the subclass constructor has
        # finished before initialize() fires.
        assert not late.initialized
        sim.run()
        assert late.initialized

    def test_pending_events_counter(self):
        sim = Simulator()
        recorder = Recorder(sim)
        sim.schedule(1, recorder, Message("m"))
        sim.schedule(2, recorder, Message("m"))
        assert sim.pending_event_count == 2
        sim.run(until=1)
        assert sim.pending_event_count == 1

    def test_pending_events_iterates_live_events_only(self):
        sim = Simulator()
        recorder = Recorder(sim)
        keep = sim.schedule(1, recorder, Message("keep"))
        dropped = sim.schedule(2, recorder, Message("dropped"))
        sim.cancel(dropped)
        live = list(sim.pending_events())
        assert live == [keep]
        assert sim.pending_event_count == 1
