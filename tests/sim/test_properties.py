"""Property-based tests of the event kernel (hypothesis), run
against every registered engine — the batched engine must behave as
a perfect event kernel for generic (non-NoC) workloads too."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule


class Recorder(SimModule):
    def __init__(self, simulator, name="recorder"):
        super().__init__(simulator, name)
        self.deliveries = []

    def handle_message(self, message):
        self.deliveries.append(
            (self.now, message.kind, message.message_id)
        )


schedule_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),  # time
        st.integers(min_value=0, max_value=3),    # priority
    ),
    min_size=1,
    max_size=60,
)


ENGINES = ["wheel", "heap", "batched"]


@pytest.mark.parametrize("engine", ENGINES)
class TestOrderingProperties:
    @given(schedule_entries)
    @settings(max_examples=60, deadline=None)
    def test_deliveries_sorted_by_time_then_priority(self, engine, entries):
        sim = Simulator(engine=engine)
        recorder = Recorder(sim)
        keys = []
        for order, (time, priority) in enumerate(entries):
            message = Message(kind=priority)
            sim.schedule(time, recorder, message, priority=priority)
            keys.append((time, priority, order))
        sim.run()
        delivered = [
            (t, k) for t, k, _ in recorder.deliveries
        ]
        assert delivered == [(t, p) for t, p, _ in sorted(keys)]

    @given(schedule_entries)
    @settings(max_examples=40, deadline=None)
    def test_fifo_among_equal_keys(self, engine, entries):
        sim = Simulator(engine=engine)
        recorder = Recorder(sim)
        ids_by_key = {}
        for time, priority in entries:
            message = Message(kind=priority)
            sim.schedule(time, recorder, message, priority=priority)
            ids_by_key.setdefault((time, priority), []).append(
                message.message_id
            )
        sim.run()
        seen_by_key = {}
        for time, kind, message_id in recorder.deliveries:
            seen_by_key.setdefault((time, kind), []).append(message_id)
        assert seen_by_key == ids_by_key

    @given(
        schedule_entries,
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_runs_equal_single_run(self, engine, entries, split):
        def run(split_at):
            sim = Simulator(engine=engine)
            recorder = Recorder(sim)
            for time, priority in entries:
                sim.schedule(
                    time, recorder, Message(kind=priority),
                    priority=priority,
                )
            if split_at is None:
                sim.run()
            else:
                sim.run(until=split_at)
                sim.run()
            return [(t, k) for t, k, _ in recorder.deliveries]

        assert run(None) == run(split)

    @given(schedule_entries)
    @settings(max_examples=40, deadline=None)
    def test_cancellation_removes_exactly_those(self, engine, entries):
        sim = Simulator(engine=engine)
        recorder = Recorder(sim)
        events = []
        for time, priority in entries:
            events.append(
                sim.schedule(
                    time, recorder, Message(kind=priority),
                    priority=priority,
                )
            )
        cancelled = events[::2]
        for event in cancelled:
            sim.cancel(event)
        sim.run()
        cancelled_ids = {
            e.message.message_id for e in cancelled
        }
        delivered_ids = {
            message_id for _, _, message_id in recorder.deliveries
        }
        assert not (cancelled_ids & delivered_ids)
        assert len(recorder.deliveries) == len(events) - len(cancelled)
