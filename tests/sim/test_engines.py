"""The unified engine registry and its deprecation shims."""

import pytest

from repro.sim.engines import (
    Engine,
    available_engines,
    register_engine,
    resolve_engine,
)
from repro.sim.events import EventQueue, HeapEventQueue
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule


class Recorder(SimModule):
    def __init__(self, simulator, name="r"):
        super().__init__(simulator, name)
        self.delivered = []

    def handle_message(self, message):
        self.delivered.append((self.now, message.name))


class TestRegistry:
    def test_builtins_registered(self):
        names = [family.name for family in available_engines()]
        assert names == sorted(names)
        for expected in ("batched", "heap", "wheel"):
            assert expected in names

    def test_descriptions_nonempty(self):
        for family in available_engines():
            assert family.description

    def test_resolve_by_name_returns_fresh_instances(self):
        a = resolve_engine("wheel")
        b = resolve_engine("wheel")
        assert a is not b
        assert a.name == "wheel"

    def test_resolve_instance_passthrough(self):
        engine = resolve_engine("heap")
        assert resolve_engine(engine) is engine

    def test_resolve_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="wheel"):
            resolve_engine("warp-drive")

    def test_resolve_wrong_type(self):
        with pytest.raises(TypeError):
            resolve_engine(42)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="wheel"):

            @register_engine("wheel", description="imposter")
            class Imposter(Engine):
                pass


class TestSimulatorSelection:
    @pytest.mark.parametrize(
        "engine,queue_class",
        [("wheel", EventQueue), ("heap", HeapEventQueue)],
    )
    def test_engine_selects_queue(self, engine, queue_class):
        sim = Simulator(engine=engine)
        assert isinstance(sim._queue, queue_class)
        assert sim.engine.name == engine

    def test_engine_instance_accepted(self):
        sim = Simulator(engine=resolve_engine("heap"))
        assert isinstance(sim._queue, HeapEventQueue)

    def test_engine_and_event_queue_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            Simulator(engine="wheel", event_queue=HeapEventQueue())

    def test_event_queue_shim_warns_and_wraps(self):
        queue = HeapEventQueue()
        with pytest.warns(DeprecationWarning, match="engine"):
            sim = Simulator(event_queue=queue)
        assert sim._queue is queue
        # The wrapped queue still runs a working kernel.
        recorder = Recorder(sim)
        sim.schedule(3, recorder, Message("m"))
        sim.run()
        assert recorder.delivered == [(3, "m")]

    def test_network_threads_engine(self):
        from repro.noc.config import NocConfig
        from repro.noc.network import Network
        from repro.topology import RingTopology
        from repro.traffic import TrafficSpec, UniformTraffic

        topology = RingTopology(4)
        network = Network(
            topology,
            config=NocConfig(),
            traffic=TrafficSpec(UniformTraffic(topology), 0.1),
            seed=1,
            engine="heap",
        )
        assert network.simulator.engine.name == "heap"


class TestSettingsThreading:
    def test_settings_engine_reaches_network(self):
        from repro.experiments.runner import (
            SimulationSettings,
            run_simulation,
        )
        from repro.experiments.specs import (
            parse_pattern,
            parse_topology,
        )

        topology = parse_topology("ring16")
        pattern = parse_pattern("uniform", topology)
        settings = SimulationSettings(
            cycles=200, warmup=0, engine="batched"
        )
        wheel = run_simulation(
            topology,
            pattern,
            0.1,
            SimulationSettings(cycles=200, warmup=0),
        )
        batched = run_simulation(topology, pattern, 0.1, settings)
        assert wheel.to_dict() == batched.to_dict()

    def test_engine_changes_cache_key(self):
        from repro.experiments.parallel import point_key
        from repro.experiments.runner import (
            SimulationSettings,
            SweepPoint,
        )

        def point(engine):
            return SweepPoint(
                topology="ring16",
                pattern="uniform",
                rate=0.1,
                settings=SimulationSettings(engine=engine),
            )

        assert point_key(point("wheel")) != point_key(point("batched"))

    def test_campaign_spec_engine_key(self):
        from repro.experiments.campaign import Campaign

        campaign = Campaign(
            {
                "name": "t",
                "topologies": ["ring16"],
                "patterns": ["uniform"],
                "rates": [0.1],
                "engine": "batched",
            }
        )
        assert campaign.settings.engine == "batched"
        points = campaign.sweep_points()
        assert all(p.settings.engine == "batched" for p in points)

    def test_campaign_bad_engine_fails_fast(self):
        """An unknown engine aborts in validate() — before any
        simulation runs or CSV row is written — like a bad topology
        or pattern spec."""
        from repro.experiments.campaign import Campaign

        campaign = Campaign(
            {
                "name": "t",
                "topologies": ["ring16"],
                "patterns": ["uniform"],
                "rates": [0.1],
                "engine": "warp",
            }
        )
        with pytest.raises(ValueError, match="unknown engine"):
            campaign.validate()
