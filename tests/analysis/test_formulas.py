"""Closed-form formulas versus exhaustive BFS ground truth."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import formulas
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    average_distance,
    diameter,
    per_node_distance_sum,
)

even_sizes = st.integers(min_value=2, max_value=40).map(lambda x: 2 * x)


class TestRingFormulas:
    @given(st.integers(min_value=3, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_diameter_exact(self, n):
        assert formulas.ring_diameter(n) == diameter(RingTopology(n))

    @given(st.integers(min_value=3, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_average_distance_exact(self, n):
        expected = average_distance(RingTopology(n))
        assert formulas.ring_average_distance(n) == pytest.approx(expected)

    def test_paper_value_even(self):
        # Paper: E[D] = N/4.
        assert formulas.ring_average_distance(16) == 4.0

    def test_links(self):
        assert formulas.ring_num_links(10) == 20

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            formulas.ring_diameter(1)


class TestMeshFormulas:
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_diameter_exact(self, rows, cols):
        assert formulas.mesh_diameter(rows, cols) == diameter(
            MeshTopology(rows, cols)
        )

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_average_distance_exact(self, rows, cols):
        expected = average_distance(MeshTopology(rows, cols))
        assert formulas.mesh_average_distance(rows, cols) == pytest.approx(
            expected
        )

    def test_paper_approximation_close_for_large_meshes(self):
        exact = formulas.mesh_average_distance(8, 8)
        paper = formulas.mesh_average_distance_paper(8, 8)
        assert abs(exact - paper) / paper < 0.15

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_links_formula(self, rows, cols):
        expected = 2 * (rows - 1) * cols + 2 * (cols - 1) * rows
        assert formulas.mesh_num_links(rows, cols) == expected

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            formulas.mesh_diameter(0, 3)


class TestSpidergonFormulas:
    @given(even_sizes)
    @settings(max_examples=30, deadline=None)
    def test_diameter_exact(self, n):
        assert formulas.spidergon_diameter(n) == diameter(
            SpidergonTopology(n)
        )

    @given(even_sizes)
    @settings(max_examples=30, deadline=None)
    def test_distance_sum_exact(self, n):
        # The corrected closed form (paper's two cases are swapped).
        assert formulas.spidergon_distance_sum(n) == per_node_distance_sum(
            SpidergonTopology(n), 0
        )

    @given(even_sizes)
    @settings(max_examples=30, deadline=None)
    def test_average_distance_exact(self, n):
        expected = average_distance(SpidergonTopology(n))
        assert formulas.spidergon_average_distance(n) == pytest.approx(
            expected
        )

    def test_paper_typo_documented(self):
        # The paper's verbatim expressions swap the N=4x and N=4x+2
        # cases; they must NOT match the exact values (documenting the
        # typo), while the corrected version must.
        for n in (8, 12, 16, 20):
            exact = average_distance(SpidergonTopology(n))
            assert formulas.spidergon_average_distance(n) == pytest.approx(
                exact
            )
            assert formulas.spidergon_average_distance_paper(
                n
            ) != pytest.approx(exact)

    def test_paper_formula_matches_for_4x_plus_2_swap(self):
        # The paper's "N=4x+2" expression is actually the exact value
        # for N=4x (and vice versa).
        for n in (8, 16, 24):
            x = n // 4
            assert formulas.spidergon_distance_sum(n) == 2 * x * x + 2 * x - 1

    def test_links(self):
        assert formulas.spidergon_num_links(12) == 36

    def test_rejects_odd(self):
        with pytest.raises(ValueError):
            formulas.spidergon_diameter(7)
        with pytest.raises(ValueError):
            formulas.spidergon_average_distance(10**1 + 1)


class TestCirculantFormulas:
    @given(
        st.integers(min_value=4, max_value=48).flatmap(
            lambda n: st.tuples(
                st.just(n), st.integers(min_value=2, max_value=n // 2)
            )
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_diameter_exact(self, params):
        from repro.topology import CirculantTopology

        n, s = params
        assert formulas.circulant_diameter(n, s) == diameter(
            CirculantTopology(n, s)
        )

    @given(
        st.integers(min_value=4, max_value=48).flatmap(
            lambda n: st.tuples(
                st.just(n), st.integers(min_value=2, max_value=n // 2)
            )
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_average_distance_exact(self, params):
        from repro.topology import CirculantTopology

        n, s = params
        expected = average_distance(CirculantTopology(n, s))
        assert formulas.circulant_average_distance(n, s) == pytest.approx(
            expected
        )

    @given(
        st.integers(min_value=4, max_value=48).flatmap(
            lambda n: st.tuples(
                st.just(n), st.integers(min_value=2, max_value=n // 2)
            )
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_distance_sum_matches_tagged_node(self, params):
        from repro.topology import CirculantTopology

        n, s = params
        assert formulas.circulant_distance_sum(
            n, s
        ) == per_node_distance_sum(CirculantTopology(n, s), 0)

    @given(even_sizes)
    @settings(max_examples=25, deadline=None)
    def test_diametral_chord_reduces_to_spidergon(self, n):
        n = max(n, 8)
        assert formulas.circulant_diameter(
            n, n // 2
        ) == formulas.spidergon_diameter(n)
        assert formulas.circulant_average_distance(
            n, n // 2
        ) == pytest.approx(formulas.spidergon_average_distance(n))
        assert formulas.circulant_num_links(
            n, n // 2
        ) == formulas.spidergon_num_links(n)

    def test_links_proper_chord(self):
        from repro.topology import CirculantTopology

        for n, s in [(16, 4), (15, 5), (20, 7)]:
            assert formulas.circulant_num_links(n, s) == 4 * n
            assert formulas.circulant_num_links(n, s) == len(
                CirculantTopology(n, s).links()
            )


class TestMesh3DFormulas:
    DIMS = [(2, 2, 2), (3, 3, 3), (4, 3, 2), (1, 4, 3), (4, 4, 4)]

    @pytest.mark.parametrize("dims", DIMS)
    def test_diameter_exact(self, dims):
        from repro.topology import Mesh3DTopology

        assert formulas.mesh3d_diameter(*dims) == diameter(
            Mesh3DTopology(*dims)
        )

    @pytest.mark.parametrize("dims", DIMS)
    def test_average_distance_exact(self, dims):
        from repro.topology import Mesh3DTopology

        expected = average_distance(Mesh3DTopology(*dims))
        assert formulas.mesh3d_average_distance(*dims) == pytest.approx(
            expected
        )

    @pytest.mark.parametrize("dims", DIMS)
    def test_link_counts_exact(self, dims):
        from repro.topology import Mesh3DTopology
        from repro.topology.base import TSV

        topology = Mesh3DTopology(*dims)
        assert formulas.mesh3d_num_links(*dims) == topology.num_links
        assert formulas.mesh3d_num_tsv_links(*dims) == sum(
            1 for link in topology.links() if link.kind == TSV
        )

    def test_single_layer_rejected(self):
        with pytest.raises(ValueError):
            formulas.mesh3d_diameter(4, 4, 1)
        with pytest.raises(ValueError):
            formulas.mesh3d_average_distance(0, 4, 2)


class TestTorus3DFormulas:
    DIMS = [(3, 3, 3), (4, 3, 3), (3, 4, 5), (4, 4, 4), (5, 3, 4)]

    @pytest.mark.parametrize("dims", DIMS)
    def test_diameter_exact(self, dims):
        from repro.topology import Torus3DTopology

        assert formulas.torus3d_diameter(*dims) == diameter(
            Torus3DTopology(*dims)
        )

    @pytest.mark.parametrize("dims", DIMS)
    def test_average_distance_exact(self, dims):
        from repro.topology import Torus3DTopology

        expected = average_distance(Torus3DTopology(*dims))
        assert formulas.torus3d_average_distance(*dims) == pytest.approx(
            expected
        )

    @pytest.mark.parametrize("dims", DIMS)
    def test_link_counts_exact(self, dims):
        from repro.topology import Torus3DTopology
        from repro.topology.base import TSV

        topology = Torus3DTopology(*dims)
        assert formulas.torus3d_num_links(*dims) == topology.num_links
        assert formulas.torus3d_num_tsv_links(*dims) == sum(
            1 for link in topology.links() if link.kind == TSV
        )

    def test_cube_beats_planar_mesh_on_distance(self):
        # The stacking study's static story: at N=64 the 3D forms
        # shorten paths (mesh8x8 E[D]=5.25 > mesh3d4x4x4 > torus3d).
        planar = formulas.mesh_average_distance(8, 8)
        cube = formulas.mesh3d_average_distance(4, 4, 4)
        wrapped = formulas.torus3d_average_distance(4, 4, 4)
        assert planar > cube > wrapped
