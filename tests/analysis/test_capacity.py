"""Tests for channel-load capacity analysis."""

import pytest

from repro.analysis.capacity import (
    channel_loads,
    hotspot_flows,
    hotspot_saturation_rate,
    max_channel_load,
    uniform_capacity,
    uniform_flows,
    uniform_saturation_rate,
)
from repro.routing import routing_for
from repro.routing.base import LOCAL_PORT
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    TorusTopology,
)


class TestChannelLoads:
    def test_single_flow_loads_path_channels(self):
        topology = RingTopology(8)
        routing = routing_for(topology)
        loads = channel_loads(routing, [(0, 2, 0.5)])
        assert loads[(0, "cw")] == pytest.approx(0.5)
        assert loads[(1, "cw")] == pytest.approx(0.5)
        assert loads[(2, LOCAL_PORT)] == pytest.approx(0.5)
        assert (2, "cw") not in loads

    def test_flows_superpose(self):
        topology = RingTopology(8)
        routing = routing_for(topology)
        loads = channel_loads(
            routing, [(0, 2, 0.3), (1, 3, 0.4)]
        )
        assert loads[(1, "cw")] == pytest.approx(0.7)

    def test_rejects_bad_flows(self):
        routing = routing_for(RingTopology(8))
        with pytest.raises(ValueError):
            channel_loads(routing, [(0, 0, 0.1)])
        with pytest.raises(ValueError):
            channel_loads(routing, [(0, 1, -0.1)])

    def test_total_injected_equals_total_ejected(self):
        routing = routing_for(SpidergonTopology(12))
        flows = uniform_flows(routing, 0.5)
        loads = channel_loads(routing, flows)
        ejected = sum(
            load
            for (node, port), load in loads.items()
            if port == LOCAL_PORT
        )
        assert ejected == pytest.approx(12 * 0.5)


class TestUniformBounds:
    def test_ring_bound_matches_bisection_formula(self):
        # Even ring, uniform, shortest-direction routing: the known
        # per-channel load is N^2/8 pair-loads / (N(N-1)) ... check
        # against first principles via simulation of the formula:
        # lambda_sat = 8(N-1)/N^2 approximately for even N.
        for n in (8, 16, 32):
            routing = routing_for(RingTopology(n))
            bound = uniform_saturation_rate(routing)
            assert bound == pytest.approx(8 * (n - 1) / n**2, rel=0.2)

    def test_ordering_matches_figure_10(self):
        # The bound predicts the paper's ranking: ring well below
        # spidergon and mesh.
        ring = uniform_capacity(routing_for(RingTopology(16)))
        spider = uniform_capacity(routing_for(SpidergonTopology(16)))
        mesh = uniform_capacity(routing_for(MeshTopology(4, 4)))
        assert ring < spider
        assert ring < mesh

    def test_torus_at_least_mesh(self):
        mesh = uniform_capacity(routing_for(MeshTopology(4, 4)))
        torus = uniform_capacity(routing_for(TorusTopology(4, 4)))
        assert torus >= mesh

    def test_ring_capacity_flat_in_n(self):
        # Ring aggregate capacity is ~8 flits/cycle regardless of N —
        # exactly the flat ring ceiling measured in figure 10.
        caps = [
            uniform_capacity(routing_for(RingTopology(n)))
            for n in (8, 16, 24, 32)
        ]
        # Converges to 8 from below as N grows: 8(N-1)/N per node
        # aggregate... the point is the ceiling does not scale with N.
        assert all(5.0 <= cap <= 8.0 for cap in caps)
        assert caps == sorted(caps)

    def test_bound_is_an_upper_bound_on_simulation(self):
        from repro.noc.config import NocConfig
        from repro.noc.network import Network
        from repro.traffic import TrafficSpec, UniformTraffic

        for topology in (
            RingTopology(16),
            SpidergonTopology(16),
            MeshTopology(4, 4),
        ):
            bound = uniform_capacity(routing_for(topology))
            net = Network(
                topology,
                config=NocConfig(source_queue_packets=16),
                traffic=TrafficSpec(UniformTraffic(topology), 0.9),
                seed=3,
            )
            measured = net.run(cycles=4_000, warmup=1_000).throughput
            assert measured <= bound + 1e-9


class TestHotspotBounds:
    def test_ejection_channel_dominates(self):
        # One target, S sources: lambda_sat = 1/S regardless of
        # topology — figure 6's topology-independence.
        for topology in (
            RingTopology(16),
            SpidergonTopology(16),
            MeshTopology(4, 4),
        ):
            bound = hotspot_saturation_rate(
                routing_for(topology), [0]
            )
            assert bound == pytest.approx(1 / 15)

    def test_two_targets_double_the_rate(self):
        # Two sinks, 14 sources: each sink absorbs half of every
        # source's traffic, so lambda_sat = 1 / (14/2) = 1/7 — about
        # twice the single-target rate (figure 8's doubled ceiling).
        routing = routing_for(SpidergonTopology(16))
        one = hotspot_saturation_rate(routing, [0])
        two = hotspot_saturation_rate(routing, [0, 8])
        assert one == pytest.approx(1 / 15)
        assert two == pytest.approx(1 / 7)

    def test_requires_targets(self):
        routing = routing_for(RingTopology(8))
        with pytest.raises(ValueError):
            hotspot_flows(routing, [])
