"""Tests for the M/D/1 hot-spot latency model, against simulation."""

import pytest

from repro.analysis.queueing import (
    md1_waiting_time,
    mm1_waiting_time,
    predicted_hotspot_latency,
    utilization,
)
from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.topology import SpidergonTopology, average_distance
from repro.traffic import HotspotTraffic, TrafficSpec


class TestFormulas:
    def test_utilization(self):
        assert utilization(15, 1 / 15) == pytest.approx(1.0)
        assert utilization(10, 0.05) == pytest.approx(0.5)
        assert utilization(10, 0.1, num_targets=2) == pytest.approx(0.5)

    def test_md1_zero_at_zero_load(self):
        assert md1_waiting_time(6, 0.0) == 0.0

    def test_md1_grows_toward_saturation(self):
        waits = [md1_waiting_time(6, rho) for rho in (0.2, 0.5, 0.8)]
        assert waits == sorted(waits)
        assert waits[-1] == pytest.approx(0.8 * 6 / (2 * 0.2))

    def test_mm1_is_twice_md1(self):
        assert mm1_waiting_time(6, 0.6) == pytest.approx(
            2 * md1_waiting_time(6, 0.6)
        )

    def test_saturation_rejected(self):
        with pytest.raises(ValueError):
            md1_waiting_time(6, 1.0)
        with pytest.raises(ValueError):
            predicted_hotspot_latency(2.0, 6, 15, 1 / 15)

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            utilization(0, 0.1)
        with pytest.raises(ValueError):
            md1_waiting_time(0, 0.5)
        with pytest.raises(ValueError):
            predicted_hotspot_latency(2.0, 0, 15, 0.01)


class TestAgainstSimulation:
    def _simulate(self, rate, n=16, cycles=30_000):
        topology = SpidergonTopology(n)
        net = Network(
            topology,
            config=NocConfig(source_queue_packets=256),
            traffic=TrafficSpec(HotspotTraffic(topology, [0]), rate),
            seed=9,
        )
        return topology, net.run(cycles=cycles, warmup=6_000)

    @pytest.mark.parametrize("rho", [0.3, 0.6])
    def test_prediction_within_tolerance_below_knee(self, rho):
        n = 16
        sources = n - 1
        rate = rho / sources
        topology, result = self._simulate(rate)
        # Mean hop count of hot-spot traffic: average distance from
        # the sources to node 0 — by vertex symmetry the per-node
        # mean over distinct pairs.
        mean_hops = average_distance(topology, include_self=False)
        predicted = predicted_hotspot_latency(
            mean_hops, 6, sources, rate
        )
        assert result.avg_latency == pytest.approx(predicted, rel=0.30)

    def test_prediction_bracketed_by_md1_mm1_at_moderate_load(self):
        n = 16
        sources = n - 1
        rho = 0.6
        rate = rho / sources
        topology, result = self._simulate(rate)
        mean_hops = average_distance(topology, include_self=False)
        zero_load = 2 * mean_hops + 6 + 2
        low = zero_load + md1_waiting_time(6, rho) * 0.5
        high = zero_load + mm1_waiting_time(6, rho) * 2.5
        assert low < result.avg_latency < high
