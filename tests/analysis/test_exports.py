"""The analysis package's public surface stays importable and sane."""

import repro.analysis as analysis


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in analysis.__all__:
            assert getattr(analysis, name) is not None

    def test_formula_and_exact_agree_for_paper_sizes(self):
        # The cross-package consistency the figures rely on, at the
        # node counts the paper simulates.
        from repro.topology import SpidergonTopology, average_distance

        for n in (8, 16, 24, 32):
            assert analysis.spidergon_average_distance(n) == (
                average_distance(SpidergonTopology(n))
            )

    def test_capacity_and_queueing_compose(self):
        # The two analytical models agree on where the hot-spot knee
        # sits: utilization 1.0 at the capacity bound's rate.
        from repro.analysis.queueing import utilization
        from repro.routing import routing_for
        from repro.topology import SpidergonTopology

        topology = SpidergonTopology(16)
        knee = analysis.hotspot_saturation_rate(
            routing_for(topology), [0]
        )
        assert utilization(15, knee) == 1.0
