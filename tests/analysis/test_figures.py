"""Tests of the figure 2/3 series and their paper-claimed shapes."""

import math

import pytest

from repro.analysis.figures import (
    FigureSeries,
    figure2_diameter_series,
    figure3_average_distance_series,
    ideal_mesh_average_distance,
    ideal_mesh_diameter,
)


def series_by_label(series_list):
    return {s.label: s for s in series_list}


class TestFigureSeries:
    def test_add_and_lookup(self):
        s = FigureSeries("x")
        s.add(4, 1.0)
        s.add(6, 2.0)
        assert s.value_at(6) == 2.0

    def test_missing_point_raises(self):
        s = FigureSeries("x")
        with pytest.raises(KeyError):
            s.value_at(10)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            figure2_diameter_series(10, 4)
        with pytest.raises(ValueError):
            figure2_diameter_series(2, 8)


class TestIdealMeshCurves:
    def test_diameter_at_perfect_squares(self):
        assert ideal_mesh_diameter(16) == pytest.approx(6)
        assert ideal_mesh_diameter(64) == pytest.approx(14)

    def test_average_distance_scaling(self):
        assert ideal_mesh_average_distance(36) == pytest.approx(4)

    def test_monotone_in_n(self):
        values = [ideal_mesh_diameter(n) for n in range(4, 65)]
        assert values == sorted(values)


class TestFigure2Shapes:
    """Paper claims about figure 2, checked on the generated data."""

    @pytest.fixture(scope="class")
    def series(self):
        return series_by_label(figure2_diameter_series(4, 64))

    def test_five_series_present(self, series):
        assert set(series) == {
            "ring",
            "ideal-mesh",
            "real-mesh",
            "irregular-mesh",
            "spidergon",
        }

    def test_spidergon_below_real_mesh_up_to_40(self, series):
        # "the Spidergon NoC has lower ND than regular 2D meshes at
        # least up to 40-45 nodes".
        for n in range(6, 41, 2):
            assert (
                series["spidergon"].value_at(n)
                <= series["real-mesh"].value_at(n)
            )

    def test_real_mesh_fluctuates_up_to_ring(self, series):
        # At N = 2 * prime the best factorization is 2 x (N/2) and the
        # diameter reaches the ring's value.
        for n in (22, 26, 34, 46, 58, 62):
            assert series["real-mesh"].value_at(n) == series[
                "ring"
            ].value_at(n)

    def test_real_mesh_touches_ideal_at_squares(self, series):
        for n in (4, 16, 36, 64):
            assert series["real-mesh"].value_at(n) == pytest.approx(
                ideal_mesh_diameter(n)
            )

    def test_ring_diameter_linear(self, series):
        for n in range(4, 65, 2):
            assert series["ring"].value_at(n) == n // 2

    def test_irregular_mesh_tracks_ideal(self, series):
        # The partially filled near-square grid never degenerates.
        for n in range(4, 65, 2):
            assert (
                series["irregular-mesh"].value_at(n)
                <= 2 * math.ceil(math.sqrt(n))
            )


class TestFigure3Shapes:
    @pytest.fixture(scope="class")
    def series(self):
        return series_by_label(figure3_average_distance_series(4, 64))

    def test_spidergon_outperforms_ring(self, series):
        # "Spidergon outperforms Ring".
        for n in range(6, 65, 2):
            assert (
                series["spidergon"].value_at(n)
                < series["ring"].value_at(n)
            )

    def test_spidergon_within_real_mesh_range(self, series):
        # "works on the middle of the value range of the real mesh
        # implementations": across the sweep, spidergon E[D] is
        # bracketed by the best and worst real-mesh values at nearby
        # sizes; check it never exceeds the worst real mesh.
        for n in range(8, 65, 2):
            assert (
                series["spidergon"].value_at(n)
                <= series["real-mesh"].value_at(n) + 1e-9
                or series["spidergon"].value_at(n)
                <= series["ring"].value_at(n)
            )

    def test_ring_average_is_quarter_n(self, series):
        for n in range(4, 65, 2):
            assert series["ring"].value_at(n) == pytest.approx(n / 4)

    def test_all_series_positive_and_increasing_overall(self, series):
        for label in ("ring", "ideal-mesh", "spidergon"):
            values = [
                series[label].value_at(n) for n in range(4, 65, 2)
            ]
            assert values[0] < values[-1]
            assert all(v > 0 for v in values)
