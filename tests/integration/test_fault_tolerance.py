"""End-to-end fault tolerance across the paper's three topologies.

Two layers are combined here: *build-time* degradation
(:class:`~repro.topology.faults.FaultyTopology` — the network was
manufactured with dead links) and *runtime* faults
(:class:`~repro.resilience.FaultInjector` — links die mid-run).  Both
must leave the model's structural invariants intact on ring, spidergon
and mesh.
"""

import pytest

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.specs import parse_pattern, parse_topology
from repro.noc.config import NocConfig
from repro.noc.invariants import InvariantChecker
from repro.noc.network import Network
from repro.resilience import FaultInjector, FaultPlan
from repro.topology.faults import FaultyTopology
from repro.traffic import UniformTraffic
from repro.traffic.base import TrafficSpec

# A pure ring disconnects when it loses two links, so it gets one
# build-time fault; spidergon and mesh have the redundancy for two.
TOPOLOGIES = [("ring16", 1), ("spidergon16", 2), ("mesh4x4", 2)]

QUICK = SimulationSettings(
    cycles=2_500,
    warmup=400,
    config=NocConfig(source_queue_packets=16),
    seed=21,
)


@pytest.mark.parametrize("spec,count", TOPOLOGIES)
class TestBuildTimeFaults:
    def test_degraded_topology_still_delivers(self, spec, count):
        base = parse_topology(spec)
        topology = FaultyTopology.with_random_faults(
            base, count, seed=5
        )
        pattern = parse_pattern("uniform", topology)
        result = run_simulation(topology, pattern, 0.08, QUICK)
        assert result.packets_delivered > 0
        assert not result.degraded
        assert result.flits_dropped == 0

    def test_spec_string_round_trip(self, spec, count):
        topology = parse_topology(f"faulty:{spec}:{count}@5")
        direct = FaultyTopology.with_random_faults(
            parse_topology(spec), count, seed=5
        )
        assert topology.failed_links == direct.failed_links


@pytest.mark.parametrize("spec,count", TOPOLOGIES)
class TestRuntimeFaults:
    def test_transient_fault_preserves_invariants(self, spec, count):
        topology = parse_topology(spec)
        network = Network(
            topology,
            config=NocConfig(source_queue_packets=16),
            traffic=TrafficSpec(UniformTraffic(topology), 0.08),
            seed=21,
        )
        plan = FaultPlan.random_faults(
            topology, 1, at=600, repair_after=800, seed=3
        )
        FaultInjector(network, plan)
        result = network.run(cycles=2_500, warmup=400)
        InvariantChecker(network).check_all()
        assert network.dead_links == frozenset()
        assert result.packets_delivered > 0

    def test_runtime_faults_through_settings(self, spec, count):
        topology = parse_topology(spec)
        pattern = parse_pattern("uniform", topology)
        plan = FaultPlan.random_faults(topology, 1, at=600, seed=3)
        settings = SimulationSettings(
            cycles=2_500,
            warmup=400,
            config=NocConfig(source_queue_packets=16),
            seed=21,
            fault_plan=plan,
            stall_cycles=1_000,
            invariant_check_interval=500,
        )
        result = run_simulation(topology, pattern, 0.08, settings)
        # One dead link never disconnects these topologies, so even a
        # degraded abort (a detour-induced wormhole cycle is legal on
        # the ring) must come from the watchdog, not a violation.
        assert "resilience" in result.extra
        summary = result.extra["resilience"]
        assert summary["dead_links"] == [
            f"{a}-{b}" for a, b in sorted(
                e.link for e in plan.events
            )
        ]
