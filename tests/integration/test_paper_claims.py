"""Integration tests: the paper's qualitative claims, at reduced scale.

These runs are sized for CI (seconds each); the benchmarks regenerate
the full figures.  Each test cites the claim it checks.
"""

import pytest

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.noc.config import NocConfig
from repro.stats import detect_saturation_point
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    average_distance,
)
from repro.traffic import HotspotTraffic, UniformTraffic

SETTINGS = SimulationSettings(
    cycles=6_000,
    warmup=1_500,
    config=NocConfig(source_queue_packets=32),
    seed=42,
)


def topologies(n):
    return (
        RingTopology(n),
        SpidergonTopology(n),
        MeshTopology.factorized(n),
    )


class TestFigure5Validation:
    """Simulated mean hop count tracks the analytical E[D]."""

    @pytest.mark.parametrize("n", [8, 16])
    def test_sim_matches_analytic(self, n):
        for topology in topologies(n):
            result = run_simulation(
                topology, UniformTraffic(topology), 0.05, SETTINGS
            )
            analytic = average_distance(topology, include_self=False)
            assert result.avg_hops == pytest.approx(analytic, rel=0.12)

    def test_ring_has_worst_average(self):
        # "Ring has the worst average performances".
        hops = {}
        for topology in topologies(16):
            result = run_simulation(
                topology, UniformTraffic(topology), 0.05, SETTINGS
            )
            hops[topology.name] = result.avg_hops
        assert hops["ring16"] > hops["spidergon16"]
        assert hops["ring16"] > hops["mesh4x4"]


class TestFigure6HotspotThroughput:
    """One hot-spot: the destination, not the topology, is the
    bottleneck — throughput curves coincide and saturate at the sink's
    1 flit/cycle absorption."""

    def test_topology_irrelevant_under_hotspot(self):
        saturated = {}
        for topology in topologies(16):
            result = run_simulation(
                topology, HotspotTraffic(topology, [0]), 0.4, SETTINGS
            )
            saturated[topology.name] = result.throughput
        values = list(saturated.values())
        assert max(values) - min(values) < 0.08
        for value in values:
            assert value == pytest.approx(1.0, abs=0.07)

    def test_linear_absorption_before_saturation(self):
        # "linear absorption from the (single) destination node".
        topology = SpidergonTopology(16)
        low = run_simulation(
            topology, HotspotTraffic(topology, [0]), 0.02, SETTINGS
        )
        offered = 0.02 * 15
        assert low.throughput == pytest.approx(offered, rel=0.12)

    def test_mesh_target_position_immaterial(self):
        # "Destination nodes have been taken in different points on
        # the Mesh topology" with no throughput difference.
        mesh = MeshTopology(4, 4)
        corner = run_simulation(
            mesh, HotspotTraffic(mesh, [0]), 0.4, SETTINGS
        )
        middle = run_simulation(
            mesh,
            HotspotTraffic(mesh, [mesh.center_node()]),
            0.4,
            SETTINGS,
        )
        assert corner.throughput == pytest.approx(
            middle.throughput, rel=0.08
        )


class TestFigure7HotspotLatency:
    """Latency knees when the hot-spot saturates, regardless of
    topology; more sources bring the knee earlier."""

    RATES = [0.02, 0.05, 0.08, 0.12, 0.2]

    def _knee(self, topology):
        latencies = []
        for rate in self.RATES:
            result = run_simulation(
                topology, HotspotTraffic(topology, [0]), rate, SETTINGS
            )
            latencies.append(result.avg_latency)
        return detect_saturation_point(self.RATES, latencies)

    def test_knee_is_topology_independent(self):
        knees = {t.name: self._knee(t) for t in topologies(16)}
        assert len(set(knees.values())) == 1

    def test_more_sources_knee_earlier(self):
        small = self._knee(SpidergonTopology(8))
        large = self._knee(SpidergonTopology(24))
        assert large is not None
        assert small is None or large <= small


class TestFigure8DoubleHotspot:
    """Two hot-spots double the absorption ceiling; placement is a
    second-order effect."""

    def test_two_sinks_absorb_two_flits_per_cycle(self):
        topology = SpidergonTopology(16)
        result = run_simulation(
            topology, HotspotTraffic(topology, [0, 8]), 0.5, SETTINGS
        )
        assert result.throughput == pytest.approx(2.0, abs=0.25)

    def test_placement_secondary(self):
        from repro.traffic import double_hotspot_targets

        topology = SpidergonTopology(16)
        results = []
        for scenario in ("A", "B"):
            targets = double_hotspot_targets(topology, scenario)
            results.append(
                run_simulation(
                    topology,
                    HotspotTraffic(topology, targets),
                    0.5,
                    SETTINGS,
                ).throughput
            )
        assert results[0] == pytest.approx(results[1], rel=0.2)


class TestFigure10UniformThroughput:
    """Homogeneous traffic: Spidergon and Mesh outperform Ring; Mesh
    beats Spidergon only at larger N and high load."""

    def test_ring_worst_at_high_load(self):
        peaks = {}
        for topology in topologies(16):
            result = run_simulation(
                topology, UniformTraffic(topology), 0.6, SETTINGS
            )
            peaks[topology.name] = result.throughput
        assert peaks["ring16"] < peaks["spidergon16"]
        assert peaks["ring16"] < peaks["mesh4x4"]

    def test_mesh_beats_spidergon_only_at_high_load(self):
        # At low load all topologies accept the offered traffic; the
        # mesh's advantage appears beyond the paper's ~0.3 crossover.
        topology_m = MeshTopology.factorized(24)
        topology_s = SpidergonTopology(24)
        low_m = run_simulation(
            topology_m, UniformTraffic(topology_m), 0.1, SETTINGS
        )
        low_s = run_simulation(
            topology_s, UniformTraffic(topology_s), 0.1, SETTINGS
        )
        assert low_m.throughput == pytest.approx(
            low_s.throughput, rel=0.05
        )
        high_m = run_simulation(
            topology_m, UniformTraffic(topology_m), 0.6, SETTINGS
        )
        high_s = run_simulation(
            topology_s, UniformTraffic(topology_s), 0.6, SETTINGS
        )
        assert high_m.throughput > high_s.throughput


class TestFigure11UniformLatency:
    """Ring saturates first under homogeneous traffic."""

    RATES = [0.05, 0.1, 0.2, 0.35, 0.55]

    def test_ring_knee_earliest(self):
        knees = {}
        for topology in topologies(16):
            latencies = []
            for rate in self.RATES:
                result = run_simulation(
                    topology, UniformTraffic(topology), rate, SETTINGS
                )
                latencies.append(result.avg_latency)
            knees[topology.name] = detect_saturation_point(
                self.RATES, latencies
            )
        ring_knee = knees["ring16"]
        assert ring_knee is not None
        for name, knee in knees.items():
            if name != "ring16":
                assert knee is None or knee >= ring_knee
