"""Engine equivalence on real campaign points.

The engines are pure performance changes: for one representative
figure point per registered topology family, running the identical
network/seed on the reference heap queue or on the batched
cycle-synchronous engine must produce a byte-identical ``RunResult``
— every metric, down to the event count — and deliver the identical
event trace.  Fault-plan and watchdog-truncated runs are part of the
contract too: resilience behaviour may not depend on the engine.
"""

import pytest

from repro.experiments.specs import available_topologies, parse_topology
from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.resilience.injector import FaultInjector
from repro.resilience.plan import FaultPlan
from repro.resilience.watchdog import StallWatchdog
from repro.sim.events import Event, HeapEventQueue
from repro.sim.kernel import Simulator
from repro.sim.observers import Observer
from repro.topology import RingTopology
from repro.traffic import TrafficSpec, UniformTraffic

FAMILY_EXAMPLES = sorted(
    family.example for family in available_topologies()
)

OTHER_ENGINES = ["heap", "batched"]


def _run_point(
    spec,
    engine,
    cycles=600,
    warmup=100,
    rate=0.15,
    fault_plan=None,
    observer_factory=None,
):
    topology = parse_topology(spec)
    network = Network(
        topology,
        config=NocConfig(source_queue_packets=8),
        traffic=TrafficSpec(UniformTraffic(topology), rate),
        seed=11,
        engine=engine,
    )
    if fault_plan is not None:
        FaultInjector(network, fault_plan)
    observer = (
        observer_factory(network)
        if observer_factory is not None
        else None
    )
    result = network.run(cycles=cycles, warmup=warmup)
    return result, observer


class TestRunResultEquivalence:
    @pytest.mark.parametrize("engine", OTHER_ENGINES)
    @pytest.mark.parametrize("spec", FAMILY_EXAMPLES)
    def test_byte_identical_metrics(self, spec, engine):
        """Every registered family example: the wheel kernel and
        *engine* agree on every RunResult field."""
        wheel, _ = _run_point(spec, "wheel")
        other, _ = _run_point(spec, engine)
        assert wheel.to_dict() == other.to_dict()

    @pytest.mark.parametrize("engine", OTHER_ENGINES)
    def test_fault_plan_equivalence(self, engine):
        """A mid-run link failure (kill + purge + detour) and repair
        produce identical results on every engine."""
        plan = FaultPlan.single(5, 6, at=120, repair_at=400)
        wheel, _ = _run_point("mesh4x4", "wheel", fault_plan=plan)
        other, _ = _run_point("mesh4x4", engine, fault_plan=plan)
        assert wheel.degraded == other.degraded
        assert wheel.to_dict() == other.to_dict()

    @pytest.mark.parametrize("engine", OTHER_ENGINES)
    def test_stall_truncated_equivalence(self, engine):
        """A watchdog-aborted run (the watchdog is an observer, so
        the batched engine runs its slow path) truncates at the
        identical cycle with the identical result."""
        plan = FaultPlan.single(0, 1, at=50)

        def attach(network):
            return StallWatchdog(network, stall_cycles=150)

        wheel, wd_wheel = _run_point(
            "ring16",
            "wheel",
            rate=0.05,
            fault_plan=plan,
            observer_factory=attach,
        )
        other, wd_other = _run_point(
            "ring16",
            engine,
            rate=0.05,
            fault_plan=plan,
            observer_factory=attach,
        )
        assert wd_wheel.tripped == wd_other.tripped
        assert wheel.to_dict() == other.to_dict()


class _DeliveryTrace(Observer):
    def __init__(self):
        self.records = []

    def on_event_delivered(self, simulator, event: Event) -> None:
        message = event.message
        self.records.append(
            (
                event.time,
                event.priority,
                event.sequence,
                type(message).__name__,
                message.name,
                event.target.name if event.target else None,
            )
        )

    def on_time_advanced(self, simulator, old, new) -> None:
        self.records.append(("advance", old, new))


class TestDeliveryTraceEquivalence:
    def test_observer_sees_identical_event_stream(self):
        """Stronger than metric equality: the full (time, priority,
        sequence, message, target) delivery stream matches across all
        three engines.  With an observer attached the batched engine
        takes its slow path, which must be a perfect event kernel."""
        traces = []
        for engine in ("wheel", "heap", "batched"):
            topology = RingTopology(8)
            network = Network(
                topology,
                config=NocConfig(source_queue_packets=8),
                traffic=TrafficSpec(UniformTraffic(topology), 0.2),
                seed=5,
                engine=engine,
            )
            trace = _DeliveryTrace()
            network.simulator.add_observer(trace)
            network.run(cycles=400)
            traces.append(trace.records)
        assert traces[0] == traces[1] == traces[2]
        assert len(traces[0]) > 1_000  # a real workload, not a stub


class TestEnvironmentSelector:
    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        sim = Simulator()
        assert isinstance(sim._queue, HeapEventQueue)
        assert sim.engine.name == "heap"

    def test_legacy_env_var_warns_and_maps(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "heap")
        with pytest.warns(DeprecationWarning, match="REPRO_ENGINE"):
            sim = Simulator()
        assert isinstance(sim._queue, HeapEventQueue)

    def test_default_is_timing_wheel(self, monkeypatch):
        from repro.sim.events import EventQueue

        monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        sim = Simulator()
        assert isinstance(sim._queue, EventQueue)
        assert sim.engine.name == "wheel"
