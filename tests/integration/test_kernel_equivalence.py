"""Heap-vs-wheel kernel equivalence on real campaign points.

The timing-wheel future-event set is a pure performance change: for
one representative figure point per topology (ring, spidergon, 2D
mesh), running the identical network/seed on the reference heap queue
must produce a byte-identical ``RunResult`` — every metric, down to
the event count — and deliver the identical event trace.
"""

import pytest

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.sim.events import Event, HeapEventQueue
from repro.sim.kernel import Simulator
from repro.sim.observers import Observer
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
)
from repro.traffic import TrafficSpec, UniformTraffic

TOPOLOGIES = {
    "ring16": lambda: RingTopology(16),
    "spidergon16": lambda: SpidergonTopology(16),
    "mesh4x4": lambda: MeshTopology(4, 4),
}


def _run_point(topology_factory, event_queue):
    topology = topology_factory()
    network = Network(
        topology,
        config=NocConfig(source_queue_packets=8),
        traffic=TrafficSpec(UniformTraffic(topology), 0.15),
        seed=11,
        event_queue=event_queue,
    )
    return network.run(cycles=1_500, warmup=300)


class TestRunResultEquivalence:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_byte_identical_metrics(self, name):
        factory = TOPOLOGIES[name]
        wheel = _run_point(factory, None)  # default: timing wheel
        heap = _run_point(factory, HeapEventQueue())
        assert wheel.to_dict() == heap.to_dict()


class _DeliveryTrace(Observer):
    def __init__(self):
        self.records = []

    def on_event_delivered(self, simulator, event: Event) -> None:
        message = event.message
        self.records.append(
            (
                event.time,
                event.priority,
                event.sequence,
                type(message).__name__,
                message.name,
                event.target.name if event.target else None,
            )
        )

    def on_time_advanced(self, simulator, old, new) -> None:
        self.records.append(("advance", old, new))


class TestDeliveryTraceEquivalence:
    def test_observer_sees_identical_event_stream(self):
        """Stronger than metric equality: the full (time, priority,
        sequence, message, target) delivery stream matches, so the
        two queues are interchangeable under observation too."""
        traces = []
        for queue in (None, HeapEventQueue()):
            topology = RingTopology(8)
            network = Network(
                topology,
                config=NocConfig(source_queue_packets=8),
                traffic=TrafficSpec(UniformTraffic(topology), 0.2),
                seed=5,
                event_queue=queue,
            )
            trace = _DeliveryTrace()
            network.simulator.add_observer(trace)
            network.run(cycles=400)
            traces.append(trace.records)
        assert traces[0] == traces[1]
        assert len(traces[0]) > 1_000  # a real workload, not a stub


class TestEnvironmentSelector:
    def test_env_var_selects_reference_heap(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "heap")
        sim = Simulator()
        assert isinstance(sim._queue, HeapEventQueue)

    def test_default_is_timing_wheel(self, monkeypatch):
        from repro.sim.events import EventQueue

        monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
        sim = Simulator()
        assert isinstance(sim._queue, EventQueue)
