"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.noc.config import NocConfig
from repro.experiments.runner import SimulationSettings


@pytest.fixture
def quick_settings() -> SimulationSettings:
    """Short-run settings for integration tests (seconds, not minutes)."""
    return SimulationSettings(
        cycles=3_000,
        warmup=600,
        config=NocConfig(source_queue_packets=32),
        seed=1234,
    )


def make_network(topology, pattern, rate, *, cycles=3_000, warmup=600,
                 seed=7, **config_overrides):
    """Build-and-run helper used across noc/integration tests.

    Returns ``(network, result)`` so tests can inspect internal state
    after the run.
    """
    from repro.noc.network import Network
    from repro.traffic.base import TrafficSpec

    defaults = {"source_queue_packets": 32}
    defaults.update(config_overrides)
    config = NocConfig(**defaults)
    network = Network(
        topology,
        config=config,
        traffic=TrafficSpec(pattern, rate),
        seed=seed,
    )
    result = network.run(cycles=cycles, warmup=warmup)
    return network, result
