"""Analytical model of the paper's Section 2.

Closed-form network diameter and average-distance expressions for
Ring, 2D Mesh and Spidergon, plus the series behind figures 2 and 3.
"""

from repro.analysis.formulas import (
    mesh3d_average_distance,
    mesh3d_diameter,
    mesh3d_num_links,
    mesh3d_num_tsv_links,
    mesh_average_distance,
    mesh_average_distance_paper,
    mesh_diameter,
    mesh_num_links,
    ring_average_distance,
    ring_diameter,
    ring_num_links,
    spidergon_average_distance,
    spidergon_average_distance_paper,
    spidergon_diameter,
    spidergon_distance_sum,
    spidergon_num_links,
    torus3d_average_distance,
    torus3d_diameter,
    torus3d_num_links,
    torus3d_num_tsv_links,
)
from repro.analysis.capacity import (
    channel_loads,
    hotspot_saturation_rate,
    uniform_capacity,
    uniform_saturation_rate,
)
from repro.analysis.figures import (
    FigureSeries,
    figure2_diameter_series,
    figure3_average_distance_series,
)
from repro.analysis.queueing import (
    md1_waiting_time,
    mm1_waiting_time,
    predicted_hotspot_latency,
)

__all__ = [
    "FigureSeries",
    "channel_loads",
    "figure2_diameter_series",
    "figure3_average_distance_series",
    "hotspot_saturation_rate",
    "md1_waiting_time",
    "mm1_waiting_time",
    "predicted_hotspot_latency",
    "uniform_capacity",
    "uniform_saturation_rate",
    "mesh3d_average_distance",
    "mesh3d_diameter",
    "mesh3d_num_links",
    "mesh3d_num_tsv_links",
    "mesh_average_distance",
    "mesh_average_distance_paper",
    "mesh_diameter",
    "mesh_num_links",
    "ring_average_distance",
    "ring_diameter",
    "ring_num_links",
    "spidergon_average_distance",
    "spidergon_average_distance_paper",
    "spidergon_diameter",
    "spidergon_distance_sum",
    "spidergon_num_links",
    "torus3d_average_distance",
    "torus3d_diameter",
    "torus3d_num_links",
    "torus3d_num_tsv_links",
]
