"""Closed-form topology characteristics (paper Section 2).

The paper states, for N nodes:

* Ring: ``ND = floor(N/2)``, ``E[D] = N/4``, links ``2N``.
* ``m x n`` Mesh: ``ND = m + n - 2``, ``E[D] = (m+n)/3`` (approximate),
  links ``2(m-1)n + 2(n-1)m``.
* Spidergon: ``ND = ceil(N/4)``, links ``3N``, and
  ``E[D] = (2x^2+4x+1)/N`` "if N=4x", ``E[D] = (2x^2+2x-1)/N``
  "if N=4x+2".

**Known typo in the paper:** the two Spidergon E[D] cases are swapped.
Exhaustive BFS over Spidergon graphs (see
``tests/analysis/test_formulas.py``) shows the exact per-node distance
sum is ``2x^2 + 2x - 1`` when ``N = 4x`` and ``2x^2 + 4x + 1`` when
``N = 4x + 2``.  :func:`spidergon_average_distance` implements the
corrected assignment (which is exact); the verbatim paper version is
kept as :func:`spidergon_average_distance_paper` for reference.

All E[D] values follow the paper's convention of dividing the distance
sum from a tagged node by N (self-distance included in the
denominator).
"""

from __future__ import annotations


def _require_positive(num_nodes: int) -> None:
    if num_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {num_nodes}")


# -- Ring ---------------------------------------------------------------


def ring_diameter(num_nodes: int) -> int:
    """Network diameter of an N-node ring: ``floor(N/2)``."""
    _require_positive(num_nodes)
    return num_nodes // 2


def ring_average_distance(num_nodes: int) -> float:
    """Average distance of an N-node ring.

    The paper quotes ``N/4``, exact for even N under the
    sum-divided-by-N convention; for odd N the exact value is
    ``(N^2 - 1) / (4N)``.
    """
    _require_positive(num_nodes)
    if num_nodes % 2 == 0:
        return num_nodes / 4
    return (num_nodes * num_nodes - 1) / (4 * num_nodes)


def ring_num_links(num_nodes: int) -> int:
    """Unidirectional link count of an N-node ring: ``2N``."""
    _require_positive(num_nodes)
    return 2 * num_nodes


# -- Mesh ---------------------------------------------------------------


def _require_mesh_dims(rows: int, cols: int) -> None:
    if rows < 1 or cols < 1:
        raise ValueError(
            f"mesh dimensions must be >= 1, got {rows}x{cols}"
        )


def mesh_diameter(rows: int, cols: int) -> int:
    """Diameter of an ``m x n`` mesh: ``m + n - 2`` (exact)."""
    _require_mesh_dims(rows, cols)
    return rows + cols - 2


def mesh_average_distance_paper(rows: int, cols: int) -> float:
    """The paper's approximate mesh E[D]: ``(m + n) / 3``."""
    _require_mesh_dims(rows, cols)
    return (rows + cols) / 3


def mesh_average_distance(rows: int, cols: int) -> float:
    """Exact all-pairs mean distance of an ``m x n`` mesh.

    Per dimension of size k the mean ordered-pair offset (self pairs
    included) is ``(k^2 - 1) / (3k)``; Manhattan distance adds the two
    dimensions.  Converges to the paper's ``(m+n)/3`` for large
    meshes.
    """
    _require_mesh_dims(rows, cols)
    return (rows * rows - 1) / (3 * rows) + (cols * cols - 1) / (3 * cols)


def mesh_num_links(rows: int, cols: int) -> int:
    """Unidirectional links of an ``m x n`` mesh: ``2(m-1)n + 2(n-1)m``."""
    _require_mesh_dims(rows, cols)
    return 2 * (rows - 1) * cols + 2 * (cols - 1) * rows


# -- 3D mesh / torus -------------------------------------------------------


def _require_grid3d_dims(size_x: int, size_y: int, size_z: int) -> None:
    if size_x < 1 or size_y < 1 or size_z < 2:
        raise ValueError(
            f"3D grid needs planar extents >= 1 and >= 2 layers, "
            f"got {size_x}x{size_y}x{size_z}"
        )


def _ring_mean_offset(size: int) -> float:
    # Mean wrap distance over all ordered pairs of one ring
    # dimension, self pairs included: k/4 for even k, (k^2-1)/(4k)
    # for odd k (the ring_average_distance cases, per dimension).
    if size % 2 == 0:
        return size / 4
    return (size * size - 1) / (4 * size)


def mesh3d_diameter(size_x: int, size_y: int, size_z: int) -> int:
    """Diameter of an ``X x Y x Z`` mesh: ``X + Y + Z - 3`` (exact)."""
    _require_grid3d_dims(size_x, size_y, size_z)
    return size_x + size_y + size_z - 3


def mesh3d_average_distance(
    size_x: int, size_y: int, size_z: int
) -> float:
    """Exact all-pairs mean distance of an ``X x Y x Z`` mesh.

    The 2D argument verbatim with one more additive dimension: per
    dimension of size k the mean ordered-pair offset (self pairs
    included) is ``(k^2 - 1) / (3k)``.
    """
    _require_grid3d_dims(size_x, size_y, size_z)
    return sum(
        (k * k - 1) / (3 * k) for k in (size_x, size_y, size_z)
    )


def mesh3d_num_links(size_x: int, size_y: int, size_z: int) -> int:
    """Unidirectional links of an ``X x Y x Z`` mesh:
    ``2[(X-1)YZ + (Y-1)XZ + (Z-1)XY]``."""
    _require_grid3d_dims(size_x, size_y, size_z)
    return 2 * (
        (size_x - 1) * size_y * size_z
        + (size_y - 1) * size_x * size_z
        + (size_z - 1) * size_x * size_y
    )


def mesh3d_num_tsv_links(size_x: int, size_y: int, size_z: int) -> int:
    """Unidirectional vertical (TSV) links of an ``X x Y x Z`` mesh:
    ``2(Z-1)XY``."""
    _require_grid3d_dims(size_x, size_y, size_z)
    return 2 * (size_z - 1) * size_x * size_y


def torus3d_diameter(size_x: int, size_y: int, size_z: int) -> int:
    """Diameter of an ``X x Y x Z`` torus:
    ``floor(X/2) + floor(Y/2) + floor(Z/2)`` (exact)."""
    _require_grid3d_dims(size_x, size_y, size_z)
    return size_x // 2 + size_y // 2 + size_z // 2


def torus3d_average_distance(
    size_x: int, size_y: int, size_z: int
) -> float:
    """Exact all-pairs mean distance of an ``X x Y x Z`` torus.

    Each dimension is an independent ring, so the per-dimension means
    (``k/4`` even, ``(k^2 - 1)/(4k)`` odd — the ring formula) add.
    """
    _require_grid3d_dims(size_x, size_y, size_z)
    return sum(_ring_mean_offset(k) for k in (size_x, size_y, size_z))


def torus3d_num_links(size_x: int, size_y: int, size_z: int) -> int:
    """Unidirectional links of an ``X x Y x Z`` torus: ``6XYZ``
    (every node drives one link per direction per dimension)."""
    _require_grid3d_dims(size_x, size_y, size_z)
    return 6 * size_x * size_y * size_z


def torus3d_num_tsv_links(size_x: int, size_y: int, size_z: int) -> int:
    """Unidirectional vertical (TSV) links of an ``X x Y x Z`` torus:
    ``2 X Y Z`` (the z wrap is a TSV too)."""
    _require_grid3d_dims(size_x, size_y, size_z)
    return 2 * size_x * size_y * size_z


# -- Spidergon ------------------------------------------------------------


def _require_spidergon(num_nodes: int) -> None:
    if num_nodes < 4 or num_nodes % 2 != 0:
        raise ValueError(
            f"Spidergon needs an even N >= 4, got {num_nodes}"
        )


def spidergon_diameter(num_nodes: int) -> int:
    """Diameter of an N-node Spidergon: ``ceil(N/4)`` (exact)."""
    _require_spidergon(num_nodes)
    return -(-num_nodes // 4)


def spidergon_distance_sum(num_nodes: int) -> int:
    """Exact sum of distances from a tagged Spidergon node.

    ``2x^2 + 2x - 1`` for ``N = 4x`` and ``2x^2 + 4x + 1`` for
    ``N = 4x + 2`` (the corrected assignment; see module docstring).
    """
    _require_spidergon(num_nodes)
    if num_nodes % 4 == 0:
        x = num_nodes // 4
        return 2 * x * x + 2 * x - 1
    x = (num_nodes - 2) // 4
    return 2 * x * x + 4 * x + 1


def spidergon_average_distance(num_nodes: int) -> float:
    """Exact Spidergon E[D] under the paper's divide-by-N convention."""
    return spidergon_distance_sum(num_nodes) / num_nodes


def spidergon_average_distance_paper(num_nodes: int) -> float:
    """The paper's E[D] expression, verbatim (cases swapped; kept for
    documentation of the discrepancy)."""
    _require_spidergon(num_nodes)
    if num_nodes % 4 == 0:
        x = num_nodes // 4
        return (2 * x * x + 4 * x + 1) / num_nodes
    x = (num_nodes - 2) // 4
    return (2 * x * x + 2 * x - 1) / num_nodes


def spidergon_num_links(num_nodes: int) -> int:
    """Unidirectional link count of an N-node Spidergon: ``3N``."""
    _require_spidergon(num_nodes)
    return 3 * num_nodes


# -- Circulant rings C(N; 1, s) -------------------------------------------


def _circulant_distances(num_nodes: int, skip: int) -> list[int]:
    from repro.topology.circulant import minimal_decomposition

    distances = []
    for offset in range(num_nodes):
        chords, steps = minimal_decomposition(num_nodes, skip, offset)
        distances.append(abs(chords) + abs(steps))
    return distances


def circulant_diameter(num_nodes: int, skip: int) -> int:
    """Diameter of ``C(N; 1, s)``.

    Computed from the minimal chord/step decomposition over the N
    offsets (vertex transitivity); exact, and O(N * N/gcd(N, s))
    rather than the O(N^2) of all-pairs BFS.  Reduces to the paper's
    ``ceil(N/4)`` when ``s = N/2`` (Spidergon) and approaches the
    multiplicative optimum ``~= sqrt(N)`` when ``s ~= sqrt(N)``.
    """
    return max(_circulant_distances(num_nodes, skip))


def circulant_distance_sum(num_nodes: int, skip: int) -> int:
    """Exact sum of distances from a tagged node of ``C(N; 1, s)``."""
    return sum(_circulant_distances(num_nodes, skip))


def circulant_average_distance(num_nodes: int, skip: int) -> float:
    """Exact ``C(N; 1, s)`` E[D] under the paper's divide-by-N
    convention (self distance included in the denominator)."""
    return circulant_distance_sum(num_nodes, skip) / num_nodes


def circulant_num_links(num_nodes: int, skip: int) -> int:
    """Unidirectional link count of ``C(N; 1, s)``.

    ``4N`` for a proper chord (``s < N/2``: ring pair plus two chord
    directions per node) and ``3N`` for the diametral chord
    (``s = N/2``: the chord is its own reverse, i.e. Spidergon).
    """
    if 2 * skip == num_nodes:
        return 3 * num_nodes
    return 4 * num_nodes
