"""Channel-load analysis: predicting saturation from routing alone.

For a deterministic routing function and a spatial traffic pattern,
the expected load on every channel is a closed-form sum over
source/destination pairs.  The channel that loads fastest bounds the
sustainable injection rate: no schedule can carry more than one flit
per cycle per link, so

    lambda_sat <= 1 / max_channel_load_per_unit_rate.

This turns the paper's figure 10 rankings into predictions: the Ring
saturates first because its bisection channels concentrate load, the
Mesh last — before running a single simulation cycle.  Wormhole flow
control, finite buffers and arbitration waste some of this ideal
capacity, so measured saturation sits below (typically at 40-80% of)
the bound; the *ordering* and *scaling* are what the bound predicts.
"""

from __future__ import annotations

from collections import defaultdict

from repro.routing.base import LOCAL_PORT, RoutingAlgorithm


def channel_loads(
    routing: RoutingAlgorithm,
    flows: list[tuple[int, int, float]],
) -> dict[tuple[int, str], float]:
    """Expected flits/cycle on each channel for the given *flows*.

    Args:
        routing: Deterministic routing whose ``path`` defines which
            channels each flow crosses.
        flows: ``(src, dst, rate)`` triples, rate in flits/cycle.

    Returns:
        Mapping ``(node, out_port) -> load`` covering every channel
        any flow touches (ejection channels included under
        ``LOCAL_PORT``).
    """
    topology = routing.topology
    loads: dict[tuple[int, str], float] = defaultdict(float)
    for src, dst, rate in flows:
        if rate < 0:
            raise ValueError(f"negative rate for flow {src}->{dst}")
        if src == dst:
            raise ValueError(f"self-flow at node {src}")
        nodes = routing.path(src, dst)
        for a, b in zip(nodes, nodes[1:]):
            loads[(a, topology.port_to(a, b))] += rate
        loads[(dst, LOCAL_PORT)] += rate
    return dict(loads)


def uniform_flows(
    routing: RoutingAlgorithm, rate: float = 1.0
) -> list[tuple[int, int, float]]:
    """The homogeneous pattern as flows: every node sends *rate*
    flits/cycle spread uniformly over all other nodes."""
    n = routing.topology.num_nodes
    per_pair = rate / (n - 1)
    return [
        (src, dst, per_pair)
        for src in range(n)
        for dst in range(n)
        if src != dst
    ]


def hotspot_flows(
    routing: RoutingAlgorithm,
    targets: list[int],
    rate: float = 1.0,
) -> list[tuple[int, int, float]]:
    """Hot-spot pattern as flows: every non-target node sends *rate*
    flits/cycle spread uniformly over the targets."""
    if not targets:
        raise ValueError("need at least one hot-spot target")
    n = routing.topology.num_nodes
    target_set = set(targets)
    per_target = rate / len(targets)
    return [
        (src, dst, per_target)
        for src in range(n)
        if src not in target_set
        for dst in targets
    ]


def max_channel_load(
    routing: RoutingAlgorithm,
    flows: list[tuple[int, int, float]],
) -> float:
    """The heaviest channel load induced by *flows* (flits/cycle)."""
    loads = channel_loads(routing, flows)
    return max(loads.values()) if loads else 0.0


def uniform_saturation_rate(routing: RoutingAlgorithm) -> float:
    """Upper bound on the per-node injection rate (flits/cycle) the
    network can sustain under homogeneous uniform traffic."""
    worst = max_channel_load(routing, uniform_flows(routing, 1.0))
    return 1.0 / worst


def uniform_capacity(routing: RoutingAlgorithm) -> float:
    """Upper bound on aggregate uniform-traffic throughput
    (flits/cycle): ``N * uniform_saturation_rate``."""
    return routing.topology.num_nodes * uniform_saturation_rate(routing)


def hotspot_saturation_rate(
    routing: RoutingAlgorithm, targets: list[int]
) -> float:
    """Upper bound on the per-source rate under hot-spot traffic.

    With minimal routing this is dominated by the targets' ejection
    channels: ``num_targets / num_sources`` flits/cycle — which is
    why figure 6's curves are topology-independent.
    """
    worst = max_channel_load(
        routing, hotspot_flows(routing, targets, 1.0)
    )
    return 1.0 / worst
