"""Queueing-theoretic latency prediction for the hot-spot scenario.

Below saturation, the single hot-spot destination behaves like one
server fed by the superposition of the sources' Poisson processes:

* arrivals: aggregate rate ``lambda_agg = num_sources * rate /
  packet_size`` packets/cycle (each source generates packets, not
  flits, as a Poisson process);
* service: the ejection link drains exactly one flit per cycle, so a
  packet occupies the server for ``packet_size`` cycles —
  deterministic service, i.e. an **M/D/1** queue.

Pollaczek–Khinchine then gives the mean waiting time, and the
predicted packet latency is the zero-load network latency plus the
M/D/1 wait.  Wormhole backpressure spreads the physical queue across
upstream buffers and IP memories, but the total delay a packet
accumulates approximates the single-queue value until the knee —
validated against simulation in
``tests/analysis/test_queueing.py``.
"""

from __future__ import annotations


def utilization(
    num_sources: int, rate_flits: float, num_targets: int = 1
) -> float:
    """Server utilization rho of the hot-spot ejection link(s)."""
    if num_sources < 1:
        raise ValueError(f"need >= 1 source, got {num_sources}")
    if rate_flits < 0:
        raise ValueError(f"negative rate {rate_flits}")
    if num_targets < 1:
        raise ValueError(f"need >= 1 target, got {num_targets}")
    return num_sources * rate_flits / num_targets


def md1_waiting_time(service_cycles: float, rho: float) -> float:
    """Mean M/D/1 queueing delay (cycles) by Pollaczek–Khinchine.

    ``W = rho * S / (2 (1 - rho))`` for deterministic service S.

    Raises:
        ValueError: at or beyond saturation (rho >= 1), where the
            mean wait is unbounded.
    """
    if service_cycles <= 0:
        raise ValueError(f"service time must be > 0, got {service_cycles}")
    if not 0 <= rho < 1:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    return rho * service_cycles / (2 * (1 - rho))


def mm1_waiting_time(service_cycles: float, rho: float) -> float:
    """Mean M/M/1 queueing delay, for sensitivity comparison.

    ``W = rho * S / (1 - rho)`` — exactly twice the M/D/1 value;
    bracketing simulated latency between the two checks the
    deterministic-service assumption.
    """
    if service_cycles <= 0:
        raise ValueError(f"service time must be > 0, got {service_cycles}")
    if not 0 <= rho < 1:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    return rho * service_cycles / (1 - rho)


def predicted_hotspot_latency(
    mean_hops: float,
    packet_size: int,
    num_sources: int,
    rate_flits: float,
    num_targets: int = 1,
) -> float:
    """Mean packet latency under single/multi hot-spot traffic.

    Zero-load latency (``2 h + S + 2``, docs/timing_model.md) plus
    the M/D/1 wait at the destination ejection link.

    Raises:
        ValueError: at or beyond the saturation rate
            ``num_targets / num_sources``.
    """
    if packet_size < 1:
        raise ValueError(f"packet_size must be >= 1, got {packet_size}")
    rho = utilization(num_sources, rate_flits, num_targets)
    zero_load = 2 * mean_hops + packet_size + 2
    return zero_load + md1_waiting_time(packet_size, rho)
