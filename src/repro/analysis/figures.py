"""Series generators for the paper's analytical figures 2 and 3.

Each figure is a set of named (N, value) series:

* ``ring`` — closed form, every even N in range,
* ``ideal-mesh`` — the continuous ``sqrt(N) x sqrt(N)`` idealisation
  (evaluated at every N, as the paper's smooth reference curve),
* ``real-mesh`` — exact BFS metrics of the best-factorization mesh,
  whose fluctuation between the ideal-mesh and ring curves is the
  point of the figures,
* ``irregular-mesh`` — exact BFS metrics of the partially filled
  near-square grid (the paper's "irregular mesh" motivation),
* ``spidergon`` — closed form (diameter) / exact corrected closed form
  (average distance), even N only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis import formulas
from repro.topology import MeshTopology, average_distance, diameter


@dataclass(slots=True)
class FigureSeries:
    """One labelled curve of a figure: points are (N, value) pairs."""

    label: str
    points: list[tuple[int, float]] = field(default_factory=list)

    def add(self, n: int, value: float) -> None:
        self.points.append((n, value))

    def value_at(self, n: int) -> float:
        """Value of the series at node count *n*.

        Raises:
            KeyError: if the series has no point at *n*.
        """
        for point_n, value in self.points:
            if point_n == n:
                return value
        raise KeyError(f"series {self.label!r} has no point at N={n}")


def _node_counts(min_nodes: int, max_nodes: int) -> list[int]:
    if min_nodes < 4 or max_nodes < min_nodes:
        raise ValueError(
            f"invalid node range [{min_nodes}, {max_nodes}]"
        )
    return [n for n in range(min_nodes, max_nodes + 1) if n % 2 == 0]


def ideal_mesh_diameter(num_nodes: int) -> float:
    """Continuous ideal-mesh diameter ``2(sqrt(N) - 1)``."""
    return 2 * (math.sqrt(num_nodes) - 1)


def ideal_mesh_average_distance(num_nodes: int) -> float:
    """Continuous ideal-mesh average distance ``2 sqrt(N) / 3``."""
    return 2 * math.sqrt(num_nodes) / 3


def figure2_diameter_series(
    min_nodes: int = 4, max_nodes: int = 64
) -> list[FigureSeries]:
    """Figure 2: network diameter ND vs node count N.

    Even N only (Spidergon requires it, and the paper's SoC node
    counts are even).
    """
    ring = FigureSeries("ring")
    ideal = FigureSeries("ideal-mesh")
    real = FigureSeries("real-mesh")
    irregular = FigureSeries("irregular-mesh")
    spidergon = FigureSeries("spidergon")
    for n in _node_counts(min_nodes, max_nodes):
        ring.add(n, formulas.ring_diameter(n))
        ideal.add(n, ideal_mesh_diameter(n))
        real.add(n, diameter(MeshTopology.factorized(n)))
        irregular.add(n, diameter(MeshTopology.irregular(n)))
        spidergon.add(n, formulas.spidergon_diameter(n))
    return [ring, ideal, real, irregular, spidergon]


def figure3_average_distance_series(
    min_nodes: int = 4, max_nodes: int = 64
) -> list[FigureSeries]:
    """Figure 3: average network distance E[D] vs node count N."""
    ring = FigureSeries("ring")
    ideal = FigureSeries("ideal-mesh")
    real = FigureSeries("real-mesh")
    irregular = FigureSeries("irregular-mesh")
    spidergon = FigureSeries("spidergon")
    for n in _node_counts(min_nodes, max_nodes):
        ring.add(n, formulas.ring_average_distance(n))
        ideal.add(n, ideal_mesh_average_distance(n))
        real.add(n, average_distance(MeshTopology.factorized(n)))
        irregular.add(n, average_distance(MeshTopology.irregular(n)))
        spidergon.add(n, formulas.spidergon_average_distance(n))
    return [ring, ideal, real, irregular, spidergon]
