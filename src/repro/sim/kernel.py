"""The simulator: event loop, scheduling, and run control."""

from __future__ import annotations

import os
import warnings
from typing import Callable, Iterator

from repro.sim.engines import Engine, ExplicitQueueEngine, resolve_engine
from repro.sim.errors import SchedulingError, SimulationError
from repro.sim.events import Event
from repro.sim.messages import Message
from repro.sim.module import SimModule
from repro.sim.observers import Observer


class Simulator:
    """Owns simulation time, the event queue, and the module registry.

    Typical usage::

        sim = Simulator()
        node = MyModule(sim, "node0")   # registers itself
        sim.run(until=10_000)

    The simulator may be run incrementally: successive :meth:`run`
    calls continue from the current time.  ``initialize`` hooks run
    exactly once, before the first event of the first ``run``.

    The kernel can be watched through the observer protocol
    (:mod:`repro.sim.observers`): :meth:`add_observer` registers an
    :class:`~repro.sim.observers.Observer` whose hooks fire after
    every delivery and on every time advancement, in registration
    order.  With zero observers attached the event loop is the plain
    fast path.

    The event store and drive loop are an :class:`~repro.sim.engines.
    Engine`, selected by spec string or instance: ``engine="wheel"``
    (default), ``"heap"`` (reference oracle) or ``"batched"`` (the
    cycle-synchronous fast engine) — see :mod:`repro.sim.engines` and
    docs/engines.md.  Every engine delivers any schedule in the
    identical ``(time, priority, sequence)`` order, which the
    equivalence tests assert end to end.  The environment variable
    ``REPRO_ENGINE`` selects a default engine for the process.

    Deprecated spellings (kept as shims that warn): the
    ``event_queue=`` argument wraps the given queue instance, and
    ``REPRO_EVENT_QUEUE=heap`` maps to ``engine="heap"``.
    """

    def __init__(
        self, engine: "str | Engine | None" = None, event_queue=None
    ) -> None:
        if event_queue is not None:
            if engine is not None:
                raise ValueError(
                    "pass engine= or event_queue=, not both"
                )
            warnings.warn(
                "Simulator(event_queue=...) is deprecated; select an "
                "engine instead: Simulator(engine='wheel'|'heap'|"
                "'batched') — see docs/engines.md",
                DeprecationWarning,
                stacklevel=2,
            )
            engine = ExplicitQueueEngine(event_queue)
        if engine is None:
            engine = os.environ.get("REPRO_ENGINE") or None
        if engine is None:
            if os.environ.get("REPRO_EVENT_QUEUE", "").lower() in (
                "heap",
                "reference",
            ):
                warnings.warn(
                    "REPRO_EVENT_QUEUE is deprecated; set "
                    "REPRO_ENGINE=heap instead — see docs/engines.md",
                    DeprecationWarning,
                    stacklevel=2,
                )
                engine = "heap"
            else:
                engine = "wheel"
        self._engine = resolve_engine(engine)
        self._queue = self._engine.make_queue()
        self._now = 0
        self._modules: list[SimModule] = []
        self._module_names: set[str] = set()
        self._pending_init: list[SimModule] = []
        self._initialized = False
        self._finalized = False
        self._events_processed = 0
        self._observers: list[Observer] = []
        # Immutable copy handed to notification rounds; rebuilt on
        # add/remove so the per-event path never copies the list.
        self._observer_snapshot: tuple[Observer, ...] = ()
        self._stop_requested = False
        self._stop_reason: str | None = None
        self._stop_details: dict | None = None

    # -- registry ----------------------------------------------------

    def register_module(self, module: SimModule) -> None:
        """Add *module* to the registry (called by SimModule.__init__).

        Raises:
            SimulationError: on duplicate module names, which would
                make traces and diagnostics ambiguous.
        """
        if module.name in self._module_names:
            raise SimulationError(
                f"duplicate module name: {module.name!r}"
            )
        self._module_names.add(module.name)
        self._modules.append(module)
        # Initialization is deferred to the next run() even when the
        # simulation already started: register_module is called from
        # SimModule.__init__, before the subclass constructor has
        # finished setting up the module's own state.
        self._pending_init.append(module)

    @property
    def modules(self) -> tuple[SimModule, ...]:
        return tuple(self._modules)

    # -- observers ----------------------------------------------------

    def add_observer(self, observer: Observer) -> Observer:
        """Register *observer*; its hooks fire in registration order.

        Observers may be added at any point.  Hooks fire after the
        handler, so an observer added from a module handler already
        sees the delivery that added it; one added from another
        observer's callback starts at the next delivery (the current
        notification round is a snapshot).

        Returns:
            The observer, for chaining.

        Raises:
            SimulationError: if *observer* is already registered
                (double registration would double its callbacks).
        """
        if any(existing is observer for existing in self._observers):
            raise SimulationError(
                f"observer {observer!r} is already registered"
            )
        # The engine may refuse: the batched engine cannot honour
        # observers once its fast path has started (docs/engines.md).
        self._engine.on_observer_added(self)
        self._observers.append(observer)
        self._observer_snapshot = tuple(self._observers)
        return observer

    def remove_observer(self, observer: Observer) -> None:
        """Detach *observer*; it receives no further callbacks.

        Safe to call mid-run — from a module handler or from any
        observer's own callback; the detachment takes effect at the
        next delivery.

        Raises:
            SimulationError: if *observer* is not registered.
        """
        for index, existing in enumerate(self._observers):
            if existing is observer:
                del self._observers[index]
                self._observer_snapshot = tuple(self._observers)
                return
        raise SimulationError(
            f"observer {observer!r} is not registered"
        )

    @property
    def observers(self) -> tuple[Observer, ...]:
        """Currently registered observers, in registration order."""
        return tuple(self._observers)

    # -- time and scheduling ------------------------------------------

    @property
    def engine(self) -> Engine:
        """The engine driving this simulator."""
        return self._engine

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events delivered so far."""
        return self._events_processed

    def schedule(
        self,
        time: int,
        target: SimModule,
        message: Message,
        priority: int = 0,
        handler: Callable[[Message], None] | None = None,
    ) -> Event:
        """Schedule delivery of *message* to *target* at *time*.

        Raises:
            SchedulingError: if *time* precedes the current time.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        return self._queue.push(
            Event(
                time=time,
                priority=priority,
                sequence=0,
                target=target,
                message=message,
                handler=handler,
            )
        )

    def cancel(self, event: Event) -> None:
        """Cancel *event* if it has not fired yet (idempotent)."""
        if event.cancelled:
            return
        event.cancel()
        self._queue.discard_cancelled(event)

    # -- run control ---------------------------------------------------

    def _ensure_initialized(self) -> None:
        self._initialized = True
        while self._pending_init:
            self._pending_init.pop(0).initialize()

    def run(
        self,
        until: int | None = None,
        max_events: int | None = None,
    ) -> int:
        """Process events until a stop condition is met.

        Args:
            until: Stop once the next event's time exceeds this value;
                events *at* ``until`` are processed.  ``now`` is set to
                ``until`` on a time-limited stop.
            max_events: Stop after this many deliveries in this call.
                A stop on this cap leaves ``now`` at the time of the
                last delivery — the pending events are still due, so
                the clock must not jump past them to ``until``.

        Returns:
            The number of events processed by this call.

        Calling ``run()`` with neither stop condition is allowed: the
        loop keeps going until the event queue drains, so it
        terminates for any workload that stops scheduling new events.

        The engine owns the drive loop.  The event engines (wheel,
        heap) use :meth:`_event_loop`; the batched engine substitutes
        its cycle-synchronous fast path when no observers are attached
        and falls back to :meth:`_event_loop` otherwise.  Every engine
        preserves the stop/:attr:`events_processed`/time-jump
        semantics documented here.
        """
        return self._engine.run(self, until, max_events)

    def _event_loop(
        self,
        until: int | None = None,
        max_events: int | None = None,
    ) -> int:
        """The classic per-event loop (see :meth:`run` for the
        contract).  With no observers attached it runs a fused fast
        path: one :meth:`~repro.sim.events.EventQueue.pop_next` call
        per event (the wheel cursor stays parked on the current
        cycle's bucket, so a same-cycle batch drains without
        re-scanning), and the delivered-event total is committed to
        :attr:`events_processed` when the batch ends rather than once
        per event.  With observers the loop takes the bookkeeping path
        that advances time *before* popping, so observer callbacks see
        the new cycle's events still pending.
        """
        self._ensure_initialized()
        processed = 0
        events_base = self._events_processed
        # Bound to locals: the truthiness check per event is the
        # entire cost of the observer feature on the unobserved fast
        # path.  The list object itself is shared with add/remove, so
        # attaching or detaching mid-run takes effect immediately.
        observers = self._observers
        queue = self._queue
        pop_next = queue.pop_next
        # -1 never equals a (non-negative, strictly growing)
        # processed count, so the cap check stays one int compare.
        cap = -1 if max_events is None else max_events
        # Infinity compares above every event time, so the queue's
        # limit check stays a single comparison when there is none.
        pop_limit = float("inf") if until is None else until
        try:
            while True:
                if self._stop_requested or processed == cap:
                    break
                if observers:
                    next_time = queue.peek_time()
                    if next_time is None:
                        break
                    if until is not None and next_time > until:
                        break
                    if next_time > self._now:
                        # Advance time *before* popping, so observers
                        # see a consistent world: the event of the new
                        # time is still pending (in-flight for
                        # conservation audits), no handler has run yet.
                        previous = self._now
                        self._now = next_time
                        for observer in self._observer_snapshot:
                            observer.on_time_advanced(
                                self, previous, next_time
                            )
                        # A callback may have requested a stop (the
                        # stall watchdog does); honour it before
                        # delivering anything of the new time.
                        if self._stop_requested:
                            break
                    event = pop_next(next_time)
                    if event is None:
                        # A callback cancelled the pending events of
                        # this cycle; re-evaluate from the top.
                        continue
                    processed += 1
                    self._events_processed = events_base + processed
                    message = event.message
                    if event.handler is not None:
                        event.handler(message)
                    else:
                        event.target.handle_message(message)
                    if observers:
                        for observer in self._observer_snapshot:
                            observer.on_event_delivered(self, event)
                    continue
                # -- unobserved fast path -----------------------------
                event = pop_next(pop_limit)
                if event is None:
                    break
                time = event.time
                if time != self._now:
                    self._now = time
                processed += 1
                message = event.message
                if event.handler is not None:
                    event.handler(message)
                else:
                    event.target.handle_message(message)
                if observers:
                    # The handler attached the first observer; the
                    # contract is that it already sees this delivery.
                    self._events_processed = events_base + processed
                    for observer in self._observer_snapshot:
                        observer.on_event_delivered(self, event)
        finally:
            self._events_processed = events_base + processed
        if until is not None and self._now < until and not self._stop_requested:
            # A stop on the max-events cap that left deliverable
            # events pending is not a time-limited stop: the clock
            # stays at the last delivery so a later run() resumes
            # exactly where this one left off.
            next_time = (
                queue.peek_time() if processed == cap else None
            )
            if next_time is None or next_time > until:
                previous = self._now
                self._now = until
                for observer in self._observer_snapshot:
                    observer.on_time_advanced(self, previous, until)
        return processed

    def request_stop(
        self, reason: str, details: dict | None = None
    ) -> None:
        """Ask the event loop to stop before its next delivery.

        Safe to call from a module handler or an observer callback;
        the event being processed finishes normally and the loop
        exits before popping another one.  Simulation time stays at
        the stop point (a time-limited :meth:`run` does **not** jump
        to ``until``), so diagnostics read the state as it was.

        The request is sticky across :meth:`run` calls until
        :meth:`clear_stop` — the machinery the stall watchdog
        (:class:`repro.resilience.StallWatchdog`) uses to abort
        deadlocked runs with a snapshot instead of spinning to the
        horizon.

        Args:
            reason: Human-readable cause, e.g. ``"stall: ..."``.
            details: Optional JSON-compatible diagnostic payload.
        """
        self._stop_requested = True
        self._stop_reason = reason
        self._stop_details = details

    def clear_stop(self) -> None:
        """Reset a previous :meth:`request_stop` so runs may resume."""
        self._stop_requested = False
        self._stop_reason = None
        self._stop_details = None

    @property
    def stop_requested(self) -> bool:
        """True once :meth:`request_stop` was called."""
        return self._stop_requested

    @property
    def stop_reason(self) -> str | None:
        """The reason passed to :meth:`request_stop`, if any."""
        return self._stop_reason

    @property
    def stop_details(self) -> dict | None:
        """The diagnostic payload passed to :meth:`request_stop`."""
        return self._stop_details

    def finalize(self) -> None:
        """Invoke every module's ``finalize`` hook (once)."""
        if self._finalized:
            return
        self._finalized = True
        for module in self._modules:
            module.finalize()

    @property
    def pending_event_count(self) -> int:
        """Number of live events still in the queue."""
        return len(self._queue)

    def queue_occupancy(self) -> dict[str, int]:
        """Occupancy of the future-event set, per tier.

        Returns:
            ``{"pending": live events, "wheel": events in the
            short-horizon buckets, "overflow": events in the
            far-future heap}`` — lazily-cancelled events still count
            toward their tier until they surface.  On the reference
            heap queue everything reports as overflow.
        """
        return self._queue.occupancy()

    def pending_events(self) -> Iterator[Event]:
        """Iterate over the live scheduled events, in no particular
        order.

        The public window onto the pending-event set: invariant
        checkers count in-flight flits and credits through it, and
        the stall watchdog sizes its diagnostic snapshot with it —
        without any of them reaching into the queue's internal
        storage.  Callers must treat the events as read-only.
        """
        return self._queue.live_events()
