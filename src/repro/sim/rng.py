"""Reproducible random-number streams.

Every stochastic component (traffic source, pattern sampler) draws from
its own :class:`RngStream`, derived from a root seed plus a string key.
Two runs with the same root seed produce bit-identical event sequences,
and adding a new component does not perturb the draws of existing ones
— the property OMNeT++ users get from per-module RNG mapping.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, key: str) -> int:
    """Derive a stable 64-bit child seed from *root_seed* and *key*."""
    digest = hashlib.sha256(f"{root_seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A named, independently seeded random stream.

    Thin wrapper over :class:`random.Random` exposing just the draws
    the models need, so tests can substitute deterministic stubs.
    """

    def __init__(self, root_seed: int, key: str) -> None:
        self.key = key
        self.seed = derive_seed(root_seed, key)
        self._random = random.Random(self.seed)

    def exponential(self, mean: float) -> float:
        """Draw an exponential variate with the given *mean* (> 0)."""
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def uniform_int(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def uniform(self) -> float:
        """Draw a float uniformly from ``[0, 1)``."""
        return self._random.random()

    def choice(self, population: list):
        """Pick one element of *population* uniformly at random."""
        return self._random.choice(population)

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given *probability*."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {probability}"
            )
        return self._random.random() < probability

    def shuffle(self, items: list) -> None:
        """Shuffle *items* in place."""
        self._random.shuffle(items)
