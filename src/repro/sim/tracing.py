"""Event tracing: observe a simulation without modifying modules.

An :class:`EventTracer` wraps a simulator's dispatch so every
delivered message is recorded as a :class:`TraceRecord` — the standard
way to debug timing questions ("did the credit arrive before the send
phase?") and the basis of the kernel's ordering regression tests.

Usage::

    sim = Simulator()
    tracer = EventTracer(sim, limit=10_000)
    ... build modules, run ...
    for record in tracer.records:
        print(record.time, record.target, record.message_name)

Tracing costs one indirection per event; detach with
:meth:`EventTracer.detach` to restore full speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.kernel import Simulator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One delivered event."""

    index: int
    time: int
    target: str
    message_name: str
    message_kind: int
    is_self_message: bool


class EventTracer:
    """Records every message delivery of a simulator.

    Args:
        simulator: The simulator to observe.
        limit: Maximum records kept (oldest dropped beyond it);
            ``None`` keeps everything.
        name_filter: When given, only deliveries whose target module
            name contains this substring are recorded.
    """

    def __init__(
        self,
        simulator: Simulator,
        limit: int | None = 100_000,
        name_filter: str | None = None,
    ) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1 or None, got {limit}")
        self.simulator = simulator
        self.limit = limit
        self.name_filter = name_filter
        self.records: list[TraceRecord] = []
        self.dropped = 0
        self._count = 0
        self._original_run = simulator.run
        self._attached = True
        simulator.run = self._traced_run  # type: ignore[method-assign]

    def _traced_run(self, until=None, max_events=None):
        # Process one event at a time through the original run so the
        # tracer sees every delivery boundary.
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            next_time = self.simulator._queue.peek_time()
            if next_time is None:
                if until is not None:
                    self._original_run(until=until, max_events=0)
                break
            if until is not None and next_time > until:
                self._original_run(until=until, max_events=0)
                break
            # Peek at the event before it is consumed.
            event = self.simulator._queue._heap[0]
            message = event.message
            target = event.target
            self._original_run(max_events=1)
            processed += 1
            if message is None:
                continue
            target_name = target.name if target is not None else "?"
            if (
                self.name_filter is not None
                and self.name_filter not in target_name
            ):
                continue
            self._record(
                TraceRecord(
                    index=self._count,
                    time=event.time,
                    target=target_name,
                    message_name=message.name,
                    message_kind=message.kind,
                    is_self_message=message.arrival_gate is None,
                )
            )
        return processed

    def _record(self, record: TraceRecord) -> None:
        self._count += 1
        self.records.append(record)
        if self.limit is not None and len(self.records) > self.limit:
            self.records.pop(0)
            self.dropped += 1

    def detach(self) -> None:
        """Restore the simulator's untraced run method."""
        if self._attached:
            self.simulator.run = self._original_run  # type: ignore[method-assign]
            self._attached = False

    def times_are_monotone(self) -> bool:
        """Kernel invariant: recorded delivery times never decrease."""
        return all(
            a.time <= b.time
            for a, b in zip(self.records, self.records[1:])
        )
