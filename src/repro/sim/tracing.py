"""Event tracing: observe a simulation without modifying modules.

.. deprecated::
    :class:`EventTracer` predates the kernel's first-class observer
    protocol (:mod:`repro.sim.observers`) and is kept as a thin
    compatibility shim over it: new code should register an
    :class:`~repro.sim.observers.Observer` directly, or use the
    higher-level tools in :mod:`repro.obs` (flit-lifecycle tracing,
    utilization timelines, kernel profiling).  The public surface —
    ``records``, ``dropped``, ``detach``, ``times_are_monotone`` — is
    unchanged.

An :class:`EventTracer` records every delivered message as a
:class:`TraceRecord` — the standard way to debug timing questions
("did the credit arrive before the send phase?") and the basis of the
kernel's ordering regression tests.

Usage::

    sim = Simulator()
    tracer = EventTracer(sim, limit=10_000)
    ... build modules, run ...
    for record in tracer.records:
        print(record.time, record.target, record.message_name)

Tracing costs one callback per event; detach with
:meth:`EventTracer.detach` to restore full speed.  Unlike the
historical implementation, the tracer never reassigns
``simulator.run`` — it is an ordinary kernel observer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.observers import Observer


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One delivered event."""

    index: int
    time: int
    target: str
    message_name: str
    message_kind: int
    is_self_message: bool


class EventTracer(Observer):
    """Records every message delivery of a simulator.

    Args:
        simulator: The simulator to observe.
        limit: Maximum records kept (oldest dropped beyond it);
            ``None`` keeps everything.  Dropping is O(1) — records
            live in a ``deque(maxlen=limit)``.
        name_filter: When given, only deliveries whose target module
            name contains this substring are recorded.
    """

    def __init__(
        self,
        simulator: Simulator,
        limit: int | None = 100_000,
        name_filter: str | None = None,
    ) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1 or None, got {limit}")
        self.simulator = simulator
        self.limit = limit
        self.name_filter = name_filter
        self.dropped = 0
        self._records: deque[TraceRecord] = deque(maxlen=limit)
        self._count = 0
        self._attached = True
        simulator.add_observer(self)

    @property
    def records(self) -> list[TraceRecord]:
        """The retained records, oldest first (a fresh list)."""
        return list(self._records)

    # -- observer hooks -----------------------------------------------

    def on_event_delivered(
        self, simulator: Simulator, event: Event
    ) -> None:
        message = event.message
        if message is None:
            return
        target = event.target
        target_name = target.name if target is not None else "?"
        if (
            self.name_filter is not None
            and self.name_filter not in target_name
        ):
            return
        self._record(
            TraceRecord(
                index=self._count,
                time=event.time,
                target=target_name,
                message_name=message.name,
                message_kind=message.kind,
                is_self_message=message.arrival_gate is None,
            )
        )

    def _record(self, record: TraceRecord) -> None:
        self._count += 1
        if (
            self.limit is not None
            and len(self._records) == self.limit
        ):
            self.dropped += 1
        self._records.append(record)

    def detach(self) -> None:
        """Stop recording (idempotent); kept records stay readable."""
        if self._attached:
            self.simulator.remove_observer(self)
            self._attached = False

    def times_are_monotone(self) -> bool:
        """Kernel invariant: recorded delivery times never decrease."""
        records = self._records
        return all(
            a.time <= b.time for a, b in zip(records, list(records)[1:])
        )
