"""Event representation and the pending-event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number is a monotonically increasing counter assigned at scheduling
time, so events that share a timestamp and priority are delivered in
FIFO order.  This matches the OMNeT++ guarantee that the paper's node
models implicitly rely on (e.g. a flit arriving and a credit arriving
in the same cycle are processed in the order they were sent).

Two queue implementations share that contract:

* :class:`EventQueue` — the default, a calendar queue (timing wheel):
  an array of per-cycle buckets covering a short horizon of
  ``WHEEL_SLOTS`` cycles past the queue's cursor, with a binary-heap
  *overflow tier* for events beyond it.  NoC traffic is dominated by
  link-delay events 1–3 cycles out, so nearly every push is an O(1)
  bucket append instead of an O(log n) heap sift, and popping the next
  event is a short cursor scan (OMNeT++'s future-event set uses the
  same structure for the same reason).
* :class:`HeapEventQueue` — the original single binary heap, kept as
  the reference implementation: property tests drive both with random
  schedules and require identical delivery order, and any simulation
  can be re-run on it (``REPRO_EVENT_QUEUE=heap``) to prove results
  are independent of the queue structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:
    from repro.sim.messages import Message
    from repro.sim.module import SimModule

#: Sentinel upper bound for ``pop_next``: any event time compares
#: below it, so "no limit" costs the same single comparison.
_NO_LIMIT = float("inf")


@dataclass(order=True, slots=True)
class Event:
    """A pending message delivery.

    Attributes:
        time: Simulation cycle at which the event fires.
        priority: Tie-breaker among events at the same time; lower
            values fire first.  Kernel-internal events use 0; models
            may use other values to force intra-cycle phases.
        sequence: Scheduling order counter, assigned by the queue.
        target: Module whose handler receives the message.
        message: The message being delivered.
        handler: Optional callable override; when set, the kernel
            invokes it instead of ``target.handle_message``.
    """

    time: int
    priority: int
    sequence: int
    target: "SimModule | None" = field(compare=False, default=None)
    message: "Message | None" = field(compare=False, default=None)
    handler: Callable[["Message"], None] | None = field(
        compare=False, default=None
    )
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Timing-wheel (calendar queue) of :class:`Event` objects.

    Structure:

    * ``_wheel`` — ``WHEEL_SLOTS`` bucket lists indexed by
      ``time & _mask``.  The wheel covers the half-open window
      ``[_base, _base + WHEEL_SLOTS)``; within it each slot maps to
      exactly one timestamp, so a bucket holds same-time events only.
      Buckets are small binary heaps ordered by ``(priority,
      sequence)`` (the shared ``time`` makes the full ``Event`` order
      degenerate to that), and the common single-event bucket costs a
      plain list append.
    * ``_overflow`` — a binary heap for events at or past the window's
      end (far-future timers such as low-rate traffic generators), and
      for events pushed *before* ``_base`` (the kernel never does
      this, but the queue stays correct standalone).  Overflow events
      whose time enters the window as the cursor advances are migrated
      into their bucket.

    The cursor ``_base`` only moves forward, driven by pops; pushes
    never move it.  Cancelled events stay where they are and are
    discarded lazily when they reach a bucket or heap front, which
    keeps cancellation O(1).
    """

    WHEEL_SLOTS = 256  # power of two; covers link delays and short timers

    __slots__ = (
        "_wheel",
        "_mask",
        "_size",
        "_base",
        "_wheel_count",
        "_overflow",
        "_sequence",
        "_live",
    )

    def __init__(self) -> None:
        self._size = self.WHEEL_SLOTS
        self._mask = self._size - 1
        self._wheel: list[list[Event]] = [
            [] for _ in range(self._size)
        ]
        self._base = 0
        #: Events (live or lazily-cancelled) currently in wheel buckets.
        self._wheel_count = 0
        self._overflow: list[Event] = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert *event*, stamping its sequence number."""
        event.sequence = self._sequence
        self._sequence += 1
        offset = event.time - self._base
        if 0 <= offset < self._size:
            bucket = self._wheel[event.time & self._mask]
            if bucket:
                # Same-cycle ordering is (priority, sequence); the
                # shared timestamp makes Event's full order reduce to
                # exactly that.
                heappush(bucket, event)
            else:
                bucket.append(event)
            self._wheel_count += 1
        else:
            heappush(self._overflow, event)
        self._live += 1
        return event

    def _front(self) -> tuple[list[Event] | None, Event | None]:
        """Locate the earliest live event without removing it.

        Returns ``(bucket, event)`` where *bucket* is the wheel bucket
        holding the event, or ``None`` when it lives in the overflow
        heap; ``(None, None)`` when the queue holds no live event.
        Cancelled events encountered at a front are discarded, and the
        cursor advances over empty buckets as a side effect.
        """
        over = self._overflow
        while over and over[0].cancelled:
            heappop(over)
        if not self._wheel_count and over:
            # Wheel empty: jump the window to the overflow front and
            # pull every overflow event that now fits into its bucket,
            # so the events of that cycle (and the cycles after it)
            # batch on the fast tier.
            head_time = over[0].time
            if head_time > self._base:
                self._base = head_time
            limit = self._base + self._size
            base = self._base
            while over and base <= over[0].time < limit:
                event = heappop(over)
                bucket = self._wheel[event.time & self._mask]
                if bucket:
                    heappush(bucket, event)
                else:
                    bucket.append(event)
                self._wheel_count += 1
        bucket = None
        if self._wheel_count:
            wheel = self._wheel
            mask = self._mask
            t = self._base
            while True:
                candidate = wheel[t & mask]
                while candidate and candidate[0].cancelled:
                    heappop(candidate)
                    self._wheel_count -= 1
                if candidate:
                    self._base = t
                    bucket = candidate
                    break
                if not self._wheel_count:
                    break
                t += 1
        if bucket is None:
            if not over:
                return None, None
            return None, over[0]
        head = bucket[0]
        # A (mis)use pushed an event before the cursor: it sits in the
        # overflow tier and must still win ties by the full order.
        if over and over[0] < head:
            return None, over[0]
        return bucket, head

    def pop_next(self, limit: int | float | None = None) -> Event | None:
        """Remove and return the earliest live event, or ``None``.

        Args:
            limit: When set, only an event with ``time <= limit`` is
                popped; a later front is left pending and ``None`` is
                returned.  This fuses the kernel's peek/compare/pop
                triple into one call on the unobserved fast path.

        The body is the inlined common case — wheel non-empty,
        overflow empty, front not cancelled: one bucket lookup once
        the cursor is parked on the current cycle (same-cycle batches
        drain at one slot probe per event).  Everything rare
        (overflow service or migration, cancelled fronts) drops to
        :meth:`_front`.
        """
        if limit is None:
            limit = _NO_LIMIT
        if self._wheel_count and not self._overflow:
            wheel = self._wheel
            mask = self._mask
            t = self._base
            while True:
                bucket = wheel[t & mask]
                if bucket:
                    head = bucket[0]
                    if head.cancelled:
                        break
                    if head.time > limit:
                        self._base = t
                        return None
                    heappop(bucket)
                    self._base = t
                    self._wheel_count -= 1
                    self._live -= 1
                    return head
                t += 1
        bucket, head = self._front()
        if head is None or head.time > limit:
            return None
        if bucket is None:
            heappop(self._overflow)
        else:
            heappop(bucket)
            self._wheel_count -= 1
        self._live -= 1
        return head

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        event = self.pop_next()
        if event is None:
            raise IndexError("pop from empty event queue")
        return event

    def peek_time(self) -> int | None:
        """Return the timestamp of the next live event, or None."""
        _, head = self._front()
        return None if head is None else head.time

    def discard_cancelled(self, event: Event) -> None:
        """Account for a cancellation (keeps ``len`` accurate)."""
        if not event.cancelled:
            raise ValueError("event is not cancelled")
        self._live -= 1

    @property
    def wheel_occupancy(self) -> int:
        """Events sitting in wheel buckets (lazily-cancelled ones
        included until they surface)."""
        return self._wheel_count

    @property
    def overflow_occupancy(self) -> int:
        """Events sitting in the far-future overflow heap (same
        caveat)."""
        return len(self._overflow)

    def occupancy(self) -> dict[str, int]:
        """JSON-ready occupancy: live events plus per-tier depths."""
        return {
            "pending": self._live,
            "wheel": self._wheel_count,
            "overflow": len(self._overflow),
        }

    def live_events(self) -> Iterator[Event]:
        """Iterate over the live (non-cancelled) events, in storage
        order — *not* delivery order.  Callers that need delivery
        order must sort by ``(time, priority, sequence)`` themselves.
        """
        for bucket in self._wheel:
            for event in bucket:
                if not event.cancelled:
                    yield event
        for event in self._overflow:
            if not event.cancelled:
                yield event

    def __iter__(self) -> Iterator[Event]:
        return self.live_events()

    def clear(self) -> None:
        """Drop every pending event, marking each one cancelled.

        The cancel-mark matters: a module may still hold a handle to
        an event that was dropped here and later pass it to
        ``Simulator.cancel``.  Marking keeps that call an idempotent
        no-op instead of corrupting the live-event count through
        ``discard_cancelled``.
        """
        for bucket in self._wheel:
            for event in bucket:
                event.cancelled = True
            bucket.clear()
        for event in self._overflow:
            event.cancelled = True
        self._overflow.clear()
        self._wheel_count = 0
        self._live = 0


class HeapEventQueue:
    """Single binary-heap queue of :class:`Event` objects — the
    reference implementation :class:`EventQueue` is verified against.

    Cancelled events stay in the heap and are discarded lazily on pop,
    which keeps cancellation O(1).
    """

    __slots__ = ("_heap", "_sequence", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert *event*, stamping its sequence number."""
        event.sequence = self._sequence
        self._sequence += 1
        heappush(self._heap, event)
        self._live += 1
        return event

    def pop_next(self, limit: int | float | None = None) -> Event | None:
        """Remove and return the earliest live event (``None`` when
        empty or when its time exceeds *limit*)."""
        if limit is None:
            limit = _NO_LIMIT
        heap = self._heap
        while heap:
            head = heap[0]
            if head.cancelled:
                heappop(heap)
                continue
            if head.time > limit:
                return None
            heappop(heap)
            self._live -= 1
            return head
        return None

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        event = self.pop_next()
        if event is None:
            raise IndexError("pop from empty event queue")
        return event

    def peek_time(self) -> int | None:
        """Return the timestamp of the next live event, or None."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heappop(heap)
        if not heap:
            return None
        return heap[0].time

    def discard_cancelled(self, event: Event) -> None:
        """Account for a cancellation (keeps ``len`` accurate)."""
        if not event.cancelled:
            raise ValueError("event is not cancelled")
        self._live -= 1

    @property
    def wheel_occupancy(self) -> int:
        """Always 0 — the reference queue has no wheel tier."""
        return 0

    @property
    def overflow_occupancy(self) -> int:
        """Heap depth (lazily-cancelled events included)."""
        return len(self._heap)

    def occupancy(self) -> dict[str, int]:
        """JSON-ready occupancy; everything counts as overflow."""
        return {
            "pending": self._live,
            "wheel": 0,
            "overflow": len(self._heap),
        }

    def live_events(self) -> Iterator[Event]:
        """Iterate over the live (non-cancelled) events, in heap
        order — *not* delivery order.  Callers that need delivery
        order must sort by ``(time, priority, sequence)`` themselves.
        """
        for event in self._heap:
            if not event.cancelled:
                yield event

    def __iter__(self) -> Iterator[Event]:
        return self.live_events()

    def clear(self) -> None:
        """Drop every pending event, marking each one cancelled (see
        :meth:`EventQueue.clear` for why the mark matters)."""
        for event in self._heap:
            event.cancelled = True
        self._heap.clear()
        self._live = 0
