"""Event representation and the pending-event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number is a monotonically increasing counter assigned at scheduling
time, so events that share a timestamp and priority are delivered in
FIFO order.  This matches the OMNeT++ guarantee that the paper's node
models implicitly rely on (e.g. a flit arriving and a credit arriving
in the same cycle are processed in the order they were sent).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.sim.messages import Message
    from repro.sim.module import SimModule


@dataclass(order=True, slots=True)
class Event:
    """A pending message delivery.

    Attributes:
        time: Simulation cycle at which the event fires.
        priority: Tie-breaker among events at the same time; lower
            values fire first.  Kernel-internal events use 0; models
            may use other values to force intra-cycle phases.
        sequence: Scheduling order counter, assigned by the queue.
        target: Module whose handler receives the message.
        message: The message being delivered.
        handler: Optional callable override; when set, the kernel
            invokes it instead of ``target.handle_message``.
    """

    time: int
    priority: int
    sequence: int
    target: "SimModule | None" = field(compare=False, default=None)
    message: "Message | None" = field(compare=False, default=None)
    handler: Callable[["Message"], None] | None = field(
        compare=False, default=None
    )
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects.

    Cancelled events stay in the heap and are discarded lazily on pop,
    which keeps cancellation O(1).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert *event*, stamping its sequence number."""
        event.sequence = self._sequence
        self._sequence += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> int | None:
        """Return the timestamp of the next live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def discard_cancelled(self, event: Event) -> None:
        """Account for a cancellation (keeps ``len`` accurate)."""
        if not event.cancelled:
            raise ValueError("event is not cancelled")
        self._live -= 1

    def live_events(self):
        """Iterate over the live (non-cancelled) events, in heap
        order — *not* delivery order.  Callers that need delivery
        order must sort by ``(time, priority, sequence)`` themselves.
        """
        for event in self._heap:
            if not event.cancelled:
                yield event

    def __iter__(self):
        return self.live_events()

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
