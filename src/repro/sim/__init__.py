"""Discrete-event simulation kernel.

This package is the repository's substitute for the OMNeT++ framework
used in the paper.  It provides the same modelling idioms at the level
the paper's models need them:

* a global event queue with deterministic ordering
  (:class:`~repro.sim.kernel.Simulator`),
* modules with named gates connected by unidirectional channels with
  integer delays (:class:`~repro.sim.module.SimModule`,
  :class:`~repro.sim.module.Gate`),
* messages and self-messages (timers)
  (:class:`~repro.sim.messages.Message`),
* reproducible per-stream random number generation
  (:class:`~repro.sim.rng.RngStream`).

Time is a non-negative integer number of cycles, matching the
cycle-accurate flit-level models built on top of the kernel.
"""

from repro.sim.errors import (
    GateConnectionError,
    SchedulingError,
    SimulationError,
)
from repro.sim.engines import (
    Engine,
    EngineFamily,
    available_engines,
    register_engine,
    resolve_engine,
)
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import Gate, SimModule
from repro.sim.observers import Observer
from repro.sim.rng import RngStream
from repro.sim.tracing import EventTracer, TraceRecord

__all__ = [
    "Engine",
    "EngineFamily",
    "Event",
    "EventQueue",
    "EventTracer",
    "Gate",
    "GateConnectionError",
    "Message",
    "Observer",
    "RngStream",
    "SchedulingError",
    "SimModule",
    "SimulationError",
    "Simulator",
    "TraceRecord",
    "available_engines",
    "register_engine",
    "resolve_engine",
]
