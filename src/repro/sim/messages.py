"""Message base class for the simulation kernel.

A :class:`Message` is the unit of communication between modules.  The
NoC model derives flit and credit messages from it.  Messages record
bookkeeping timestamps that the kernel fills in on send/delivery so
models can measure channel latencies without extra plumbing.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.module import Gate, SimModule

_message_ids = itertools.count()


class Message:
    """Base class for everything that travels between modules.

    Attributes:
        name: Human-readable label used in ``repr`` and traces.
        kind: Small integer tag models may use for cheap dispatch.
        message_id: Unique id assigned at construction.
        created_at: Simulation time at construction (set by kernel on
            first send if the message was built outside a handler).
        sent_at: Time of the most recent ``send``.
        arrival_gate: Gate the message was delivered through (None for
            self-messages).
        sender: Module that performed the most recent ``send``.
    """

    __slots__ = (
        "name",
        "kind",
        "message_id",
        "created_at",
        "sent_at",
        "arrival_gate",
        "sender",
    )

    def __init__(self, name: str = "msg", kind: int = 0) -> None:
        self.name = name
        self.kind = kind
        self.message_id = next(_message_ids)
        self.created_at: int | None = None
        self.sent_at: int | None = None
        self.arrival_gate: "Gate | None" = None
        self.sender: "SimModule | None" = None

    def is_self_message(self) -> bool:
        """True when the last delivery was a self-scheduled timer."""
        return self.arrival_gate is None and self.sender is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"id={self.message_id}, kind={self.kind})"
        )
