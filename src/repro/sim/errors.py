"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled at an invalid time.

    The most common cause is scheduling an event in the past, which
    would break the causal ordering guarantees of the event queue.
    """


class GateConnectionError(SimulationError):
    """Raised on invalid gate wiring.

    Examples: connecting a gate that already has an outgoing channel,
    sending through an unconnected gate, or connecting a gate to
    itself with a zero-delay loop.
    """
