"""Simulation engines: how a :class:`~repro.sim.kernel.Simulator`
stores and drains its future-event set.

An :class:`Engine` bundles two choices that used to be smeared across
``Simulator(event_queue=...)`` and the ``REPRO_EVENT_QUEUE``
environment variable:

* the **future-event store** (:meth:`Engine.make_queue`) — timing
  wheel, reference heap, or the batched engine's per-cycle calendar;
* the **drive loop** (:meth:`Engine.run`) — the classic per-event
  loop, or the batched engine's cycle-synchronous fast path.

Engines are registered by name, mirroring the topology spec registry
(:func:`repro.experiments.specs.register_topology`)::

    sim = Simulator(engine="batched")      # spec string
    sim = Simulator(engine=BatchedEngine())  # or an instance

``python -m repro engines`` lists the registered families.  The old
spellings — ``Simulator(event_queue=...)``, ``REPRO_EVENT_QUEUE`` —
still work but emit :class:`DeprecationWarning`; the migration table
lives in docs/engines.md.

Engine instances hold per-simulation state (the batched engine caches
a network's link tables), so the registry stores *factories*:
:func:`resolve_engine` builds a fresh instance per spec-string lookup
and never shares one between simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.sim.events import EventQueue, HeapEventQueue

if TYPE_CHECKING:
    from repro.sim.kernel import Simulator


class Engine:
    """Strategy object owning the event store and the run loop.

    Subclasses override :meth:`make_queue` and, when their drive loop
    differs from the classic per-event loop, :meth:`run`.  The model
    layer may additionally use :meth:`prepare_network` (called once by
    :class:`~repro.noc.network.Network` after wiring) to install
    engine-specific fast paths, and :meth:`on_observer_added` to
    restrict observer attachment where the fast path cannot honour it.
    """

    #: Registry name; informational on ad-hoc instances.
    name = "custom"

    def make_queue(self):
        """Build this engine's future-event store (queue protocol:
        ``push/pop_next/pop/peek_time/discard_cancelled/occupancy/
        live_events/clear/__len__``)."""
        raise NotImplementedError

    def run(
        self,
        simulator: "Simulator",
        until: int | None,
        max_events: int | None,
    ) -> int:
        """Drive *simulator* until a stop condition; return the number
        of deliveries.  The default is the kernel's classic event loop,
        whose semantics every engine must preserve exactly."""
        return simulator._event_loop(until, max_events)

    def prepare_network(self, network) -> None:
        """Hook called by :class:`~repro.noc.network.Network` once the
        model is fully wired (before any run)."""

    def on_observer_added(self, simulator: "Simulator") -> None:
        """Hook called before an observer registers; raise to refuse
        (the batched engine does, once its fast path has started)."""


@dataclass(frozen=True, slots=True)
class EngineFamily:
    """One registered engine, for the registry and CLI listing.

    Attributes:
        name: Registry key, e.g. ``"batched"``.
        factory: Zero-argument builder returning a fresh engine.
        description: One-line summary for ``repro engines``.
    """

    name: str
    factory: Callable[[], Engine]
    description: str


_ENGINES: dict[str, EngineFamily] = {}


def register_engine(
    name: str, *, description: str
) -> Callable[[Callable[[], Engine]], Callable[[], Engine]]:
    """Register an engine factory under *name*.

    The decorated callable takes no arguments and returns a fresh
    :class:`Engine`; decorating a class works (its constructor is the
    factory).

    Raises:
        ValueError: if *name* is already registered.
    """

    def decorator(factory: Callable[[], Engine]) -> Callable[[], Engine]:
        if name in _ENGINES:
            raise ValueError(
                f"engine name {name!r} is already registered"
            )
        _ENGINES[name] = EngineFamily(name, factory, description)
        return factory

    return decorator


def available_engines() -> list[EngineFamily]:
    """All registered engines, sorted by name."""
    _ensure_builtin()
    return sorted(_ENGINES.values(), key=lambda f: f.name)


def resolve_engine(spec: "str | Engine") -> Engine:
    """Build an engine from a spec string, or pass an instance through.

    Raises:
        ValueError: for an unknown spec name.
        TypeError: for anything that is neither a string nor an
            :class:`Engine`.
    """
    if isinstance(spec, Engine):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"engine must be a spec string or an Engine instance, "
            f"got {spec!r}"
        )
    _ensure_builtin()
    family = _ENGINES.get(spec)
    if family is None:
        known = ", ".join(sorted(_ENGINES))
        raise ValueError(
            f"unknown engine spec {spec!r} (registered: {known})"
        )
    return family.factory()


@register_engine(
    "wheel",
    description="event kernel on the timing-wheel queue (default)",
)
class WheelEngine(Engine):
    """The default: classic event loop over the calendar-queue wheel."""

    name = "wheel"

    def make_queue(self) -> EventQueue:
        return EventQueue()


@register_engine(
    "heap",
    description="event kernel on the reference binary-heap queue",
)
class HeapEngine(Engine):
    """Reference engine: classic event loop over a single binary heap,
    kept as the oracle the other engines are verified against."""

    name = "heap"

    def make_queue(self) -> HeapEventQueue:
        return HeapEventQueue()


class ExplicitQueueEngine(Engine):
    """Back-compat shim wrapping a caller-supplied queue instance
    (the deprecated ``Simulator(event_queue=...)`` spelling)."""

    name = "custom-queue"

    def __init__(self, queue) -> None:
        self._queue = queue

    def make_queue(self):
        return self._queue


def _ensure_builtin() -> None:
    """Late-register engines living in other modules (the batched
    engine imports back into this module for its base class)."""
    if "batched" not in _ENGINES:
        import repro.sim.batched  # noqa: F401  (registers itself)
