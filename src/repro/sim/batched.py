"""The batched cycle-synchronous engine (``engine="batched"``).

The NoC model is cycle-synchronous: every delivery is either a wire
arrival (flit/credit), a per-cycle phase event, or a timer.  The event
kernel pays one :class:`~repro.sim.events.Event` — allocation, heap
discipline, dispatch — per flit hop.  This engine exploits the
structure instead and advances the whole network one cycle at a time:

1. **deliveries** — the cycle's arrivals drain in FIFO order from a
   per-cycle lane (append order equals the kernel's sequence order,
   because pushes happen chronologically);
2. **routing / VC allocation** — the scheduler's advance event runs
   every active router's allocation, with zero-delay credits landing
   back in the same cycle's lane;
3. **link traversal** — the send phase collects every flit put on a
   wire this cycle and a single batched flush computes all arrival
   cycles from the per-link latency table (numpy when available and
   the batch is large enough, a pure-python loop otherwise) and files
   pre-resolved *records* into the arrival lanes — no ``Message``, no
   ``Event``, no heap;
4. **credit return / ejection** — records carry specialized receiver
   closures (built per router port / NI at install time, semantically
   identical to ``Router.receive_flit``, ``NetworkInterface.
   receive_credit`` …; anomalous branches delegate to the canonical
   methods), so dispatch is a plain call.

Equivalence contract: the engine reproduces the event kernel's
delivery order and ``events_processed`` count *exactly* — byte-
identical ``RunResult``s on every registered topology family, which
``tests/integration/test_kernel_equivalence.py`` asserts against the
heap and wheel oracles.

Fast path vs slow path
----------------------

Observer hooks fire per delivery, and the fast path has no per-event
``Event`` to hand them.  The mode is decided at the **first**
``run()``:

* observers attached → **slow path**: the classic per-event loop
  (:meth:`~repro.sim.kernel.Simulator._event_loop`) runs over the
  :class:`CycleCalendar`, every send goes through gates as a real
  ``Event``, and delivery traces are byte-identical to the wheel's.
* no observers → **fast path**: sinks are installed on the model and
  records replace messages.  Attaching an observer *after* that
  raises :class:`~repro.sim.errors.SimulationError` — loudly, instead
  of silently missing callbacks.

Fault plans work on both paths (the injector uses timers, not
observers); ``StallWatchdog``/``InvariantAuditor``/``KernelProfiler``/
``TimelineObserver`` are observers and therefore imply the slow path.
See docs/engines.md.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterator

from repro.sim.engines import Engine, register_engine
from repro.sim.errors import SimulationError
from repro.sim.events import Event

try:  # optional accelerator: declared as the [perf] extra
    import numpy as _np
except ImportError:  # pragma: no cover - depends on environment
    _np = None

#: Sentinel upper bound, as in :mod:`repro.sim.events`.
_NO_LIMIT = float("inf")


class CycleCalendar:
    """Per-cycle future-event store of the batched engine.

    Implements the same queue protocol as the wheel and heap queues
    (``push``/``pop_next``/``peek_time``/…), so the classic event loop
    can drain it on the slow path — plus a fast drain interface the
    batched engine uses directly.

    Storage per slot (one slot per cycle, ring of :attr:`WINDOW`):

    * ``lane0`` — priority-0 items in FIFO order.  Because pushes are
      chronological and sequence numbers are assigned in push order,
      append order *is* ``(priority=0, sequence)`` order; draining the
      list front-to-back reproduces the kernel's heap order without a
      heap.  The lane holds :class:`Event` objects and, on the fast
      path, plain tuple *records* ``(bound_method, args...)``.
    * ``rest`` — a small binary heap of events with priority ≠ 0
      (normally just the scheduler's advance/send phase events).

    Events beyond the window (far-future timers of low-rate sources)
    live in an overflow heap and migrate when the window reaches them.
    A migrated slot's events are *prepended*: an event could only
    overflow while the slot was beyond the horizon, i.e. before any
    in-window push for that slot existed, so it sorts strictly first.

    The cursor ``_base`` is monotone and never passes a pending item;
    pushes must be at or after it (the kernel's scheduling guard
    already enforces times ≥ now ≥ base).
    """

    WINDOW = 4096  # power of two; must exceed every link latency

    __slots__ = (
        "_lane0",
        "_rest",
        "_mask",
        "_size",
        "_base",
        "_cursor0",
        "_ring_items",
        "_overflow",
        "_sequence",
        "_live",
    )

    def __init__(self) -> None:
        self._size = self.WINDOW
        self._mask = self._size - 1
        self._lane0: list[list] = [[] for _ in range(self._size)]
        self._rest: list[list[Event]] = [[] for _ in range(self._size)]
        self._base = 0
        #: Drain index into the base slot's lane0 (partial drains
        #: happen when ``run(max_events=...)`` stops mid-cycle).
        self._cursor0 = 0
        #: Undrained items currently in ring slots (records and
        #: events, lazily-cancelled ones included).
        self._ring_items = 0
        self._overflow: list[Event] = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # -- queue protocol -----------------------------------------------

    def push(self, event: Event) -> Event:
        """Insert *event*, stamping its sequence number."""
        event.sequence = self._sequence
        self._sequence += 1
        offset = event.time - self._base
        if 0 <= offset < self._size:
            if event.priority == 0:
                self._lane0[event.time & self._mask].append(event)
            else:
                heappush(self._rest[event.time & self._mask], event)
            self._ring_items += 1
        elif offset >= self._size:
            heappush(self._overflow, event)
        else:
            raise SimulationError(
                f"CycleCalendar requires monotone pushes: t="
                f"{event.time} is before the cursor ({self._base})"
            )
        self._live += 1
        return event

    def pop_next(self, limit: int | float | None = None) -> Event | None:
        """Remove and return the earliest live event, or ``None`` when
        empty or when its time exceeds *limit* (slow-path interface)."""
        if limit is None:
            limit = _NO_LIMIT
        t = self._peek(limit)
        if t is None:
            return None
        i = t & self._mask
        l0 = self._lane0[i]
        rest = self._rest[i]
        i0 = self._cursor0
        head0 = l0[i0] if i0 < len(l0) else None
        if head0 is not None and head0.__class__ is tuple:
            raise SimulationError(
                "CycleCalendar holds batched fast-path records; only "
                "the batched engine's fast loop can drain them"
            )
        if rest and (head0 is None or rest[0] < head0):
            event = heappop(rest)
        else:
            self._cursor0 = i0 + 1
            event = head0
        self._ring_items -= 1
        self._live -= 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        event = self.pop_next()
        if event is None:
            raise IndexError("pop from empty event queue")
        return event

    def peek_time(self) -> int | None:
        """Return the timestamp of the next live item, or None."""
        return self._peek(_NO_LIMIT)

    def discard_cancelled(self, event: Event) -> None:
        """Account for a cancellation (keeps ``len`` accurate)."""
        if not event.cancelled:
            raise ValueError("event is not cancelled")
        self._live -= 1

    @property
    def wheel_occupancy(self) -> int:
        """Items sitting in ring slots (lazily-cancelled included)."""
        return self._ring_items

    @property
    def overflow_occupancy(self) -> int:
        """Events in the far-future overflow heap (same caveat)."""
        return len(self._overflow)

    def occupancy(self) -> dict[str, int]:
        """JSON-ready occupancy: live items plus per-tier depths."""
        return {
            "pending": self._live,
            "wheel": self._ring_items,
            "overflow": len(self._overflow),
        }

    def live_events(self) -> Iterator[Event]:
        """Iterate over live items, in storage order.

        Fast-path records surface as synthesized read-only
        :class:`Event` views carrying the time and target but no
        message (the flit/credit payload is not materialised); full
        in-flight introspection needs the slow path.
        """
        base = self._base
        mask = self._mask
        for offset in range(self._size):
            t = base + offset
            l0 = self._lane0[t & mask]
            start = self._cursor0 if offset == 0 else 0
            for index in range(start, len(l0)):
                item = l0[index]
                if item.__class__ is tuple:
                    yield Event(
                        time=t,
                        priority=0,
                        sequence=0,
                        target=getattr(item[0], "__self__", None),
                        message=None,
                    )
                elif not item.cancelled:
                    yield item
            for event in self._rest[t & mask]:
                if not event.cancelled:
                    yield event
        for event in self._overflow:
            if not event.cancelled:
                yield event

    def __iter__(self) -> Iterator[Event]:
        return self.live_events()

    def clear(self) -> None:
        """Drop every pending item, marking events cancelled (see
        :meth:`EventQueue.clear <repro.sim.events.EventQueue.clear>`
        for why the mark matters).  Records are simply dropped."""
        for l0 in self._lane0:
            for item in l0:
                if item.__class__ is not tuple:
                    item.cancelled = True
            l0.clear()
        for rest in self._rest:
            for event in rest:
                event.cancelled = True
            rest.clear()
        for event in self._overflow:
            event.cancelled = True
        self._overflow.clear()
        self._cursor0 = 0
        self._ring_items = 0
        self._live = 0

    # -- fast drain interface -------------------------------------------

    def append_now(self, record: tuple) -> None:
        """File *record* into the cycle currently draining (the
        zero-delay credit path)."""
        self._lane0[self._base & self._mask].append(record)
        self._ring_items += 1
        self._live += 1

    def begin_cycle(self, limit: int | float = _NO_LIMIT) -> int | None:
        """Advance the cursor to the earliest slot still holding
        items and return its time, or ``None`` when nothing is due at
        or before *limit*.  Far-future events entering the window are
        migrated first.  The returned slot may hold only cancelled
        events; the drain handles (and the scan clears) those.
        """
        over = self._overflow
        if over:
            while over and over[0].cancelled:
                heappop(over)
            if over:
                if not self._ring_items and over[0].time > self._base:
                    # Idle gap: jump the window to the overflow front.
                    self._base = over[0].time
                    self._cursor0 = 0
                if over[0].time < self._base + self._size:
                    self._migrate()
        if not self._ring_items:
            return None
        lane0 = self._lane0
        rest = self._rest
        mask = self._mask
        t = self._base
        cursor = self._cursor0
        while True:
            i = t & mask
            l0 = lane0[i]
            if len(l0) > cursor or rest[i]:
                break
            if l0:
                # Fully consumed on a previous partial drain; release
                # the references before the ring reuses the slot.
                l0.clear()
            cursor = 0
            t += 1
        if t > limit:
            # Park no further than the horizon: the caller's clock
            # stops at `limit` and later pushes must stay >= _base.
            parked = int(limit)
            if parked > self._base:
                self._base = parked
                self._cursor0 = 0
            return None
        self._base = t
        self._cursor0 = cursor
        return t

    def finish_cycle(self, t: int) -> None:
        """Mark slot *t* fully drained (its lane was emptied)."""
        self._lane0[t & self._mask].clear()
        self._cursor0 = 0
        # _base stays at t: time only moves when the next begin_cycle
        # finds work, and pushes at the current cycle remain legal.

    def _migrate(self) -> None:
        """Move overflow events now inside the window into their
        slots, preserving exact ``(priority, sequence)`` order."""
        over = self._overflow
        horizon = self._base + self._size
        mask = self._mask
        base_index = self._base & mask
        prefixes: dict[int, list[Event]] = {}
        while over:
            head = over[0]
            if head.cancelled:
                heappop(over)
                continue
            if head.time >= horizon:
                break
            heappop(over)
            i = head.time & mask
            if head.priority == 0:
                prefixes.setdefault(i, []).append(head)
            else:
                heappush(self._rest[i], head)
            self._ring_items += 1
        for i, items in prefixes.items():
            if i == base_index and self._cursor0:
                # Cannot happen through the kernel API (the slot's
                # overflow drains before its first delivery); guard
                # against silent misordering all the same.
                raise SimulationError(
                    "overflow migration into a partially drained slot"
                )
            # Prepend: anything already in the slot was pushed while
            # the slot was inside the window, i.e. strictly after
            # every event that overflowed for it.
            self._lane0[i][:0] = items

    def _peek(self, limit: int | float) -> int | None:
        """Time of the earliest *live* item at or before *limit*
        (cancelled fronts are pruned), or ``None``."""
        while True:
            t = self.begin_cycle(limit)
            if t is None:
                return None
            i = t & self._mask
            l0 = self._lane0[i]
            rest = self._rest[i]
            i0 = self._cursor0
            while i0 < len(l0):
                item = l0[i0]
                if item.__class__ is tuple or not item.cancelled:
                    self._cursor0 = i0
                    return t
                i0 += 1
                self._ring_items -= 1
            self._cursor0 = i0
            while rest and rest[0].cancelled:
                heappop(rest)
                self._ring_items -= 1
            if rest:
                return t
            # The slot held only cancelled items; complete it.
            self.finish_cycle(t)
            self._base = t + 1 if self._ring_items else t


@register_engine(
    "batched",
    description=(
        "cycle-synchronous batched phases; fastest, observers force "
        "the slow path"
    ),
)
class BatchedEngine(Engine):
    """Cycle-driven engine producing byte-identical results to the
    event kernel (see the module docstring for the phase structure
    and the fast/slow mode rules)."""

    name = "batched"

    def __init__(self, vector_threshold: int = 32) -> None:
        #: Minimum send-phase batch size for the numpy arrival-time
        #: computation; smaller batches use the pure-python loop
        #: (identical integers either way).
        self.vector_threshold = vector_threshold
        self._network = None
        self._calendar: CycleCalendar | None = None
        self._mode: str | None = None  # None until the first run()
        self._pending: list[tuple] = []
        self._recv: list[tuple] = []
        self._delays: list[int] = []
        self._np_delays = None
        #: Flush statistics (introspection and tests).
        self.flush_batches = 0
        self.flushed_flits = 0
        self.vector_batches = 0

    @property
    def mode(self) -> str | None:
        """``"fast"``, ``"slow"``, or ``None`` before the first run."""
        return self._mode

    def make_queue(self) -> CycleCalendar:
        if self._calendar is not None:
            raise SimulationError(
                "a BatchedEngine instance drives one Simulator; "
                "build a fresh engine (or pass the spec string)"
            )
        self._calendar = CycleCalendar()
        return self._calendar

    def prepare_network(self, network) -> None:
        if self._network is not None and self._network is not network:
            raise SimulationError(
                "a BatchedEngine instance is bound to one network; "
                "build a fresh engine per Network"
            )
        self._network = network

    def on_observer_added(self, simulator) -> None:
        if self._mode == "fast":
            raise SimulationError(
                "the batched engine committed to its fast path on the "
                "first run() because no observers were attached; "
                "attach observers before running, or select "
                "engine='wheel'/'heap' (docs/engines.md)"
            )

    def run(self, simulator, until, max_events):
        if self._mode is None:
            # Decided once: the fast path rewires the model with
            # record sinks and cannot honour per-event observers.
            self._mode = "slow" if simulator._observers else "fast"
            if self._mode == "fast" and self._network is not None:
                self._install_fast_path()
        if self._mode == "slow":
            return simulator._event_loop(until, max_events)
        return self._run_fast(simulator, until, max_events)

    # -- fast path -------------------------------------------------------

    def _run_fast(self, sim, until, max_events):
        """The cycle loop.  Mirrors ``Simulator._event_loop``'s
        unobserved contract exactly: stop/cap checks between
        deliveries, time advanced only when something is delivered,
        the end-of-run jump to ``until``, and ``events_processed``
        committed when the loop ends."""
        sim._ensure_initialized()
        cal = self._calendar
        mask = cal._mask
        lane0_ring = cal._lane0
        rest_ring = cal._rest
        processed = 0
        events_base = sim._events_processed
        cap = -1 if max_events is None else max_events
        limit = _NO_LIMIT if until is None else until
        interrupted = False
        try:
            while not interrupted:
                if sim._stop_requested or processed == cap:
                    break
                t = cal.begin_cycle(limit)
                if t is None:
                    break
                i = t & mask
                l0 = lane0_ring[i]
                rest = rest_ring[i]
                i0 = cal._cursor0
                previous_now = sim._now
                sim._now = t
                before_slot = processed
                consumed = 0
                try:
                    while True:
                        if sim._stop_requested or processed == cap:
                            cal._cursor0 = i0
                            interrupted = True
                            break
                        if i0 < len(l0):
                            if rest and rest[0].priority < 0:
                                item = heappop(rest)
                            else:
                                item = l0[i0]
                                i0 += 1
                        elif rest:
                            item = heappop(rest)
                        else:
                            break
                        consumed += 1
                        if item.__class__ is tuple:
                            # Records: (receive, wire_vc, flit) for a
                            # router arrival, (receive, flit) for an
                            # NI arrival, (deliver,) for a credit.
                            f = item[0]
                            n = len(item)
                            if n == 3:
                                f(item[1], item[2])
                            elif n == 2:
                                f(item[1])
                            else:
                                f()
                            processed += 1
                        elif item.cancelled:
                            continue
                        else:
                            processed += 1
                            message = item.message
                            if item.handler is not None:
                                item.handler(message)
                            else:
                                item.target.handle_message(message)
                finally:
                    # Ring bookkeeping committed per slot, not per
                    # item (the deltas compose with the increments
                    # append_now/_flush make mid-slot).
                    cal._ring_items -= consumed
                    cal._live -= processed - before_slot
                if processed == before_slot:
                    # Nothing was delivered (cancelled items, or a
                    # stop/cap hit first): the kernel would not have
                    # advanced the clock to this cycle.
                    sim._now = previous_now
                if not interrupted:
                    cal.finish_cycle(t)
        finally:
            sim._events_processed = events_base + processed
        if (
            until is not None
            and sim._now < until
            and not sim._stop_requested
        ):
            next_time = cal.peek_time() if processed == cap else None
            if next_time is None or next_time > until:
                previous = sim._now
                sim._now = until
                for observer in sim._observer_snapshot:
                    observer.on_time_advanced(sim, previous, until)
        return processed

    # -- model wiring ----------------------------------------------------

    def _install_fast_path(self) -> None:
        """Rewire the model for the fast path.  Called once, at the
        first fast run:

        * gate sends become record sinks (flits collect in the
          per-cycle pending buffer; credits become reusable one-tuple
          records filed straight into the current cycle's lane);
        * record delivery runs through per-port *specialised
          closures* — the generic receive/activate call chain, the
          buffer-layer method hops, and the router phase bodies are
          inlined, with invariants (buffer overflow, misroute,
          switching-state integrity) still enforced by delegating the
          anomalous branches to the canonical methods;
        * the scheduler's phase dispatch is replaced by a driver that
          runs the specialised phase closures over the same agent
          dict, preserving activation/pruning order exactly.

        Only the batched engine pays for — and benefits from — this:
        the canonical methods stay untouched for the event engines,
        and the equivalence suite pins the two implementations
        together byte for byte.
        """
        from repro.noc.interface import NetworkInterface  # noqa: F401
        from repro.noc.router import Router

        network = self._network
        sched = network.scheduler
        sim = network.simulator
        cal = self._calendar
        append_now = cal.append_now
        pending_append = self._pending.append
        agents = sched._agents
        num_vcs = network.num_vcs
        delays = self._delays
        recv = self._recv

        def credit_records_for(gate):
            # The upstream end of a (zero-delay) credit link: one
            # reusable record per VC — identical content every time,
            # so the hot path never allocates for credits.
            peer = gate.peer
            target = peer.module
            if isinstance(target, Router):
                out_port = target._output_of_gate[peer]
                return [
                    _make_router_credit(
                        target, out_port.credits, vc, sched, agents
                    )
                    for vc in range(num_vcs)
                ]
            record = _make_ni_credit(target, sched, agents)
            return [record] * num_vcs

        def receiver_for(gate):
            peer = gate.peer
            target = peer.module
            if isinstance(target, Router):
                return (
                    _make_router_receiver(
                        target,
                        target._input_of_gate[peer],
                        sched,
                        agents,
                    ),
                    True,
                )
            return (
                _make_ni_receiver(target, sched, agents, append_now),
                False,
            )

        def make_sink(idx):
            def sink(flit, vc, _append=pending_append, _idx=idx):
                _append((_idx, flit, vc))

            return sink

        # Pass 1: credit records (receivers and phase closures read
        # them) and the link table.
        for router in network.routers:
            router._fast_append = append_now
            for port in router._input_order:
                if port.credit_gate.delay != 0:
                    raise SimulationError(
                        "batched fast path requires zero-delay "
                        "credit links"
                    )
                port.credit_records = credit_records_for(
                    port.credit_gate
                )
            for port in router._output_order:
                port.flit_sink = make_sink(len(delays))
                delays.append(port.data_gate.delay)
                recv.append(port.data_gate)  # resolved in pass 2
        for ni in network.interfaces:
            ni._fast_append = append_now
            ni.credit_records = credit_records_for(ni.credit_out)
            ni.flit_sink = make_sink(len(delays))
            delays.append(ni.data_out.delay)
            recv.append(ni.data_out)
        # Pass 2: arrival-side receiver closures (credit records of
        # every port exist now).
        for idx, gate in enumerate(recv):
            recv[idx] = receiver_for(gate)
        if delays and max(delays) >= CycleCalendar.WINDOW:
            raise SimulationError(
                f"link latency {max(delays)} does not fit the "
                f"batched calendar window ({CycleCalendar.WINDOW} "
                f"cycles); use engine='wheel'"
            )
        if _np is not None:
            self._np_delays = _np.asarray(delays, dtype=_np.int64)
        # Pass 3: per-agent specialised phase closures and the
        # pending-work deque lists the pruning step scans.
        for router in network.routers:
            router._fast_advance = _make_router_advance(
                router, sim, append_now
            )
            router._fast_send = _make_router_send(router, sim)
            router._fast_deques = [
                lane._flits
                for port in router._input_order
                for lane in port.lanes
            ] + [
                queue._flits
                for port in router._output_order
                for queue in port.queues
            ]
        for ni in network.interfaces:
            ni._fast_advance = None  # the NI has no advance stage
            ni._fast_send = _make_ni_send(ni, sim)
            ni._fast_deques = [ni._backlog]
        self._install_phase_driver(sched, sim)

    def _install_phase_driver(self, sched, sim) -> None:
        """Shadow the scheduler's ``handle_message`` with a driver
        running the specialised phase closures.  The phase *events*
        stay real (priorities 1 and 2 in the calendar), so ordering
        against user-scheduled events and ``events_processed`` are
        untouched — only the per-agent bodies change."""
        advance_msg = sched._advance_msg
        send_msg = sched._send_msg
        agents = sched._agents
        flush = self._flush
        push = self._calendar.push

        def fast_activate(agent):
            # CycleScheduler.activate with the two kernel.schedule
            # calls inlined (tick_time >= now always holds, so the
            # SchedulingError guard is dead here).
            agents[agent] = None
            if sched._tick_time is not None:
                return
            now = sim._now
            if sched._advance_done_at < now:
                tick_time = now
            else:
                tick_time = now + 1
            sched._tick_time = tick_time
            push(Event(tick_time, 1, 0, sched, advance_msg))
            push(Event(tick_time, 2, 0, sched, send_msg))

        sched.activate = fast_activate

        def handle_phases(message):
            if message is advance_msg:
                sched._advance_done_at = sim._now
                for agent in agents:
                    step = agent._fast_advance
                    if step is not None:
                        step()
                return
            if message is not send_msg:
                raise TypeError(f"unexpected message {message!r}")
            for agent in agents:
                agent._fast_send()
            flush()
            sched._tick_time = None
            idle = [
                agent
                for agent in agents
                if not any(agent._fast_deques)
            ]
            for agent in idle:
                del agents[agent]
            if agents:
                sched.activate(next(iter(agents)))

        sched.handle_message = handle_phases

    def _flush(self) -> None:
        """End-of-send-phase link traversal: file every flit sent
        this cycle into its arrival lane in one batched update."""
        pending = self._pending
        count = len(pending)
        if not count:
            return
        cal = self._calendar
        lane0 = cal._lane0
        mask = cal._mask
        now = cal._base  # the cycle currently draining
        recv = self._recv
        self.flush_batches += 1
        self.flushed_flits += count
        np_delays = self._np_delays
        if np_delays is not None and count >= self.vector_threshold:
            self.vector_batches += 1
            idx = _np.fromiter(
                (entry[0] for entry in pending),
                dtype=_np.int64,
                count=count,
            )
            arrivals = (np_delays[idx] + now).tolist()
        else:
            local_delays = self._delays
            arrivals = [
                now + local_delays[entry[0]] for entry in pending
            ]
        for entry, t in zip(pending, arrivals):
            fn, is_router = recv[entry[0]]
            lane0[t & mask].append(
                (fn, entry[2], entry[1])
                if is_router
                else (fn, entry[1])
            )
        cal._ring_items += count
        cal._live += count
        pending.clear()


# -- specialised fast-path closures -------------------------------------
#
# Each builder compiles one router/NI role into a closure with the
# canonical call chain inlined: no Message, no Event, no buffer-layer
# method hops, activation folded into delivery.  The closures are
# *semantically identical* to the canonical methods they shadow
# (Router.advance_phase/_candidate/_execute_move, Router.send_phase,
# NetworkInterface.send_phase, receive_flit/receive_credit), and the
# anomalous branches — killed packets, buffer overflow, misrouted or
# interleaved flits — delegate back to those methods so invariants
# raise the exact same errors.  The equivalence suite pins the pair
# together byte for byte on every topology family; change both or
# neither.


def _make_router_credit(router, credits, vc, sched, agents):
    """Reusable record delivering one credit to an output port VC."""

    def deliver():
        credits[vc] += 1
        agents[router] = None
        if sched._tick_time is None:
            sched.activate(router)

    return (deliver,)


def _make_ni_credit(ni, sched, agents):
    """Reusable record returning one injection credit to *ni*."""

    def deliver():
        ni._credits += 1
        if ni._backlog:
            agents[ni] = None
            if sched._tick_time is None:
                sched.activate(ni)

    return (deliver,)


def _make_router_receiver(router, port, sched, agents):
    """Arrival side of a data link into router input *port*."""
    lanes = port.lanes

    def receive(wire_vc, flit):
        if flit.packet.killed:
            router.receive_flit(port, wire_vc, flit)
            return
        lane = lanes[wire_vc]
        dq = lane._flits
        if len(dq) >= lane.capacity:
            lane.push(flit)  # raises the canonical flow-control error
            return
        dq.append(flit)
        occupancy = len(dq)
        if occupancy > lane.peak:
            lane.peak = occupancy
        agents[router] = None
        if sched._tick_time is None:
            sched.activate(router)

    return receive


def _make_ni_receiver(ni, sched, agents, append_now):
    """Arrival side of an ejection link into *ni* (the sink)."""
    stats = ni.stats
    node = ni.node
    sim = ni.simulator
    records = ni.credit_records

    def receive(flit):
        packet = flit.packet
        if packet.killed:
            ni.receive_flit(flit)
            return
        if packet.dst != node:
            ni._consume(flit)  # raises the canonical misroute error
            return
        append_now(records[flit.wire_vc])
        now = sim._now
        stats.record_consumed_flit(now)
        if flit.index == packet.size_flits - 1:
            stats.record_packet_delivered(packet, now)

    return receive


def _make_router_advance(router, sim, append_now):
    """Specialised Router.advance_phase (+_candidate/_execute_move)."""
    input_order = router._input_order
    num_inputs = len(input_order)
    outputs = router._outputs
    node = router.node
    decide = router.routing.decide
    max_vc = router.num_vcs - 1
    dead_ports = router.dead_ports

    if router.num_vcs == 1:
        # Single-VC variant (the mesh family): one lane per input
        # port, one queue per output port, so wire VC and output VC
        # are both always 0 and the round-robin lane pointer is
        # constant — the lane loop, the modular arithmetic and the
        # per-call attribute walks all collapse.
        inputs = [
            (
                index,
                port,
                port.lanes[0]._flits,
                port.lanes[0],
                port.switching._state,
                port.switching,
                port.pending,
                port.credit_records[0],
            )
            for index, port in enumerate(input_order)
        ]

        def advance_single():
            now = sim._now
            claims = None
            for entry in inputs:
                dq = entry[2]
                if not dq:
                    continue
                (
                    index,
                    port,
                    dq,
                    lane,
                    state,
                    switching,
                    pending_map,
                    record0,
                ) = entry
                flit = dq[0]
                if flit.index == 0 and not state:
                    pending = pending_map.get(0)
                    if pending is None:
                        decision = decide(node, flit.packet)
                        pending = (decision.port, 0)
                        if decision.port in dead_ports:
                            pending = router._reroute(flit.packet)
                            if pending is None:
                                router.kill_sink(
                                    flit.packet, node, decision.port
                                )
                                continue
                        pending_map[0] = pending
                    queue = outputs[pending[0]].queues[pending[1]]
                    if (
                        len(queue._flits) >= queue.capacity
                        or queue.last_enqueue_cycle == now
                        or queue.owner is not None
                    ):
                        continue
                    if claims is None:
                        claims = {}
                    entry = claims.get(queue)
                    if entry is None:
                        claims[queue] = entry = []
                    entry.append(
                        (index, dq, state, switching, pending_map,
                         record0, flit)
                    )
                    continue
                # Body flit (an interleaved head raises in route_of,
                # exactly as the canonical path does).
                entry = state.get(0)
                if entry is None or entry[0] is not flit.packet:
                    switching.route_of(0, flit.packet)
                queue = outputs[entry[1]].queues[entry[2]]
                qd = queue._flits
                if (
                    len(qd) >= queue.capacity
                    or queue.last_enqueue_cycle == now
                    or queue.owner is not flit.packet
                ):
                    continue
                # _execute_move, inlined (body flit: no ownership
                # change on entry; rr_next_lane stays 0).
                dq.popleft()
                flit.enqueued_at = now
                qd.append(flit)
                occupancy = len(qd)
                if occupancy > queue.peak:
                    queue.peak = occupancy
                queue.last_enqueue_cycle = now
                if flit.index == flit.packet.size_flits - 1:
                    queue.owner = None
                    del state[0]
                append_now(record0)
            if claims is not None:
                for queue, requests in claims.items():
                    if len(requests) == 1:
                        winner = requests[0]
                    else:
                        grant = queue.rr_grant
                        winner = min(
                            requests,
                            key=lambda req: (
                                (req[0] - grant) % num_inputs
                            ),
                        )
                    (
                        index,
                        dq,
                        state,
                        switching,
                        pending_map,
                        record0,
                        flit,
                    ) = winner
                    queue.rr_grant = (index + 1) % num_inputs
                    del pending_map[0]
                    switching.set_route(0, flit.packet, queue.port, 0)
                    # _execute_move, inlined (head: takes ownership).
                    dq.popleft()
                    queue.owner = flit.packet
                    flit.enqueued_at = now
                    qd = queue._flits
                    qd.append(flit)
                    occupancy = len(qd)
                    if occupancy > queue.peak:
                        queue.peak = occupancy
                    queue.last_enqueue_cycle = now
                    if flit.index == flit.packet.size_flits - 1:
                        queue.owner = None
                        state.pop(0, None)
                    append_now(record0)

        return advance_single

    def advance():
        now = sim._now
        claims = None
        for index in range(num_inputs):
            port = input_order[index]
            lanes = port.lanes
            lane_count = len(lanes)
            lane_start = port.rr_next_lane % lane_count
            state = port.switching._state
            for lane_offset in range(lane_count):
                wire_vc = (lane_start + lane_offset) % lane_count
                lane = lanes[wire_vc]
                dq = lane._flits
                if not dq:
                    continue
                flit = dq[0]
                if flit.is_head and wire_vc not in state:
                    pending = port.pending.get(wire_vc)
                    if pending is None:
                        decision = decide(node, flit.packet)
                        out_vc = decision.vc
                        if out_vc > max_vc:
                            out_vc = max_vc
                        pending = (decision.port, out_vc)
                        if decision.port in dead_ports:
                            pending = router._reroute(flit.packet)
                            if pending is None:
                                router.kill_sink(
                                    flit.packet, node, decision.port
                                )
                                continue
                        port.pending[wire_vc] = pending
                    queue = outputs[pending[0]].queues[pending[1]]
                    if (
                        len(queue._flits) >= queue.capacity
                        or queue.last_enqueue_cycle == now
                        or queue.owner is not None
                    ):
                        continue
                    if claims is None:
                        claims = {}
                    claims.setdefault(queue, []).append(
                        (index, port, wire_vc, flit)
                    )
                    break
                # Body flit (an interleaved head raises in route_of,
                # exactly as the canonical path does).
                entry = state.get(wire_vc)
                if entry is None or entry[0] is not flit.packet:
                    port.switching.route_of(wire_vc, flit.packet)
                queue = outputs[entry[1]].queues[entry[2]]
                qd = queue._flits
                if (
                    len(qd) >= queue.capacity
                    or queue.last_enqueue_cycle == now
                    or queue.owner is not flit.packet
                ):
                    continue
                # _execute_move, inlined (body flit: no ownership
                # change on entry).
                dq.popleft()
                flit.enqueued_at = now
                qd.append(flit)
                occupancy = len(qd)
                if occupancy > queue.peak:
                    queue.peak = occupancy
                queue.last_enqueue_cycle = now
                if flit.is_tail:
                    queue.owner = None
                    del state[wire_vc]
                port.rr_next_lane = (wire_vc + 1) % lane_count
                append_now(port.credit_records[wire_vc])
                break
        if claims is not None:
            for queue, requests in claims.items():
                if len(requests) == 1:
                    winner = requests[0]
                else:
                    grant = queue.rr_grant
                    winner = min(
                        requests,
                        key=lambda req: (req[0] - grant) % num_inputs,
                    )
                index, port, wire_vc, flit = winner
                queue.rr_grant = (index + 1) % num_inputs
                del port.pending[wire_vc]
                state = port.switching
                state.set_route(
                    wire_vc, flit.packet, queue.port, queue.vc
                )
                # _execute_move, inlined (head flit: takes ownership).
                port.lanes[wire_vc]._flits.popleft()
                queue.owner = flit.packet
                flit.enqueued_at = now
                qd = queue._flits
                qd.append(flit)
                occupancy = len(qd)
                if occupancy > queue.peak:
                    queue.peak = occupancy
                queue.last_enqueue_cycle = now
                if flit.is_tail:
                    queue.owner = None
                    state._state.pop(wire_vc, None)
                port.rr_next_lane = (wire_vc + 1) % len(port.lanes)
                append_now(port.credit_records[wire_vc])

    return advance


def _make_router_send(router, sim):
    """Specialised Router.send_phase."""
    from repro.routing.base import LOCAL_PORT

    pipeline = router.config.router_pipeline
    dead_ports = router.dead_ports

    if router.num_vcs == 1:
        # Single-VC variant: one queue per port, VC always 0, the
        # round-robin VC pointer constant.  Reordered so the empty
        # check (the common case) runs first — the skipped checks
        # have no side effects, so the move set is unchanged.
        singles = [
            (
                port,
                port.queues[0],
                port.queues[0]._flits,
                port.credits,
                port.name == LOCAL_PORT,
                port.name,
                port.flit_sink,
                port.flits_sent_by_vc,
            )
            for port in router._output_order
        ]

        def send_single():
            now = sim._now
            for entry in singles:
                qd = entry[2]
                if not qd:
                    continue
                (
                    port,
                    queue,
                    qd,
                    credits,
                    is_local,
                    name,
                    sink,
                    by_vc,
                ) = entry
                if dead_ports and name in dead_ports:
                    continue
                if credits[0] <= 0:
                    continue
                flit = qd[0]
                if pipeline and flit.enqueued_at == now:
                    continue
                qd.popleft()
                credits[0] -= 1
                port.flits_sent += 1
                by_vc[0] += 1
                if flit.index == 0 and not is_local:
                    flit.packet.hops += 1
                flit.wire_vc = 0
                sink(flit, 0)

        return send_single

    ports = [
        (
            port,
            port.queues,
            port.credits,
            port.name == LOCAL_PORT,
            port.name,
            port.flit_sink,
        )
        for port in router._output_order
    ]

    def send():
        now = sim._now
        for port, queues, credits, is_local, name, sink in ports:
            if dead_ports and name in dead_ports:
                continue
            count = len(queues)
            start = port.rr_next_vc % count
            for offset in range(count):
                queue = queues[(start + offset) % count]
                vc = queue.vc
                if credits[vc] <= 0:
                    continue
                qd = queue._flits
                if not qd:
                    continue
                flit = qd[0]
                if pipeline and flit.enqueued_at == now:
                    continue
                qd.popleft()
                credits[vc] -= 1
                port.rr_next_vc = (vc + 1) % count
                port.flits_sent += 1
                port.flits_sent_by_vc[vc] += 1
                if flit.is_head and not is_local:
                    flit.packet.hops += 1
                flit.wire_vc = vc
                sink(flit, vc)
                break

    return send


def _make_ni_send(ni, sim):
    """Specialised NetworkInterface.send_phase."""
    from repro.noc.packet import Flit

    backlog = ni._backlog
    stats = ni.stats
    sink = ni.flit_sink

    def send():
        while backlog and backlog[0].killed:
            backlog.popleft()
            ni._next_flit_index = 0
        if not backlog or ni._credits <= 0:
            return
        packet = backlog[0]
        index = ni._next_flit_index
        flit = Flit(packet, index)
        flit.wire_vc = 0
        now = sim._now
        if index == 0:
            packet.injected_at = now
        ni._credits -= 1
        stats.record_injected_flit(now)
        sink(flit, 0)
        if index == packet.size_flits - 1:
            backlog.popleft()
            ni._next_flit_index = 0
        else:
            ni._next_flit_index = index + 1

    return send
