"""The kernel observer protocol: watch a simulation without touching it.

An :class:`Observer` receives a callback from the :class:`Simulator
<repro.sim.kernel.Simulator>` after every event delivery and on every
advancement of simulation time.  Observers are registered through a
public API (:meth:`~repro.sim.kernel.Simulator.add_observer`) and can
be detached at any moment, including from inside one of their own
callbacks — the kernel never needs to be subclassed, wrapped, or
monkey-patched to be watched.

This is the substrate of the whole observability layer
(:mod:`repro.obs`): event tracing, per-link utilization timelines and
kernel profiling are all plain observers.  When no observer is
attached the kernel takes its original fast path; the cost of the
feature is a single truthiness check per event.

Contract:

* ``on_event_delivered(simulator, event)`` fires *after* the event's
  handler has run, so module state already reflects the delivery.
  Observers fire in registration order.
* ``on_time_advanced(simulator, old_time, new_time)`` fires whenever
  ``simulator.now`` strictly increases — before the first event of
  the new time is dispatched, and once more for the final jump to the
  ``until`` horizon of a time-limited :meth:`run
  <repro.sim.kernel.Simulator.run>`.
* Observers must not schedule, cancel, or deliver events; they read.
  (This is a convention, not an enforced sandbox — violating it
  forfeits the determinism guarantees the test suite pins.)

Usage::

    class Counter(Observer):
        def __init__(self):
            self.deliveries = 0

        def on_event_delivered(self, simulator, event):
            self.deliveries += 1

    sim = Simulator()
    counter = Counter()
    sim.add_observer(counter)
    ... build modules, run ...
    sim.remove_observer(counter)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.events import Event
    from repro.sim.kernel import Simulator


class Observer:
    """Base class for kernel observers; every hook defaults to a no-op.

    Subclass and override the hooks you need.  Deriving from this
    class (rather than duck-typing) keeps the kernel's dispatch free
    of ``hasattr`` checks on the hot path.
    """

    __slots__ = ()

    def on_event_delivered(
        self, simulator: "Simulator", event: "Event"
    ) -> None:
        """Called after *event*'s handler ran, in registration order."""

    def on_time_advanced(
        self, simulator: "Simulator", old_time: int, new_time: int
    ) -> None:
        """Called whenever simulation time strictly increases."""
