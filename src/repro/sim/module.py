"""Modules and gates: the structural half of the kernel.

A :class:`SimModule` is the unit of behaviour (a router, a network
interface, a traffic source).  Modules expose named :class:`Gate`
objects; an *output* gate is connected to exactly one *input* gate of
another module through a channel with a fixed integer delay.  Sending a
message through a gate schedules its delivery at
``now + channel_delay``.

This mirrors the OMNeT++ simple-module/gate model closely enough that
the paper's node architecture (figure 4) maps one-to-one onto it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.errors import GateConnectionError
from repro.sim.events import Event
from repro.sim.messages import Message

if TYPE_CHECKING:
    from repro.sim.kernel import Simulator


class Gate:
    """A named connection point on a module.

    Gates are created through :meth:`SimModule.add_gate` and wired with
    :meth:`connect`.  A gate may have at most one outgoing channel; any
    number of gates may point *to* the same input gate (fan-in), which
    the NoC model does not use but costs nothing to allow.
    """

    __slots__ = ("module", "name", "peer", "delay")

    def __init__(self, module: "SimModule", name: str) -> None:
        self.module = module
        self.name = name
        self.peer: "Gate | None" = None
        self.delay = 0

    @property
    def full_name(self) -> str:
        """Dotted ``module.gate`` identifier for diagnostics."""
        return f"{self.module.name}.{self.name}"

    def connect(self, peer: "Gate", delay: int = 1) -> None:
        """Create a unidirectional channel ``self -> peer``.

        Args:
            peer: Destination gate on another module.
            delay: Channel latency in cycles; must be >= 0.

        Raises:
            GateConnectionError: if this gate is already connected or
                the delay is negative.
        """
        if self.peer is not None:
            raise GateConnectionError(
                f"gate {self.full_name} is already connected to "
                f"{self.peer.full_name}"
            )
        if delay < 0:
            raise GateConnectionError(
                f"channel delay must be >= 0, got {delay}"
            )
        self.peer = peer
        self.delay = delay

    def is_connected(self) -> bool:
        return self.peer is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = self.peer.full_name if self.peer else None
        return f"Gate({self.full_name} -> {target}, delay={self.delay})"


class SimModule:
    """Base class for all behavioural components.

    Subclasses override :meth:`handle_message` (and optionally
    :meth:`initialize` / :meth:`finalize`).  Within a handler they may
    call :meth:`send`, :meth:`schedule_self`, and :meth:`cancel_event`.

    Modules must be registered with a :class:`Simulator` before the
    simulation starts; registration happens automatically when the
    module is constructed with a simulator argument.
    """

    def __init__(self, simulator: "Simulator", name: str) -> None:
        self.simulator = simulator
        self.name = name
        self.gates: dict[str, Gate] = {}
        simulator.register_module(self)

    # -- structure ---------------------------------------------------

    def add_gate(self, name: str) -> Gate:
        """Create and return a gate named *name*.

        Raises:
            GateConnectionError: if the name is already taken.
        """
        if name in self.gates:
            raise GateConnectionError(
                f"module {self.name} already has a gate named {name!r}"
            )
        gate = Gate(self, name)
        self.gates[name] = gate
        return gate

    def gate(self, name: str) -> Gate:
        """Return the gate named *name*.

        Raises:
            KeyError: if no such gate exists.
        """
        return self.gates[name]

    # -- lifecycle hooks ---------------------------------------------

    def initialize(self) -> None:
        """Called once by the simulator before the first event."""

    def handle_message(self, message: Message) -> None:
        """Called on every delivery addressed to this module."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Called once after the simulation stops."""

    # -- actions -----------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        # Reads the simulator's field directly: send() runs once per
        # event on every experiment's hot path, and the extra property
        # hop through Simulator.now is measurable there.
        return self.simulator._now

    def send(self, message: Message, gate: Gate | str) -> "Event":
        """Send *message* through *gate*; delivery after the channel delay.

        Args:
            message: Message to deliver.
            gate: A :class:`Gate` owned by this module, or its name.

        Raises:
            GateConnectionError: if the gate is unconnected or not
                owned by this module.
        """
        if isinstance(gate, str):
            gate = self.gates[gate]
        if gate.module is not self:
            raise GateConnectionError(
                f"module {self.name} cannot send through foreign gate "
                f"{gate.full_name}"
            )
        peer = gate.peer
        if peer is None:
            raise GateConnectionError(
                f"gate {gate.full_name} is not connected"
            )
        simulator = self.simulator
        now = simulator._now
        message.sender = self
        message.arrival_gate = peer
        message.sent_at = now
        if message.created_at is None:
            message.created_at = now
        # Bypasses Simulator.schedule: its past-time guard cannot fire
        # here (connect() rejects negative delays, so the delivery is
        # never before ``now``), and this call is once-per-event hot.
        return simulator._queue.push(
            Event(
                time=now + gate.delay,
                priority=0,
                sequence=0,
                target=peer.module,
                message=message,
            )
        )

    def schedule_self(
        self, delay: int, message: Message, priority: int = 0
    ) -> "Event":
        """Schedule *message* back to this module after *delay* cycles.

        Self-messages are the kernel's timers; ``message.arrival_gate``
        is ``None`` on delivery.
        """
        simulator = self.simulator
        now = simulator._now
        message.sender = self
        message.arrival_gate = None
        message.sent_at = now
        if message.created_at is None:
            message.created_at = now
        return simulator.schedule(
            now + delay, self, message, priority=priority
        )

    def cancel_event(self, event: "Event") -> None:
        """Cancel a previously scheduled event (idempotent)."""
        self.simulator.cancel(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
