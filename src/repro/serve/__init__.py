"""Campaign-as-a-service: asyncio HTTP serving of sweep simulations.

The serving layer promotes the hardened campaign machinery of
:mod:`repro.experiments.parallel` into a long-lived process
(``python -m repro serve``) that answers repeated "simulate this
(topology, pattern, rate)" requests as cheaply as one simulation:

* :mod:`repro.serve.store` — :class:`ResultStore`, the
  content-addressed result store keyed by
  :func:`~repro.experiments.parallel.point_key`.  Finished points are
  disk reads forever after.
* :mod:`repro.serve.jobs` — :class:`JobManager`, the asyncio job
  layer: a persistent worker-process pool running the same guarded
  entry point as :func:`~repro.experiments.parallel.execute_points`,
  with **single-flight coalescing** (concurrent requests for one key
  share one in-flight future) in front of the store.
* :mod:`repro.serve.server` — :class:`CampaignServer`, a stdlib
  asyncio HTTP server streaming per-point progress as chunked JSONL
  in the :class:`~repro.experiments.parallel.CampaignManifest` entry
  format.
* :mod:`repro.serve.client` — :class:`ServeClient`, a stdlib
  ``http.client`` companion (``python -m repro submit``).

No dependencies beyond the standard library; see ``docs/serving.md``.

Import note: :mod:`repro.experiments.parallel` imports
:class:`ResultStore` from here (its :class:`ResultCache` delegates to
the store), so this package eagerly exposes only the store and lazily
resolves the heavier modules — which import ``parallel`` back — via
module ``__getattr__``.
"""

from __future__ import annotations

from repro.serve.store import ResultStore

__all__ = [
    "BackgroundServer",
    "CampaignServer",
    "JobManager",
    "ResultStore",
    "ServeClient",
    "ServeStats",
]

_LAZY = {
    "JobManager": "repro.serve.jobs",
    "ServeStats": "repro.serve.jobs",
    "BackgroundServer": "repro.serve.server",
    "CampaignServer": "repro.serve.server",
    "ServeClient": "repro.serve.client",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)
