"""Stdlib HTTP client for the campaign server.

:class:`ServeClient` speaks to a :class:`~repro.serve.server.
CampaignServer` with nothing but ``http.client``, decoding the
chunked-JSONL campaign stream incrementally — entries are yielded as
the server settles each point, not after the whole campaign finishes.
``python -m repro submit`` is a thin CLI over it.

The client is synchronous on purpose: submitters are scripts and CI
steps, and ``http.client`` handles chunked transfer decoding
transparently, so streaming consumption is just ``readline()`` in a
loop.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Iterator

__all__ = ["ServeClient", "ServerError"]


class ServerError(RuntimeError):
    """A non-success HTTP response from the campaign server.

    Attributes:
        status: The HTTP status code.
        detail: The server's ``error`` payload, if it sent one.
    """

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(f"server returned {status}: {detail}")
        self.status = status
        self.detail = detail


class ServeClient:
    """Talk to a campaign server at ``host:port``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _get_json(self, path: str) -> dict:
        connection = self._connection()
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            body = response.read().decode()
            if response.status != 200:
                raise ServerError(
                    response.status, _error_detail(body)
                )
            return json.loads(body)
        finally:
            connection.close()

    # -- endpoints ------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._get_json("/healthz")

    def stats(self) -> dict:
        """``GET /stats`` — cumulative serving counters."""
        return self._get_json("/stats")

    def result(self, key: str) -> dict | None:
        """``GET /result/<key>`` — stored result JSON, or None."""
        try:
            return self._get_json(f"/result/{key}")
        except ServerError as exc:
            if exc.status == 404:
                return None
            raise

    def submit(self, spec: dict) -> Iterator[dict]:
        """``POST /campaign``, yielding entries as they stream in.

        Yields one manifest-format dict per point (with its
        ``"source"`` dedupe tier) in completion order, then the final
        ``{"type": "summary", ...}`` dict.

        Raises:
            ServerError: on a non-200 response (e.g. an invalid
                spec rejected before any simulation ran).
        """
        body = json.dumps(spec).encode()
        connection = self._connection()
        try:
            connection.request(
                "POST",
                "/campaign",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            if response.status != 200:
                raise ServerError(
                    response.status,
                    _error_detail(response.read().decode()),
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    def submit_campaign(self, spec: dict) -> tuple[list[dict], dict]:
        """Submit and collect: ``(point_entries, summary)``."""
        entries = list(self.submit(spec))
        if not entries or entries[-1].get("type") != "summary":
            raise ServerError(
                200, "stream ended without a summary line"
            )
        return entries[:-1], entries[-1]

    def wait_until_ready(self, timeout: float = 10.0) -> dict:
        """Poll ``/healthz`` until the server answers.

        Returns the health payload; raises :class:`TimeoutError` if
        the server never comes up within *timeout* seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (OSError, socket.timeout, ServerError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"no campaign server at "
                        f"{self.host}:{self.port} after {timeout:.6g}s"
                    ) from None
                time.sleep(0.05)


def _error_detail(body: str) -> str:
    try:
        payload = json.loads(body)
        if isinstance(payload, dict) and "error" in payload:
            return str(payload["error"])
    except json.JSONDecodeError:
        pass
    return body.strip() or "(no detail)"
