"""Asyncio campaign server: HTTP endpoints over the job layer.

``python -m repro serve`` binds a :class:`CampaignServer`.  The
protocol is deliberately plain HTTP/1.1 on stdlib ``asyncio`` streams
(no framework, no new dependencies):

``GET /healthz``
    ``{"status": "ok", "workers": N}`` — readiness probe.
``GET /stats``
    Cumulative :class:`~repro.serve.jobs.ServeStats` counters plus
    the number of stored results.
``GET /result/<key>``
    The stored :class:`~repro.stats.summary.RunResult` JSON for one
    point key, or 404.
``POST /campaign``
    Body: a campaign spec JSON — the exact format
    :class:`~repro.experiments.campaign.Campaign` accepts.  The
    response streams **chunked JSONL**: one line per point, in
    completion order, each line a
    :func:`~repro.experiments.parallel.manifest_entry` dict with an
    extra ``"source"`` field (``store`` / ``coalesced`` /
    ``simulated``), followed by a final ``{"type": "summary", ...}``
    line.  Because the per-point lines *are* manifest entries, a
    captured stream is a loadable
    :class:`~repro.experiments.parallel.CampaignManifest`.

Dedupe semantics live in :class:`~repro.serve.jobs.JobManager`; the
server only expands specs into sweep points (via
:func:`~repro.experiments.campaign.campaign_points` — the same
expansion batch campaigns use, so point keys agree) and streams the
outcomes as they settle.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http import HTTPStatus

from repro.experiments.campaign import campaign_points
from repro.experiments.parallel import manifest_entry
from repro.serve.jobs import JobManager

__all__ = ["BackgroundServer", "CampaignServer"]

_MAX_REQUEST_BYTES = 4 * 1024 * 1024
_SERVER_NAME = "repro-serve"


def _response_head(
    status: HTTPStatus, content_type: str, *extra: str
) -> bytes:
    lines = [
        f"HTTP/1.1 {status.value} {status.phrase}",
        f"Server: {_SERVER_NAME}",
        f"Content-Type: {content_type}",
        "Connection: close",
        *extra,
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode()


def _json_response(status: HTTPStatus, payload: dict) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return (
        _response_head(
            status,
            "application/json",
            f"Content-Length: {len(body)}",
        )
        + body
    )


def _chunk(data: bytes) -> bytes:
    return f"{len(data):X}\r\n".encode() + data + b"\r\n"


class CampaignServer:
    """The HTTP surface over a :class:`~repro.serve.jobs.JobManager`.

    Args:
        jobs: The job layer (owns the pool, the store, the stats).
        host: Bind address.
        port: Bind port; 0 picks a free one (read :attr:`port` after
            :meth:`start`).
    """

    def __init__(
        self,
        jobs: JobManager,
        host: str = "127.0.0.1",
        port: int = 8642,
    ) -> None:
        self.jobs = jobs
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.jobs.close()

    # -- request plumbing ----------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            await self._handle_request(reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        except Exception as exc:  # noqa: BLE001 — a bug must not kill the server
            try:
                writer.write(
                    _json_response(
                        HTTPStatus.INTERNAL_SERVER_ERROR,
                        {"error": f"{type(exc).__name__}: {exc}"},
                    )
                )
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _handle_request(self, reader, writer) -> None:
        request_line = (await reader.readline()).decode(
            "latin-1"
        ).rstrip("\r\n")
        if not request_line:
            return
        parts = request_line.split()
        if len(parts) != 3:
            writer.write(
                _json_response(
                    HTTPStatus.BAD_REQUEST,
                    {"error": f"malformed request line {request_line!r}"},
                )
            )
            return
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_REQUEST_BYTES:
            writer.write(
                _json_response(
                    HTTPStatus.REQUEST_ENTITY_TOO_LARGE,
                    {"error": f"body over {_MAX_REQUEST_BYTES} bytes"},
                )
            )
            return
        if length:
            body = await reader.readexactly(length)
        await self._route(method, target, body, writer)

    async def _route(
        self, method: str, target: str, body: bytes, writer
    ) -> None:
        if method == "GET" and target == "/healthz":
            writer.write(
                _json_response(
                    HTTPStatus.OK,
                    {
                        "status": "ok",
                        "workers": self.jobs.workers,
                    },
                )
            )
            return
        if method == "GET" and target == "/stats":
            payload = self.jobs.stats.to_dict()
            payload["stored_results"] = len(self.jobs.store)
            payload["inflight"] = len(self.jobs.inflight_keys)
            writer.write(_json_response(HTTPStatus.OK, payload))
            return
        if method == "GET" and target.startswith("/result/"):
            key = target[len("/result/"):]
            data = self.jobs.store.get_dict(key)
            if data is None:
                writer.write(
                    _json_response(
                        HTTPStatus.NOT_FOUND,
                        {"error": f"no stored result for key {key!r}"},
                    )
                )
            else:
                writer.write(_json_response(HTTPStatus.OK, data))
            return
        if method == "POST" and target == "/campaign":
            await self._handle_campaign(body, writer)
            return
        writer.write(
            _json_response(
                HTTPStatus.NOT_FOUND,
                {"error": f"no route for {method} {target}"},
            )
        )

    # -- the campaign endpoint -----------------------------------------

    async def _handle_campaign(self, body: bytes, writer) -> None:
        try:
            spec = json.loads(body.decode())
            if not isinstance(spec, dict):
                raise ValueError("campaign spec must be a JSON object")
            points = campaign_points(spec)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            writer.write(
                _json_response(
                    HTTPStatus.BAD_REQUEST,
                    {"error": f"body is not valid JSON: {exc}"},
                )
            )
            return
        except (ValueError, KeyError, TypeError) as exc:
            writer.write(
                _json_response(
                    HTTPStatus.BAD_REQUEST,
                    {"error": f"invalid campaign spec: {exc}"},
                )
            )
            return
        self.jobs.stats.submissions += 1
        writer.write(
            _response_head(
                HTTPStatus.OK,
                "application/x-ndjson",
                "Transfer-Encoding: chunked",
            )
        )
        await writer.drain()

        queue: asyncio.Queue = asyncio.Queue()

        async def resolve(point) -> None:
            result, source = await self.jobs.result_for(point)
            entry = manifest_entry(
                point, result, cached=source != "simulated"
            )
            entry["source"] = source
            await queue.put(entry)

        # Tasks are intentionally not cancelled if the client
        # disconnects mid-stream: the simulations are already paid
        # for, other submissions may be coalesced onto them, and
        # finishing them warms the store.
        tasks = [
            asyncio.create_task(resolve(point)) for point in points
        ]
        counts = {"store": 0, "coalesced": 0, "simulated": 0}
        ok = failed = 0
        client_gone = False
        for _ in points:
            entry = await queue.get()
            counts[entry["source"]] += 1
            if entry["status"] == "ok":
                ok += 1
            else:
                failed += 1
            if not client_gone:
                try:
                    writer.write(
                        _chunk(
                            (json.dumps(entry) + "\n").encode()
                        )
                    )
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    client_gone = True
        await asyncio.gather(*tasks)
        summary = {
            "type": "summary",
            "points": len(points),
            "ok": ok,
            "failed": failed,
            "store_hits": counts["store"],
            "coalesced": counts["coalesced"],
            "simulated": counts["simulated"],
        }
        if not client_gone:
            try:
                writer.write(
                    _chunk((json.dumps(summary) + "\n").encode())
                )
                writer.write(b"0\r\n\r\n")
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass


class BackgroundServer:
    """A :class:`CampaignServer` on its own thread and event loop.

    The harness tests and embedders use: start, talk to
    ``http://127.0.0.1:<port>`` from any thread, stop.  The foreground
    path (``python -m repro serve``) does not go through here.
    """

    def __init__(self, server: CampaignServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 10.0) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("campaign server failed to start")
        if self._startup_error is not None:
            raise RuntimeError(
                "campaign server failed to start"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        async def main() -> None:
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            await self._stop.wait()
            await self.server.close()

        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
