"""Asyncio job layer: persistent worker pool + single-flight dedupe.

The :class:`JobManager` is the piece that makes N identical
submissions cost one simulation.  Every request for a
:class:`~repro.experiments.runner.SweepPoint` resolves through three
tiers, cheapest first:

1. **Store** — the content-addressed
   :class:`~repro.serve.store.ResultStore` already holds the key: a
   disk read, no simulation.
2. **Coalesce** — another request for the same key is in flight: the
   request awaits the *same* future instead of submitting a duplicate
   (single-flight; the classic ``singleflight`` pattern).
3. **Simulate** — the point is submitted to a persistent
   :class:`~concurrent.futures.ProcessPoolExecutor` running
   :func:`~repro.experiments.parallel.guarded_run`, the same worker
   entry the hardened batch executor uses.  The finished result is
   written to the store *before* the in-flight future resolves, so a
   request arriving in the handoff window hits either the future or
   the store — never a duplicate simulation.

Failures (worker crash, per-point timeout, model exception) become
:class:`~repro.experiments.parallel.FailedResult` values.  They
resolve coalesced waiters — everyone waiting on a doomed key learns
of the failure once — but are **not** stored, so the next submission
retries the point instead of serving a cached misfortune.

Everything here runs on one event loop; the dict operations around
``_inflight`` are atomic between ``await`` points, which is the whole
concurrency story — no locks.
"""

from __future__ import annotations

import asyncio
import dataclasses
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.experiments.parallel import (
    FailedResult,
    PointResult,
    guarded_run,
    point_key,
)
from repro.experiments.runner import SweepPoint
from repro.serve.store import ResultStore

__all__ = ["JobManager", "ServeStats"]

#: How a request was satisfied, per point.
SOURCE_STORE = "store"
SOURCE_COALESCED = "coalesced"
SOURCE_SIMULATED = "simulated"


@dataclasses.dataclass(slots=True)
class ServeStats:
    """Cumulative serving counters, exposed at ``GET /stats``.

    Attributes:
        submissions: Campaign submissions accepted.
        points: Point requests resolved (across all submissions).
        store_hits: Requests answered straight from the store.
        coalesced: Requests that joined an in-flight simulation.
        simulated: Simulations actually run (the cost that matters).
        failed: Requests that resolved to a
            :class:`~repro.experiments.parallel.FailedResult`
            (coalesced waiters on a failed key count too).
    """

    submissions: int = 0
    points: int = 0
    store_hits: int = 0
    coalesced: int = 0
    simulated: int = 0
    failed: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class JobManager:
    """Store-checked, single-flight, pool-backed point resolution.

    Args:
        store: The content-addressed result store.
        workers: Worker processes in the persistent pool.
        timeout: Optional per-point wall-clock deadline in seconds; an
            expired point resolves to a ``timeout``
            :class:`~repro.experiments.parallel.FailedResult`.  (The
            worker itself is not interruptible; a genuinely wedged
            worker stays occupied until it finishes — the batch
            executor's pool-replacement machinery is deliberately out
            of scope for the server's happy path.)
        retries: Extra attempts after a crashed or failed simulation
            before the point settles as failed.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        workers: int = 2,
        timeout: float | None = None,
        retries: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.store = store
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.stats = ServeStats()
        self._pool: ProcessPoolExecutor | None = None
        self._inflight: dict[str, asyncio.Future] = {}

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers
            )
        return self._pool

    def _rebuild_pool(self) -> None:
        """Replace a broken pool; surviving submissions resubmit."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    @property
    def inflight_keys(self) -> set[str]:
        """Keys currently being simulated (diagnostics)."""
        return set(self._inflight)

    # -- resolution -----------------------------------------------------

    async def result_for(
        self, point: SweepPoint
    ) -> tuple[PointResult, str]:
        """Resolve *point*, returning ``(result, source)``.

        ``source`` is ``"store"``, ``"coalesced"`` or ``"simulated"``
        — the dedupe tier that satisfied the request.
        """
        key = point_key(point)
        self.stats.points += 1
        hit = self.store.get(key)
        if hit is not None:
            self.stats.store_hits += 1
            return hit, SOURCE_STORE
        pending = self._inflight.get(key)
        if pending is not None:
            self.stats.coalesced += 1
            # shield(): one waiter's cancellation (a dropped client
            # connection) must not cancel the shared simulation.
            result = await asyncio.shield(pending)
            if isinstance(result, FailedResult):
                self.stats.failed += 1
            return result, SOURCE_COALESCED
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            result = await self._simulate(point)
            if not isinstance(result, FailedResult):
                # Store first, then resolve: a request landing in the
                # handoff window finds the key in exactly one tier.
                self.store.put(key, result)
            else:
                self.stats.failed += 1
            self.stats.simulated += 1
            future.set_result(result)
            return result, SOURCE_SIMULATED
        except BaseException as exc:
            future.set_exception(exc)
            # Nobody may be awaiting; don't let the loop log it.
            future.exception()
            raise
        finally:
            del self._inflight[key]

    async def _simulate(self, point: SweepPoint) -> PointResult:
        """Run *point* in the pool, with retries and crash recovery."""
        loop = asyncio.get_running_loop()
        attempts = 0
        while True:
            attempts += 1
            pool = self._ensure_pool()
            try:
                call = loop.run_in_executor(pool, guarded_run, point)
                if self.timeout is not None:
                    status, payload = await asyncio.wait_for(
                        call, self.timeout
                    )
                else:
                    status, payload = await call
            except asyncio.TimeoutError:
                kind, detail = (
                    "timeout",
                    f"exceeded {self.timeout:.6g}s deadline",
                )
            except BrokenProcessPool:
                self._rebuild_pool()
                kind, detail = (
                    "crash",
                    "worker process died (pool broken)",
                )
            else:
                if status == "ok":
                    return payload
                kind, detail = "error", str(payload)
            if attempts <= self.retries:
                continue
            return FailedResult(
                topology=point.topology,
                pattern=point.pattern,
                rate=point.rate,
                seed=point.settings.seed,
                error=kind,
                detail=detail,
                attempts=attempts,
            )
