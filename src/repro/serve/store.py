"""Content-addressed result store: one JSON file per point key.

The store is the dedupe substrate of the campaign server (and of the
older sweep :class:`~repro.experiments.parallel.ResultCache`, which
is now a thin point-hashing adapter over it).  Keys are the sha256
hex digests produced by
:func:`~repro.experiments.parallel.point_key` — a stable hash over a
point's canonical JSON form, covering topology, pattern, rate and the
full settings dataclass (seed, engine, fault plan, ... included).
Content addressing is what makes the serving layer's economics work:
a million submissions of the same (topology, pattern, rate, settings)
cell resolve to the same key, so at most one simulation ever runs and
every later request is a disk read.

Layout: ``<directory>/<key>.json`` holding a
:meth:`~repro.stats.summary.RunResult.to_dict` payload.  Writes go
through a per-process temp file and an atomic rename, so concurrent
writers (worker processes, multiple servers sharing a directory) and
crashed processes never leave a torn entry visible; a corrupt or
unreadable file reads as a miss and is simply overwritten by the next
simulation of that key.  The layout is byte-compatible with the
``.repro-cache`` directories earlier campaign runs wrote, so a server
can be pointed at an existing cache and serve it immediately.

Only finished :class:`~repro.stats.summary.RunResult` objects are
stored.  Failures are deliberately *not*: a
:class:`~repro.experiments.parallel.FailedResult` describes one
attempt's misfortune (a timeout, a dead worker), not a property of
the point, so persisting it would turn a transient fault into a
permanently cached wrong answer.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.stats.summary import RunResult

__all__ = ["ResultStore"]


class ResultStore:
    """Directory of finished results, addressed by content key."""

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)

    def path_for(self, key: str) -> pathlib.Path:
        """Where *key*'s entry lives (whether or not it exists yet)."""
        return self.directory / f"{key}.json"

    def get(self, key: str) -> RunResult | None:
        """The stored result for *key*, or None on a miss.

        A torn or unreadable entry counts as a miss: the point simply
        re-runs and overwrites it.
        """
        data = self.get_dict(key)
        if data is None:
            return None
        return RunResult.from_dict(data)

    def get_dict(self, key: str) -> dict | None:
        """The raw JSON payload for *key*, or None on a miss.

        The server's ``GET /result/<key>`` endpoint serves this
        directly, skipping a decode/re-encode round trip.
        """
        try:
            data = json.loads(self.path_for(key).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None

    def put(self, key: str, result: RunResult) -> None:
        """Store *result*; atomic rename so readers never see a torn
        file and concurrent writers of the same key converge on one
        valid entry (last rename wins; both wrote the same content)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(result.to_dict()))
        tmp.replace(path)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> set[str]:
        """Every key with a stored entry (readability not checked)."""
        if not self.directory.is_dir():
            return set()
        return {
            path.stem
            for path in self.directory.glob("*.json")
        }

    def __len__(self) -> int:
        return len(self.keys())
