"""Trace-driven traffic: record and replay exact packet sequences.

The paper's future work calls for "specific traffic patterns
originated by common applications".  A :class:`Trace` is the
transport-level form of such a workload: a time-ordered list of
``(cycle, src, dst)`` packet creations.  Traces can be

* written by hand or loaded from CSV (``Trace.from_csv``),
* synthesised from any stochastic pattern for reproducible replay
  (:func:`record_trace`),
* replayed into a network with ``Network.install_trace``.

Replay is exact: packet *i* of a trace is created at its recorded
cycle regardless of simulator seed, so two topologies can be compared
under byte-identical workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.sim.rng import RngStream
from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern, TrafficSpec


@dataclass(frozen=True, slots=True, order=True)
class TraceEntry:
    """One packet creation event."""

    time: int
    src: int
    dst: int


class Trace:
    """A validated, time-ordered packet trace."""

    def __init__(self, entries: Iterable[TraceEntry]) -> None:
        self.entries = sorted(entries)
        for entry in self.entries:
            if entry.time < 0:
                raise ValueError(f"negative time in {entry}")
            if entry.src == entry.dst:
                raise ValueError(f"self-addressed entry {entry}")
            if entry.src < 0 or entry.dst < 0:
                raise ValueError(f"negative node id in {entry}")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def horizon(self) -> int:
        """Time of the last entry (0 for an empty trace)."""
        return self.entries[-1].time if self.entries else 0

    def validate_for(self, topology: Topology) -> None:
        """Check every node id fits *topology*.

        Raises:
            ValueError: on an out-of-range node.
        """
        n = topology.num_nodes
        for entry in self.entries:
            if entry.src >= n or entry.dst >= n:
                raise ValueError(
                    f"{entry} outside topology of {n} nodes"
                )

    # -- CSV round trip --------------------------------------------------

    def to_csv(self) -> str:
        """Serialise as ``time,src,dst`` lines with a header."""
        lines = ["time,src,dst"]
        lines.extend(
            f"{e.time},{e.src},{e.dst}" for e in self.entries
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_csv(cls, text: str) -> "Trace":
        """Parse the :meth:`to_csv` format (header optional)."""
        entries = []
        for line_number, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("time"):
                continue
            parts = line.split(",")
            if len(parts) != 3:
                raise ValueError(
                    f"line {line_number}: expected time,src,dst, "
                    f"got {line!r}"
                )
            time, src, dst = (int(p) for p in parts)
            entries.append(TraceEntry(time, src, dst))
        return cls(entries)


def record_trace(
    pattern: TrafficPattern,
    injection_rate: float,
    packet_size_flits: int,
    cycles: int,
    seed: int = 0,
) -> Trace:
    """Materialise a stochastic workload into a replayable trace.

    Draws the same per-source Poisson processes the live sources use
    (same seed derivation), so ``record_trace`` + replay produces the
    same packet population as running the pattern directly.
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be > 0, got {cycles}")
    spec = TrafficSpec(pattern, injection_rate)
    entries = []
    for src in pattern.sources():
        rng = RngStream(seed, f"source{src}")
        clock = 0.0
        mean = spec.mean_interarrival(packet_size_flits)
        while True:
            clock += spec.process.next_interarrival(mean, rng)
            time = math.ceil(clock)
            if time > cycles:
                break
            entries.append(
                TraceEntry(time, src, pattern.destination_for(src, rng))
            )
    return Trace(entries)
