"""Packet interarrival processes.

The simulator's clock is discrete, so continuous draws are accumulated
on a real-valued timeline and generation events land on the ceiling
cycle; the long-run rate is preserved exactly.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.sim.rng import RngStream


class InjectionProcess(ABC):
    """Generates interarrival times (in cycles, real-valued)."""

    name = "abstract"

    @abstractmethod
    def next_interarrival(self, mean: float, rng: RngStream) -> float:
        """Draw the gap to the next packet, with the given *mean*."""


class PoissonInjection(InjectionProcess):
    """Exponential interarrivals — the paper's source model."""

    name = "poisson"

    def next_interarrival(self, mean: float, rng: RngStream) -> float:
        return rng.exponential(mean)


class PeriodicInjection(InjectionProcess):
    """Deterministic constant-gap arrivals (CBR sources)."""

    name = "periodic"

    def next_interarrival(self, mean: float, rng: RngStream) -> float:
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        return mean


class BernoulliInjection(InjectionProcess):
    """Geometric interarrivals: one trial per cycle with p = 1/mean.

    The discrete-time analogue of the Poisson process; useful to check
    that conclusions do not hinge on the continuous approximation.
    """

    name = "bernoulli"

    def next_interarrival(self, mean: float, rng: RngStream) -> float:
        if mean < 1:
            raise ValueError(
                f"Bernoulli process needs mean >= 1 cycle, got {mean}"
            )
        success_probability = 1.0 / mean
        draw = rng.uniform()
        # Inverse-CDF sampling of the geometric distribution.
        return 1 + math.floor(
            math.log(1 - draw) / math.log(1 - success_probability)
        )
