"""Traffic generation: spatial patterns and injection processes.

The paper's three scenarios map to:

* single hot-spot — ``HotspotTraffic([target])``,
* double hot-spot — ``HotspotTraffic`` with two targets, using the
  paper's placements (:func:`~repro.traffic.patterns.double_hotspot_targets`),
* homogeneous sources/destinations — ``UniformTraffic``.

The extra patterns (transpose, bit-complement, tornado, neighbor,
shuffle, bit-reverse) cover the paper's stated future work on
"specific traffic patterns originated by common applications".

Packet interarrival times are Poisson by default ("Packet sources
adopt a Poisson interarrival distribution of constant size packets"),
with Bernoulli and periodic processes available for sensitivity
studies.
"""

from repro.traffic.base import TrafficPattern, TrafficSpec
from repro.traffic.injection import (
    BernoulliInjection,
    InjectionProcess,
    PeriodicInjection,
    PoissonInjection,
)
from repro.traffic.patterns import (
    BitComplementTraffic,
    BitReverseTraffic,
    HotspotTraffic,
    NearestNeighborTraffic,
    ShuffleTraffic,
    TornadoTraffic,
    Transpose3DTraffic,
    TransposeTraffic,
    UniformTraffic,
    double_hotspot_targets,
)
from repro.traffic.trace import Trace, TraceEntry, record_trace

__all__ = [
    "BernoulliInjection",
    "BitComplementTraffic",
    "BitReverseTraffic",
    "HotspotTraffic",
    "InjectionProcess",
    "NearestNeighborTraffic",
    "PeriodicInjection",
    "PoissonInjection",
    "ShuffleTraffic",
    "TornadoTraffic",
    "Trace",
    "TraceEntry",
    "TrafficPattern",
    "TrafficSpec",
    "Transpose3DTraffic",
    "TransposeTraffic",
    "UniformTraffic",
    "double_hotspot_targets",
    "record_trace",
]
