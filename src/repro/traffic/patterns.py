"""Spatial traffic patterns.

``UniformTraffic`` and ``HotspotTraffic`` are the paper's scenarios;
the remaining patterns implement classic synthetic workloads for the
paper's "specific traffic patterns" future work.
"""

from __future__ import annotations

from repro.sim.rng import RngStream
from repro.topology.base import Topology, TopologyError
from repro.topology.mesh import MeshTopology
from repro.traffic.base import TrafficPattern


class UniformTraffic(TrafficPattern):
    """Homogeneous scenario: every node sends to every other node with
    uniform probability (paper Section 3.1.3)."""

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology, "uniform")

    def destination_for(self, src: int, rng: RngStream) -> int:
        dst = rng.uniform_int(0, self.topology.num_nodes - 2)
        if dst >= src:
            dst += 1
        return dst


class HotspotTraffic(TrafficPattern):
    """All traffic converges on one or more hot-spot targets.

    Target nodes are pure sinks (they do not generate packets); every
    other node is a source and addresses a target chosen uniformly
    (paper Sections 3.1.1 and 3.1.2).
    """

    def __init__(self, topology: Topology, targets: list[int]) -> None:
        if not targets:
            raise ValueError("hotspot traffic needs at least one target")
        unique = sorted(set(targets))
        if len(unique) != len(targets):
            raise ValueError(f"duplicate hotspot targets: {targets}")
        for target in unique:
            topology.check_node(target)
        if len(unique) >= topology.num_nodes:
            raise ValueError("every node is a hotspot target; no sources")
        name = "hotspot[" + ",".join(str(t) for t in unique) + "]"
        super().__init__(topology, name)
        self.targets = unique

    def sources(self) -> list[int]:
        excluded = set(self.targets)
        return [
            node
            for node in range(self.topology.num_nodes)
            if node not in excluded
        ]

    def destination_for(self, src: int, rng: RngStream) -> int:
        if len(self.targets) == 1:
            return self.targets[0]
        return self.targets[rng.uniform_int(0, len(self.targets) - 1)]


class BitComplementTraffic(TrafficPattern):
    """Node ``i`` always sends to node ``N - 1 - i``."""

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology, "bit-complement")

    def sources(self) -> list[int]:
        n = self.topology.num_nodes
        # The middle node of an odd-sized network would target itself.
        return [i for i in range(n) if n - 1 - i != i]

    def destination_for(self, src: int, rng: RngStream) -> int:
        return self.topology.num_nodes - 1 - src


class TornadoTraffic(TrafficPattern):
    """Node ``i`` sends halfway-minus-one around the node space —
    adversarial for rings, benign for meshes."""

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology, "tornado")
        self._offset = max(1, topology.num_nodes // 2 - 1)

    def destination_for(self, src: int, rng: RngStream) -> int:
        return (src + self._offset) % self.topology.num_nodes


class TransposeTraffic(TrafficPattern):
    """Matrix-transpose traffic on a square mesh: ``(r, c) -> (c, r)``.

    Diagonal nodes (``r == c``) are excluded from the source set.
    """

    def __init__(self, topology: MeshTopology) -> None:
        if not isinstance(topology, MeshTopology):
            raise TopologyError(
                "transpose traffic is defined on meshes only"
            )
        if not topology.is_regular or topology.rows != topology.cols:
            raise TopologyError(
                f"transpose traffic needs a square regular mesh, "
                f"got {topology.name}"
            )
        super().__init__(topology, "transpose")
        self._mesh = topology

    def sources(self) -> list[int]:
        return [
            node
            for node in range(self._mesh.num_nodes)
            if len(set(self._mesh.coordinates(node))) == 2
        ]

    def destination_for(self, src: int, rng: RngStream) -> int:
        row, col = self._mesh.coordinates(src)
        return self._mesh.node_at(col, row)


class Transpose3DTraffic(TrafficPattern):
    """Coordinate-rotation traffic on a cubic 3D grid:
    ``(x, y, z) -> (y, z, x)``.

    The 3D analogue of matrix transpose — every packet changes all
    three coordinates (unless it sits on the main diagonal), so it
    stresses each dimension-order stage in turn.  Main-diagonal nodes
    (``x == y == z``) are fixed points and generate nothing.
    """

    def __init__(self, topology: Topology) -> None:
        from repro.topology.mesh3d import Mesh3DTopology, Torus3DTopology

        if not isinstance(topology, (Mesh3DTopology, Torus3DTopology)):
            raise TopologyError(
                "3D transpose traffic is defined on 3D grids only"
            )
        if len(set(topology.sizes)) != 1:
            raise TopologyError(
                f"3D transpose traffic needs a cubic grid, "
                f"got {topology.name}"
            )
        super().__init__(topology, "transpose3d")
        self._grid = topology

    def sources(self) -> list[int]:
        return [
            node
            for node in range(self._grid.num_nodes)
            if len(set(self._grid.coordinates(node))) > 1
        ]

    def destination_for(self, src: int, rng: RngStream) -> int:
        x, y, z = self._grid.coordinates(src)
        return self._grid.node_at(y, z, x)


def _require_power_of_two(num_nodes: int, pattern: str) -> None:
    if num_nodes < 2 or num_nodes & (num_nodes - 1):
        raise ValueError(
            f"{pattern} traffic is defined by bit permutation and "
            f"needs a power-of-two node count, got {num_nodes}"
        )


class ShuffleTraffic(TrafficPattern):
    """Perfect-shuffle permutation: rotate the address bits left by
    one, so node ``b_{k-1} b_{k-2} .. b_0`` sends to
    ``b_{k-2} .. b_0 b_{k-1}`` — the FFT/sorting-network access
    pattern.  Nodes 0 and N-1 are fixed points and generate nothing.
    """

    def __init__(self, topology: Topology) -> None:
        _require_power_of_two(topology.num_nodes, "shuffle")
        super().__init__(topology, "shuffle")
        self._bits = topology.num_nodes.bit_length() - 1

    def _target(self, src: int) -> int:
        mask = self.topology.num_nodes - 1
        return ((src << 1) | (src >> (self._bits - 1))) & mask

    def sources(self) -> list[int]:
        return [
            node
            for node in range(self.topology.num_nodes)
            if self._target(node) != node
        ]

    def destination_for(self, src: int, rng: RngStream) -> int:
        return self._target(src)


class BitReverseTraffic(TrafficPattern):
    """Bit-reversal permutation: node ``b_{k-1} .. b_0`` sends to
    ``b_0 .. b_{k-1}`` — adversarial for dimension-ordered routes.
    Palindromic addresses are fixed points and generate nothing.
    """

    def __init__(self, topology: Topology) -> None:
        _require_power_of_two(topology.num_nodes, "bit-reverse")
        super().__init__(topology, "bit-reverse")
        self._bits = topology.num_nodes.bit_length() - 1

    def _target(self, src: int) -> int:
        result = 0
        for bit in range(self._bits):
            result = (result << 1) | ((src >> bit) & 1)
        return result

    def sources(self) -> list[int]:
        return [
            node
            for node in range(self.topology.num_nodes)
            if self._target(node) != node
        ]

    def destination_for(self, src: int, rng: RngStream) -> int:
        return self._target(src)


class NearestNeighborTraffic(TrafficPattern):
    """Each packet goes to a uniformly chosen direct neighbor — the
    parallel-local-communication regime where the paper notes "the NoC
    architecture behaves better"."""

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology, "nearest-neighbor")
        # Adjacency is immutable for a pattern's lifetime, so the
        # sorted neighbor lists are computed once here instead of
        # re-sorting the adjacency on every generated packet (which
        # made this the slowest pattern by far at high rates).  The
        # sort order — and with it every RNG draw — is identical.
        self._neighbors: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(topology.neighbors(node)))
            for node in range(topology.num_nodes)
        )

    def destination_for(self, src: int, rng: RngStream) -> int:
        neighbors = self._neighbors[src]
        return neighbors[rng.uniform_int(0, len(neighbors) - 1)]


def double_hotspot_targets(
    topology: Topology, scenario: str
) -> list[int]:
    """The paper's double hot-spot placements (Section 3.1.2).

    For meshes: scenario ``"A"`` puts the two targets on opposite
    corners (paper's nodes 1 and N, i.e. 0 and N-1), ``"B"`` one in
    the corner and one in the middle (node 5 of the 2x4 mesh, node 14
    of the 4x6 mesh, 1-based), ``"C"`` both in the middle (5 and 6 /
    14 and 15, 1-based).

    For Ring and Spidergon: ``"A"`` places the targets in opposition
    (North and South of the ring drawing, nodes 0 and N/2) and ``"B"``
    at North and West (nodes 0 and 3N/4).

    Raises:
        ValueError: for an unknown scenario label, or scenario ``"C"``
            on non-mesh topologies (the paper defines it for meshes
            only).
    """
    n = topology.num_nodes
    label = scenario.upper()
    if isinstance(topology, MeshTopology):
        if label == "A":
            return [0, n - 1]
        if label == "B":
            corner = 0
            middle = topology.center_node()
            if middle == corner:
                middle = n - 1
            return sorted({corner, middle})
        if label == "C":
            middle = topology.center_node()
            second = middle + 1 if middle + 1 < n else middle - 1
            return sorted({middle, second})
        raise ValueError(f"unknown mesh double-hotspot scenario {scenario!r}")
    if label == "A":
        return sorted({0, n // 2})
    if label == "B":
        west = (3 * n) // 4
        if west in (0, n):
            west = n - 1
        return sorted({0, west})
    raise ValueError(
        f"unknown ring/spidergon double-hotspot scenario {scenario!r}"
    )
