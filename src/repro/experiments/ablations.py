"""Ablation studies for the design choices DESIGN.md calls out.

Each function returns a :class:`~repro.experiments.report.FigureData`
like the paper-figure generators, and has a matching benchmark in
``benchmarks/``.

* :func:`ablation_output_buffer_depth` — the paper reports that
  "small buffer tuning ha[s] some marginal impact on the peak
  performances"; this sweep quantifies it.
* :func:`ablation_virtual_channels` — removing the second output
  queue from the ring-based topologies removes the dateline escape
  class; under uniform load the ring then deadlocks (throughput
  collapse), demonstrating why the paper provisions a pair.
* :func:`ablation_spidergon_routing` — across-first vs table-driven
  shortest-path routing on the Spidergon (across-first is itself
  minimal, so the delta isolates the VC discipline and tie-breaking).
* :func:`ablation_packet_size` — sensitivity to the 6-flit packet
  assumption.
* :func:`ablation_mesh_policy` — factorized vs irregular "real mesh"
  construction, analytically.

Run from the command line::

    python -m repro.experiments.ablations buffers --quick
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.experiments.report import FigureData, format_table
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.noc.config import NocConfig
from repro.routing import TableRouting
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    average_distance,
    diameter,
)
from repro.traffic import UniformTraffic


def _with_config(
    settings: SimulationSettings, **overrides
) -> SimulationSettings:
    config = dataclasses.replace(settings.config, **overrides)
    return dataclasses.replace(settings, config=config)


def ablation_output_buffer_depth(
    settings: SimulationSettings | None = None,
    depths=(1, 2, 3, 4, 6, 8),
    num_nodes: int = 16,
    injection_rate: float = 0.45,
) -> FigureData:
    """Saturation throughput vs output-queue depth (paper: 3 flits)."""
    settings = settings or SimulationSettings()
    figure = FigureData(
        "ablation-buffers",
        f"Uniform-traffic throughput vs output buffer depth "
        f"(N={num_nodes}, lambda={injection_rate})",
        "depth",
        list(depths),
    )
    topologies = [
        RingTopology(num_nodes),
        SpidergonTopology(num_nodes),
        MeshTopology.factorized(num_nodes),
    ]
    for topology in topologies:
        values = []
        for depth in depths:
            run_settings = _with_config(
                settings, output_buffer_flits=depth
            )
            result = run_simulation(
                topology,
                UniformTraffic(topology),
                injection_rate,
                run_settings,
            )
            values.append(result.throughput)
        figure.add_series(topology.name, values)
    figure.notes.append("paper default depth is 3 flits")
    return figure


def ablation_virtual_channels(
    settings: SimulationSettings | None = None,
    num_nodes: int = 16,
    rates=(0.1, 0.2, 0.4),
) -> FigureData:
    """One vs two output queues on Ring and Spidergon.

    With a single VC the dateline discipline cannot operate (every
    packet is forced onto queue 0) and the ring's channel dependency
    cycle is complete: sustained uniform load deadlocks, visible as a
    throughput collapse relative to the 2-VC configuration.
    """
    settings = settings or SimulationSettings()
    figure = FigureData(
        "ablation-vcs",
        f"Throughput with 1 vs 2 virtual channels (N={num_nodes}, "
        "uniform traffic)",
        "lambda",
        list(rates),
    )
    for topology_cls in (RingTopology, SpidergonTopology):
        for num_vcs in (2, 1):
            topology = topology_cls(num_nodes)
            values = []
            for rate in rates:
                run_settings = _with_config(settings, num_vcs=num_vcs)
                result = run_simulation(
                    topology,
                    UniformTraffic(topology),
                    rate,
                    run_settings,
                )
                values.append(result.throughput)
            figure.add_series(f"{topology.name}-{num_vcs}vc", values)
    figure.notes.append(
        "1-VC rings can deadlock under wormhole: collapsed throughput "
        "is the expected signature, not a bug"
    )
    return figure


def ablation_spidergon_routing(
    settings: SimulationSettings | None = None,
    num_nodes: int = 16,
    rates=(0.1, 0.25, 0.4, 0.6),
) -> FigureData:
    """Across-first vs table-driven shortest paths on the Spidergon."""
    settings = settings or SimulationSettings()
    figure = FigureData(
        "ablation-spidergon-routing",
        f"Spidergon{num_nodes} throughput: across-first vs "
        "table-driven shortest path (uniform traffic)",
        "lambda",
        list(rates),
    )
    topology = SpidergonTopology(num_nodes)
    for label, routing_factory in (
        ("across-first", lambda: None),
        ("table", lambda: TableRouting(topology)),
    ):
        values = []
        for rate in rates:
            result = run_simulation(
                topology,
                UniformTraffic(topology),
                rate,
                settings,
                routing=routing_factory(),
            )
            values.append(result.throughput)
        figure.add_series(label, values)
    figure.notes.append(
        "table routing runs with a single VC and no dateline: "
        "high-load collapse reflects lost deadlock protection"
    )
    return figure


def ablation_packet_size(
    settings: SimulationSettings | None = None,
    sizes=(2, 4, 6, 10, 16),
    num_nodes: int = 16,
    injection_rate: float = 0.3,
) -> FigureData:
    """Throughput and latency vs packet length (paper: 6 flits).

    The injection rate is held in flits/cycle, so offered load is
    constant across sizes; longer packets stress wormhole path
    holding.
    """
    settings = settings or SimulationSettings()
    figure = FigureData(
        "ablation-packet-size",
        f"Spidergon{num_nodes} uniform traffic vs packet size "
        f"(lambda={injection_rate} flits/cycle)",
        "flits/packet",
        list(sizes),
    )
    topology = SpidergonTopology(num_nodes)
    throughputs: list[float | None] = []
    latencies: list[float | None] = []
    for size in sizes:
        run_settings = _with_config(settings, packet_size_flits=size)
        result = run_simulation(
            topology,
            UniformTraffic(topology),
            injection_rate,
            run_settings,
        )
        throughputs.append(result.throughput)
        latencies.append(result.avg_latency)
    figure.add_series("throughput", throughputs)
    figure.add_series("latency", latencies)
    return figure


def ablation_mesh_policy(
    min_nodes: int = 4, max_nodes: int = 64
) -> FigureData:
    """Factorized vs irregular real-mesh construction, analytically."""
    node_counts = [
        n for n in range(min_nodes, max_nodes + 1) if n % 2 == 0
    ]
    figure = FigureData(
        "ablation-mesh-policy",
        "Real-mesh construction policies: diameter and E[D]",
        "N",
        list(node_counts),
    )
    fact_nd: list[float | None] = []
    irr_nd: list[float | None] = []
    fact_ed: list[float | None] = []
    irr_ed: list[float | None] = []
    for n in node_counts:
        factorized = MeshTopology.factorized(n)
        irregular = MeshTopology.irregular(n)
        fact_nd.append(diameter(factorized))
        irr_nd.append(diameter(irregular))
        fact_ed.append(average_distance(factorized))
        irr_ed.append(average_distance(irregular))
    figure.add_series("factorized-ND", fact_nd)
    figure.add_series("irregular-ND", irr_nd)
    figure.add_series("factorized-E[D]", fact_ed)
    figure.add_series("irregular-E[D]", irr_ed)
    return figure


ALL_ABLATIONS = {
    "buffers": ablation_output_buffer_depth,
    "vcs": ablation_virtual_channels,
    "spidergon-routing": ablation_spidergon_routing,
    "packet-size": ablation_packet_size,
    "mesh-policy": ablation_mesh_policy,
}

_ANALYTICAL = {"mesh-policy"}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point mirroring ``repro.experiments.figures``."""
    parser = argparse.ArgumentParser(description="Run ablation studies.")
    parser.add_argument(
        "ablation", choices=sorted(ALL_ABLATIONS) + ["all"]
    )
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    names = (
        sorted(ALL_ABLATIONS) if args.ablation == "all" else [args.ablation]
    )
    settings = SimulationSettings()
    if args.quick:
        settings = settings.scaled(0.1)
    for name in names:
        generator = ALL_ABLATIONS[name]
        if name in _ANALYTICAL:
            figure = generator()
        else:
            figure = generator(settings=settings)
        sys.stdout.write(format_table(figure))
        sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
