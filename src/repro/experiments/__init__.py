"""Experiment harness: sweeps, per-figure definitions, reporting.

Each paper figure has a generator function in
:mod:`repro.experiments.figures` that returns a
:class:`~repro.experiments.report.FigureData`; the ``main`` entry
point (``python -m repro.experiments.figures <fig>``) prints it as an
aligned table and optionally writes CSV.
"""

from repro.experiments.runner import (
    SimulationSettings,
    run_simulation,
    sweep_injection_rates,
)
from repro.experiments.report import FigureData, format_table, to_csv

__all__ = [
    "FigureData",
    "SimulationSettings",
    "format_table",
    "run_simulation",
    "sweep_injection_rates",
    "to_csv",
]
