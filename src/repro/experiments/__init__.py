"""Experiment harness: sweeps, per-figure definitions, reporting.

Each paper figure has a generator function in
:mod:`repro.experiments.figures` that returns a
:class:`~repro.experiments.report.FigureData`; the ``main`` entry
point (``python -m repro.experiments.figures <fig>``) prints it as an
aligned table and optionally writes CSV.
"""

from repro.experiments.parallel import (
    ExecutionStats,
    ResultCache,
    derive_seed,
    execute_points,
    run_sweep_point,
)
from repro.experiments.report import (
    FigureData,
    format_execution_summary,
    format_table,
    to_csv,
)
from repro.experiments.runner import (
    SimulationSettings,
    SweepPoint,
    run_simulation,
    sweep_injection_rates,
)
from repro.experiments.specs import (
    available_routings,
    parse_pattern,
    parse_topology,
    parse_topology_routing,
    register_routing,
)

__all__ = [
    "ExecutionStats",
    "FigureData",
    "ResultCache",
    "SimulationSettings",
    "SweepPoint",
    "derive_seed",
    "execute_points",
    "format_execution_summary",
    "format_table",
    "available_routings",
    "parse_pattern",
    "parse_topology",
    "parse_topology_routing",
    "register_routing",
    "run_simulation",
    "run_sweep_point",
    "sweep_injection_rates",
    "to_csv",
]
