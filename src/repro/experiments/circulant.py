"""Equal-cost Spidergon vs circulant-ring study.

The Spidergon is the ``s = N/2`` member of the circulant family
``C(N; 1, s)``; the paper never asks whether its diametral chord is
the *best* chord.  This campaign answers that under the wire-length
cost model of :mod:`repro.cost.wires`: a chord of span ``s`` on the
circular floorplan costs ``(N/pi) * sin(pi*s/N)`` wire units, so a
shorter chord buys either cheaper wiring or — at equal total wire
budget — leaves budget for nothing extra, making total wire length
the equalizing axis.

For each candidate span the study reports the static graph metrics
(diameter, E[D], link count, total wire length) and the simulated
behaviour (mean latency at a low reference load, accepted throughput
at a saturating load) under one traffic pattern, then names the best
**equal-or-cheaper** candidate: the circulant whose total wire length
does not exceed the Spidergon's and whose saturation throughput is
highest (ties broken by lower reference-load latency).

``python -m repro circulant`` runs it from the command line; the
measured outcome for N=16 is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.formulas import (
    circulant_average_distance,
    circulant_diameter,
)
from repro.cost.wires import total_wire_length
from repro.experiments.report import FigureData
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.specs import parse_pattern
from repro.topology import CirculantTopology, SpidergonTopology


@dataclass(slots=True)
class CandidateResult:
    """One topology's static metrics and simulated behaviour."""

    spec: str
    skip: int | None  # None for the Spidergon reference
    diameter: int
    average_distance: float
    num_links: int
    wire_length: float
    #: Mean packet latency at the reference (low) injection rate.
    latency: float | None = None
    #: Accepted throughput at the saturating (high) injection rate.
    saturation_throughput: float | None = None
    #: Accepted throughput per rate, aligned with the study's rates.
    throughput_curve: list[float] = field(default_factory=list)

    @property
    def is_reference(self) -> bool:
        return self.skip is None


@dataclass(slots=True)
class EqualCostStudy:
    """Outcome of one equal-cost sweep at a fixed node count."""

    num_nodes: int
    pattern: str
    rates: tuple[float, ...]
    reference: CandidateResult
    candidates: list[CandidateResult]
    winner: CandidateResult | None
    figure: FigureData

    @property
    def equal_cost_candidates(self) -> list[CandidateResult]:
        """Candidates whose wire budget fits the Spidergon's."""
        return [
            c
            for c in self.candidates
            if c.wire_length <= self.reference.wire_length + 1e-9
        ]


def candidate_skips(num_nodes: int) -> list[int]:
    """Every canonical chord span for ``C(N; 1, s)``: ``2 .. N//2``."""
    return list(range(2, num_nodes // 2 + 1))


def static_metrics(num_nodes: int, skip: int | None) -> CandidateResult:
    """Graph-only metrics for one family member (no simulation).

    ``skip=None`` selects the Spidergon reference; ``skip=N//2``
    selects the same graph *as a circulant*, which must and does
    yield identical numbers.
    """
    if skip is None:
        topology = SpidergonTopology(num_nodes)
        spec = topology.name
    else:
        topology = CirculantTopology(num_nodes, skip)
        spec = topology.name
    return CandidateResult(
        spec=spec,
        skip=skip,
        diameter=circulant_diameter(
            num_nodes, num_nodes // 2 if skip is None else skip
        ),
        average_distance=circulant_average_distance(
            num_nodes, num_nodes // 2 if skip is None else skip
        ),
        num_links=len(topology.links()),
        wire_length=total_wire_length(topology),
    )


def _simulate(
    topology,
    pattern_spec: str,
    rates: tuple[float, ...],
    settings: SimulationSettings,
    candidate: CandidateResult,
) -> None:
    for rate in rates:
        result = run_simulation(
            topology,
            parse_pattern(pattern_spec, topology),
            rate,
            settings,
        )
        candidate.throughput_curve.append(result.throughput)
        if rate == rates[0]:
            candidate.latency = result.avg_latency
    candidate.saturation_throughput = candidate.throughput_curve[-1]


def equal_cost_study(
    num_nodes: int = 16,
    pattern: str = "uniform",
    rates: tuple[float, ...] = (0.05, 0.2, 0.4, 0.6, 0.8),
    settings: SimulationSettings | None = None,
    skips: list[int] | None = None,
) -> EqualCostStudy:
    """Run the Spidergon-vs-circulant equal-cost comparison.

    Args:
        num_nodes: Even network size (the Spidergon reference needs
            it; the paper's sizes 8/16/24 all qualify).
        pattern: Traffic spec string, evaluated per topology.
        rates: Sweep; ``rates[0]`` is the latency reference point and
            ``rates[-1]`` the saturation point.
        settings: Run-length parameters (defaults to the standard
            20k-cycle / 4k-warmup run).
        skips: Chord spans to evaluate (default: all canonical spans
            ``2..N/2``).

    Raises:
        ValueError: for an odd *num_nodes* or an empty rate sweep.
    """
    if num_nodes % 2:
        raise ValueError(
            f"equal-cost study needs the Spidergon reference, which "
            f"needs an even N; got {num_nodes}"
        )
    if not rates:
        raise ValueError("need at least one injection rate")
    settings = settings or SimulationSettings()
    rates = tuple(rates)

    reference = static_metrics(num_nodes, None)
    _simulate(
        SpidergonTopology(num_nodes), pattern, rates, settings, reference
    )

    candidates = []
    for skip in skips if skips is not None else candidate_skips(num_nodes):
        candidate = static_metrics(num_nodes, skip)
        _simulate(
            CirculantTopology(num_nodes, skip),
            pattern,
            rates,
            settings,
            candidate,
        )
        candidates.append(candidate)

    affordable = [
        c
        for c in candidates
        if c.wire_length <= reference.wire_length + 1e-9
        and c.skip != num_nodes // 2  # the reference itself
    ]
    winner = None
    if affordable:
        winner = max(
            affordable,
            key=lambda c: (
                c.saturation_throughput,
                -(c.latency if c.latency is not None else float("inf")),
            ),
        )

    figure = FigureData(
        "ext-circulant",
        f"Accepted throughput, Spidergon vs circulant chords "
        f"(N={num_nodes}, {pattern} traffic)",
        "rate",
        list(rates),
    )
    figure.add_series(reference.spec, list(reference.throughput_curve))
    for candidate in candidates:
        figure.add_series(
            candidate.spec, list(candidate.throughput_curve)
        )
    figure.notes.append(
        "equal-cost rule: total wire length <= the Spidergon's "
        f"({reference.wire_length:.2f} units)"
    )

    return EqualCostStudy(
        num_nodes=num_nodes,
        pattern=pattern,
        rates=rates,
        reference=reference,
        candidates=candidates,
        winner=winner,
        figure=figure,
    )


def format_study(study: EqualCostStudy) -> str:
    """Render the study as an aligned text report."""
    lines = [
        f"== equal-cost circulant study: N={study.num_nodes}, "
        f"{study.pattern} traffic, rates {list(study.rates)} ==",
        f"{'spec':<16} {'s':>3} {'ND':>3} {'E[D]':>6} {'links':>5} "
        f"{'wire':>7} {'lat@' + format(study.rates[0], 'g'):>9} "
        f"{'thr@' + format(study.rates[-1], 'g'):>9} fits",
    ]
    budget = study.reference.wire_length

    def row(c: CandidateResult) -> str:
        fits = "ref" if c.is_reference else (
            "yes" if c.wire_length <= budget + 1e-9 else "no"
        )
        return (
            f"{c.spec:<16} {'-' if c.skip is None else c.skip:>3} "
            f"{c.diameter:>3} {c.average_distance:>6.3f} "
            f"{c.num_links:>5} {c.wire_length:>7.2f} "
            f"{c.latency:>9.2f} {c.saturation_throughput:>9.4f} {fits}"
        )

    lines.append(row(study.reference))
    lines.extend(row(c) for c in study.candidates)
    if study.winner is None:
        lines.append(
            "no circulant fits the Spidergon's wire budget at this N"
        )
    else:
        w, ref = study.winner, study.reference
        thr_gain = (
            (w.saturation_throughput - ref.saturation_throughput)
            / ref.saturation_throughput
            * 100
        )
        lat_gain = (w.latency - ref.latency) / ref.latency * 100
        lines.append(
            f"winner at equal cost: {w.spec} — saturation throughput "
            f"{w.saturation_throughput:.4f} vs {ref.saturation_throughput:.4f} "
            f"({thr_gain:+.1f}%), latency@{study.rates[0]:g} "
            f"{w.latency:.2f} vs {ref.latency:.2f} ({lat_gain:+.1f}%)"
        )
    return "\n".join(lines)


def main(rest: list[str]) -> int:
    """CLI entry: ``python -m repro circulant [N] [options]``."""
    import argparse

    from repro.experiments.report import format_table

    parser = argparse.ArgumentParser(
        prog="python -m repro circulant",
        description="Equal-wire-cost comparison of the Spidergon "
        "against every circulant chord C(N; 1, s).",
    )
    parser.add_argument(
        "num_nodes",
        nargs="?",
        type=int,
        default=16,
        help="network size (even; default 16)",
    )
    parser.add_argument(
        "--pattern", default="uniform", help="traffic spec"
    )
    parser.add_argument(
        "--rates",
        default="0.05,0.2,0.4,0.6,0.8",
        help="comma-separated injection-rate sweep",
    )
    parser.add_argument(
        "--cycles", type=int, default=20_000, help="run length"
    )
    parser.add_argument(
        "--warmup", type=int, default=4_000, help="warmup cycles"
    )
    parser.add_argument("--seed", type=int, default=1)
    try:
        args = parser.parse_args(rest)
        rates = tuple(float(r) for r in args.rates.split(",") if r)
    except SystemExit as exc:
        return int(exc.code or 0)
    except ValueError:
        print(f"error: bad --rates {args.rates!r}")
        return 2
    try:
        study = equal_cost_study(
            args.num_nodes,
            pattern=args.pattern,
            rates=rates,
            settings=SimulationSettings(
                cycles=args.cycles, warmup=args.warmup, seed=args.seed
            ),
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(format_study(study))
    print()
    print(format_table(study.figure))
    return 0
