"""One generator per paper figure.

Every public ``figure*`` function regenerates the data behind the
corresponding figure of the paper and returns a
:class:`~repro.experiments.report.FigureData`.  Absolute values depend
on the simulator's timing details; the *shapes* (rankings, crossovers,
saturation knees) are the reproduction targets — see EXPERIMENTS.md
for the paper-vs-measured comparison.

Run from the command line::

    python -m repro.experiments.figures fig10           # full size
    python -m repro.experiments.figures fig10 --quick   # ~10x faster
    python -m repro.experiments.figures all --csv out/  # everything
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.analysis import figures as analytical
from repro.experiments.parallel import execute_points
from repro.experiments.report import FigureData, format_table, to_csv
from repro.experiments.runner import SimulationSettings, SweepPoint
from repro.experiments.specs import parse_topology
from repro.topology import (
    MeshTopology,
    Topology,
    average_distance,
)
from repro.traffic import double_hotspot_targets

#: Injection-rate grid (flits/cycle/source) for hot-spot scenarios —
#: with a single consuming destination the interesting range ends
#: early (N sources saturate one 1-flit/cycle sink at rate ~1/N).
HOTSPOT_RATES = [0.01, 0.02, 0.04, 0.06, 0.1, 0.15, 0.25, 0.4]

#: Injection-rate grid for the homogeneous scenario, bracketing the
#: paper's lambda = 0.3 flits/cycle crossover.
UNIFORM_RATES = [0.05, 0.1, 0.2, 0.3, 0.45, 0.7]

#: Network sizes used in the simulation figures (the paper simulates
#: 2x4=8 and 4x6=24 meshes; 8..32 for the validation figure).
SIM_NODE_COUNTS = (8, 24)
VALIDATION_NODE_COUNTS = (8, 12, 16, 24, 32)
UNIFORM_NODE_COUNTS = (8, 16, 24, 32)


def _paper_topology_specs(num_nodes: int) -> list[str]:
    """Ring, Spidergon and the factorized ("real") mesh at size N,
    as spec strings (``mesh<N>`` parses to the factorized mesh)."""
    return [
        f"ring{num_nodes}",
        f"spidergon{num_nodes}",
        f"mesh{num_nodes}",
    ]


def _paper_topologies(num_nodes: int) -> list[Topology]:
    """Ring, Spidergon and the factorized ("real") mesh at size N."""
    return [
        parse_topology(spec)
        for spec in _paper_topology_specs(num_nodes)
    ]


def _sweep_series(
    series: list[tuple[str, str, str]],
    rates,
    settings: SimulationSettings,
    workers: int,
) -> dict[str, list]:
    """Run every (label, topology spec, pattern spec) series over
    *rates* in one fan-out, returning results grouped by label."""
    rates = [float(rate) for rate in rates]
    points = [
        SweepPoint(topo_spec, pattern_spec, rate, settings)
        for _, topo_spec, pattern_spec in series
        for rate in rates
    ]
    results, _ = execute_points(points, workers=workers)
    return {
        label: results[i * len(rates):(i + 1) * len(rates)]
        for i, (label, _, _) in enumerate(series)
    }


def _from_series(
    figure_id: str,
    title: str,
    series_list,
    x_label: str = "N",
) -> FigureData:
    x_values = [n for n, _ in series_list[0].points]
    figure = FigureData(figure_id, title, x_label, list(x_values))
    for series in series_list:
        by_n = dict(series.points)
        figure.add_series(
            series.label, [by_n.get(n) for n in x_values]
        )
    return figure


# -- analytical figures -------------------------------------------------


def figure2(min_nodes: int = 4, max_nodes: int = 64) -> FigureData:
    """Figure 2: network diameter ND vs number of nodes."""
    figure = _from_series(
        "fig2",
        "Network diameter ND vs N (Ring, ideal/real/irregular 2D "
        "Mesh, Spidergon)",
        analytical.figure2_diameter_series(min_nodes, max_nodes),
    )
    figure.notes.append(
        "real-mesh = best balanced factorization of N; "
        "irregular-mesh = partially filled near-square grid"
    )
    return figure


def figure3(min_nodes: int = 4, max_nodes: int = 64) -> FigureData:
    """Figure 3: average network distance E[D] vs number of nodes."""
    figure = _from_series(
        "fig3",
        "Average network distance E[D] vs N (Ring, ideal/real/"
        "irregular 2D Mesh, Spidergon)",
        analytical.figure3_average_distance_series(min_nodes, max_nodes),
    )
    figure.notes.append(
        "E[D] uses the paper's sum/N convention (self-pairs in the "
        "denominator)"
    )
    return figure


# -- simulation figures ---------------------------------------------------


def figure5(
    settings: SimulationSettings | None = None,
    node_counts=VALIDATION_NODE_COUNTS,
    injection_rate: float = 0.05,
    workers: int = 1,
) -> FigureData:
    """Figure 5: analytical vs simulation-based average distance.

    Uniform traffic at low load; the simulated value is the mean hop
    count of delivered packets.  The analytical reference here is the
    exact mean over *distinct* node pairs, because simulated packets
    never target their own source.
    """
    settings = settings or SimulationSettings()
    figure = FigureData(
        "fig5",
        "Analytical vs simulated average network distance (hops)",
        "N",
        list(node_counts),
    )
    labels = ("ring", "spidergon", "mesh")
    analytic: dict[str, list[float | None]] = {k: [] for k in labels}
    simulated: dict[str, list[float | None]] = {k: [] for k in labels}
    points = []
    for n in node_counts:
        for label, spec in zip(labels, _paper_topology_specs(n)):
            analytic[label].append(
                average_distance(
                    parse_topology(spec), include_self=False
                )
            )
            points.append(
                SweepPoint(
                    spec, "uniform", float(injection_rate), settings
                )
            )
    results, _ = execute_points(points, workers=workers)
    for index, result in enumerate(results):
        simulated[labels[index % len(labels)]].append(result.avg_hops)
    for label in labels:
        figure.add_series(f"{label}-analytic", analytic[label])
        figure.add_series(f"{label}-sim", simulated[label])
    figure.notes.append(
        f"uniform traffic at {injection_rate} flits/cycle/node "
        "(low load); analytic = exact mean over distinct pairs"
    )
    return figure


def _hotspot_figure(
    figure_id: str,
    metric: str,
    settings: SimulationSettings,
    node_counts,
    rates,
    num_hotspots: int,
    scenarios: dict[str, str] | None = None,
    workers: int = 1,
) -> FigureData:
    """Shared machinery of figures 6-9.

    *metric* is ``"throughput"`` (flits/cycle) or ``"latency"``
    (mean cycles).  For two hot-spots, *scenarios* maps topology kind
    ("mesh" or "ringlike") to placement labels.
    """
    title_metric = (
        "throughput (flits/cycle)"
        if metric == "throughput"
        else "average latency (cycles)"
    )
    plural = "two hot-spot destinations" if num_hotspots == 2 else (
        "one hot-spot destination"
    )
    figure = FigureData(
        figure_id,
        f"NoC {title_metric}, {plural}",
        "lambda",
        list(rates),
    )
    series: list[tuple[str, str, str]] = []
    for n in node_counts:
        for topo_spec in _paper_topology_specs(n):
            topology = parse_topology(topo_spec)
            is_mesh = isinstance(topology, MeshTopology)
            if num_hotspots == 1:
                placements = {"": [0]}
            else:
                assert scenarios is not None
                kind = "mesh" if is_mesh else "ringlike"
                placements = {
                    f"-{label}": double_hotspot_targets(topology, label)
                    for label in scenarios[kind]
                }
            for suffix, targets in placements.items():
                pattern_spec = "hotspot:" + ",".join(
                    str(t) for t in targets
                )
                series.append(
                    (f"{topology.name}{suffix}", topo_spec, pattern_spec)
                )
    by_label = _sweep_series(series, rates, settings, workers)
    for label, _, _ in series:
        values = [
            r.throughput if metric == "throughput" else r.avg_latency
            for r in by_label[label]
        ]
        figure.add_series(label, values)
    figure.notes.append(
        "lambda = injection rate per source (flits/cycle); hot-spot "
        "targets are pure sinks"
    )
    return figure


def figure6(
    settings: SimulationSettings | None = None,
    node_counts=SIM_NODE_COUNTS,
    rates=HOTSPOT_RATES,
    workers: int = 1,
) -> FigureData:
    """Figure 6: throughput vs injection rate, one hot-spot target."""
    return _hotspot_figure(
        "fig6",
        "throughput",
        settings or SimulationSettings(),
        node_counts,
        rates,
        num_hotspots=1,
        workers=workers,
    )


def figure7(
    settings: SimulationSettings | None = None,
    node_counts=SIM_NODE_COUNTS,
    rates=HOTSPOT_RATES,
    workers: int = 1,
) -> FigureData:
    """Figure 7: latency vs injection rate, one hot-spot target."""
    return _hotspot_figure(
        "fig7",
        "latency",
        settings or SimulationSettings(),
        node_counts,
        rates,
        num_hotspots=1,
        workers=workers,
    )


_DOUBLE_SCENARIOS = {"mesh": "ABC", "ringlike": "AB"}


def figure8(
    settings: SimulationSettings | None = None,
    node_counts=SIM_NODE_COUNTS,
    rates=HOTSPOT_RATES,
    workers: int = 1,
) -> FigureData:
    """Figure 8: throughput vs injection rate, two hot-spot targets.

    Placements follow the paper: mesh A = opposite corners, B =
    corner + middle, C = two middle nodes; ring/spidergon A =
    North/South opposition, B = North/West.
    """
    return _hotspot_figure(
        "fig8",
        "throughput",
        settings or SimulationSettings(),
        node_counts,
        rates,
        num_hotspots=2,
        scenarios=_DOUBLE_SCENARIOS,
        workers=workers,
    )


def figure9(
    settings: SimulationSettings | None = None,
    node_counts=SIM_NODE_COUNTS,
    rates=HOTSPOT_RATES,
    workers: int = 1,
) -> FigureData:
    """Figure 9: latency vs injection rate, two hot-spot targets."""
    return _hotspot_figure(
        "fig9",
        "latency",
        settings or SimulationSettings(),
        node_counts,
        rates,
        num_hotspots=2,
        scenarios=_DOUBLE_SCENARIOS,
        workers=workers,
    )


def _uniform_figure(
    figure_id: str,
    metric: str,
    settings: SimulationSettings,
    node_counts,
    rates,
    workers: int = 1,
) -> FigureData:
    title_metric = (
        "throughput (flits/cycle)"
        if metric == "throughput"
        else "average latency (cycles)"
    )
    figure = FigureData(
        figure_id,
        f"NoC {title_metric}, homogeneous uniform sources/destinations",
        "lambda",
        list(rates),
    )
    series = [
        (parse_topology(topo_spec).name, topo_spec, "uniform")
        for n in node_counts
        for topo_spec in _paper_topology_specs(n)
    ]
    by_label = _sweep_series(series, rates, settings, workers)
    for label, _, _ in series:
        values = [
            r.throughput if metric == "throughput" else r.avg_latency
            for r in by_label[label]
        ]
        figure.add_series(label, values)
    figure.notes.append(
        "all nodes are sources; destinations uniform over the other "
        "nodes"
    )
    return figure


def figure10(
    settings: SimulationSettings | None = None,
    node_counts=UNIFORM_NODE_COUNTS,
    rates=UNIFORM_RATES,
    workers: int = 1,
) -> FigureData:
    """Figure 10: throughput vs injection rate, homogeneous traffic."""
    return _uniform_figure(
        "fig10",
        "throughput",
        settings or SimulationSettings(),
        node_counts,
        rates,
        workers=workers,
    )


def figure11(
    settings: SimulationSettings | None = None,
    node_counts=UNIFORM_NODE_COUNTS,
    rates=UNIFORM_RATES,
    workers: int = 1,
) -> FigureData:
    """Figure 11: latency vs injection rate, homogeneous traffic."""
    return _uniform_figure(
        "fig11",
        "latency",
        settings or SimulationSettings(),
        node_counts,
        rates,
        workers=workers,
    )


ALL_FIGURES = {
    "fig2": figure2,
    "fig3": figure3,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
}

_ANALYTICAL = {"fig2", "fig3"}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print (and optionally save) figure data."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's figures as tables."
    )
    parser.add_argument(
        "figure",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run ~10x shorter simulations (shapes only)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write <figure>.csv files into DIR",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also draw each figure as an ASCII chart",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for simulation sweeps (default 1); "
        "results are identical for any value",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    settings = SimulationSettings()
    if args.quick:
        settings = settings.scaled(0.1)
    for name in names:
        generator = ALL_FIGURES[name]
        if name in _ANALYTICAL:
            figure = generator()
        else:
            figure = generator(settings=settings, workers=args.workers)
        sys.stdout.write(format_table(figure))
        sys.stdout.write("\n")
        if args.chart:
            from repro.experiments.ascii_chart import render_chart

            sys.stdout.write(render_chart(figure))
            sys.stdout.write("\n")
        if args.csv:
            directory = pathlib.Path(args.csv)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / f"{name}.csv").write_text(to_csv(figure))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
