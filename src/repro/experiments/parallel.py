"""Parallel sweep execution: process-pool fan-out and result caching.

Every sweep point of a campaign or figure is independent of every
other, so the cross product can fan out across worker processes.  Two
rules keep the output bit-identical to a serial run:

* **Seeds belong to coordinates.**  A point's RNG seed is part of its
  :class:`~repro.experiments.runner.SweepPoint` (derived from the
  root seed and the point's own (topology, pattern, rate) by
  :func:`derive_seed`), never from the order points happen to run in.
* **Workers rebuild from plain data.**  A point carries spec strings
  and a settings dataclass; :func:`run_sweep_point` re-parses them in
  the worker, so no live simulator state crosses a process boundary.

The optional :class:`ResultCache` stores finished
:class:`~repro.stats.summary.RunResult` objects as JSON keyed by a
stable hash of (topology, pattern, rate, seed, settings); re-runs and
overlapping campaigns skip points that are already computed.

**Crash tolerance.**  Passing any of ``timeout`` / ``retries`` /
``manifest`` to :func:`execute_points` switches it into hardened
mode: each point gets a wall-clock deadline, failures (worker
crashes, hung workers, model exceptions) are retried with backoff up
to ``retries`` times and then recorded as :class:`FailedResult`
placeholders instead of sinking the whole sweep, a crashed process
pool is rebuilt and the surviving points resubmitted, and every
outcome is appended to a JSONL :class:`CampaignManifest` that resumed
campaigns read back.  Without those arguments the original
fast path runs unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, Union

from repro.experiments.runner import SweepPoint, run_simulation
from repro.experiments.specs import (
    parse_pattern,
    parse_topology,
    parse_topology_routing,
)
from repro.resilience.chaos import apply_chaos
from repro.serve.store import ResultStore
from repro.stats.summary import RunResult

#: What a hardened sweep yields per point.
PointResult = Union[RunResult, "FailedResult"]

#: Signature of the incremental-result callback:
#: ``on_result(index, point, result, cached)``.
ResultCallback = Callable[[int, SweepPoint, "PointResult", bool], None]


def canonical_rate(rate: float) -> str:
    """The one canonical string form of an injection rate.

    ``repr(float(rate))`` is the shortest string that round-trips to
    the exact float, so distinct rates always canonicalize to
    distinct strings.  Both :func:`derive_seed` and :func:`point_key`
    use it — they historically disagreed (``f"{rate:.6g}"`` vs
    ``repr``), which made two rates differing only past six
    significant digits share an RNG seed while still getting distinct
    cache keys.  For the fractional rates sweeps actually use
    (``0.05``, ``0.1``, ... — six or fewer significant digits, not
    integer-valued) the two spellings coincide, so unifying on
    ``repr`` left every existing seed (and every existing cache key)
    unchanged.
    """
    return repr(float(rate))


def derive_seed(
    root_seed: int, topology: str, pattern: str, rate: float
) -> int:
    """Seed for one sweep point, a pure function of its coordinates.

    Hashing (root seed, topology, pattern, rate) gives every point an
    independent stream while keeping the whole sweep reproducible from
    the single root seed — and, crucially, makes the seed independent
    of the order in which points execute.
    """
    text = (
        f"{root_seed}|{topology}|{pattern}|{canonical_rate(rate)}"
    )
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def point_key(point: SweepPoint) -> str:
    """Stable cache key: sha256 over the point's canonical JSON form.

    Includes every model parameter (the full settings dataclass, and
    with it the seed), so two points collide only if they would run
    the exact same simulation.  This is also the address of the
    point's entry in the content-addressed
    :class:`~repro.serve.store.ResultStore`.
    """
    payload = {
        "topology": point.topology,
        "pattern": point.pattern,
        "rate": canonical_rate(point.rate),
        "settings": dataclasses.asdict(point.settings),
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Point-keyed view over a content-addressed result store.

    Historically this class owned the one-JSON-file-per-key directory
    itself; that mechanism now lives in
    :class:`~repro.serve.store.ResultStore` (the campaign server's
    dedupe substrate) and this adapter only computes
    :func:`point_key` hashes.  The on-disk layout is unchanged, so a
    ``.repro-cache`` directory written by either side is readable by
    both — point a server's store at a campaign's cache (or vice
    versa) and the results dedupe across them.
    """

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.store = ResultStore(directory)

    @property
    def directory(self) -> pathlib.Path:
        return self.store.directory

    def _path(self, point: SweepPoint) -> pathlib.Path:
        return self.store.path_for(point_key(point))

    def get(self, point: SweepPoint) -> RunResult | None:
        """The cached result for *point*, or None on a miss.

        A torn or unreadable entry counts as a miss: the point simply
        re-runs and overwrites it.
        """
        return self.store.get(point_key(point))

    def put(self, point: SweepPoint, result: RunResult) -> None:
        """Store *result*; atomic rename so readers never see a torn file."""
        self.store.put(point_key(point), result)


@dataclasses.dataclass(slots=True)
class FailedResult:
    """Placeholder for a point that failed after every retry.

    Carries the point's coordinates so reports and manifests can name
    the casualty; deliberately *not* a :class:`RunResult` — consumers
    that compute statistics must filter these out (``isinstance`` or
    :attr:`ok`), and the CSV persistence layer never writes a row for
    one, so a resumed campaign re-runs the point.

    Attributes:
        topology / pattern / rate / seed: The point's coordinates.
        error: Failure class — ``"timeout"``, ``"crash"`` (worker
            process died) or ``"error"`` (exception in the model).
        detail: Human-readable specifics (exception text, deadline).
        attempts: Total attempts made, including the first.

    Both result types answer :attr:`ok`, so consumers can filter a
    mixed list without importing either class.
    """

    topology: str
    pattern: str
    rate: float
    seed: int
    error: str
    detail: str = ""
    attempts: int = 1

    #: Discriminator usable on RunResult and FailedResult alike.
    ok = False

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FailedResult":
        return cls(**data)


def manifest_entry(
    point: SweepPoint, result: "PointResult", cached: bool
) -> dict:
    """One :class:`CampaignManifest` line as a dict.

    Shared vocabulary between the on-disk manifest and the campaign
    server's streamed progress: the server emits exactly these
    entries (plus a ``source`` annotation) as chunked JSONL, so a
    captured stream is itself a loadable manifest.
    """
    entry = {
        "key": point_key(point),
        "topology": point.topology,
        "pattern": point.pattern,
        "rate": point.rate,
        "seed": point.settings.seed,
        "cached": cached,
    }
    if isinstance(result, FailedResult):
        entry["status"] = "failed"
        entry["error"] = result.error
        entry["detail"] = result.detail
        entry["attempts"] = result.attempts
    else:
        entry["status"] = "ok"
    return entry


class CampaignManifest:
    """Append-only JSONL log of per-point outcomes.

    One line per finished attempt-group::

        {"key": ..., "topology": ..., "pattern": ..., "rate": ...,
         "status": "ok" | "failed", "cached": bool,
         "error": ..., "detail": ..., "attempts": ...}

    The manifest is the resume ledger of a hardened campaign: ``ok``
    lines mark points that need not re-run, ``failed`` lines document
    casualties (and are re-attempted on resume, since no CSV row
    exists for them).  Appends are line-atomic on POSIX, and a torn
    final line — possible if the process died mid-write — is skipped
    on load.  Where several entries share a key (a failure later
    retried, a resumed run re-recording a point), the **latest entry
    wins** in both :meth:`completed_keys` and :meth:`failures`.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    def record(
        self, point: SweepPoint, result: "PointResult", cached: bool
    ) -> None:
        """Append the outcome of *point*."""
        entry = manifest_entry(point, result, cached)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry) + "\n")

    def entries(self) -> list[dict]:
        """Every parseable entry, oldest first."""
        if not self.path.exists():
            return []
        entries = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn trailing line from a dead process
        return entries

    def completed_keys(self) -> set[str]:
        """Keys whose *latest* entry is ``ok`` (resume support)."""
        latest: dict[str, str] = {}
        for entry in self.entries():
            latest[entry.get("key", "")] = entry.get("status", "")
        return {key for key, status in latest.items() if status == "ok"}

    def failures(self) -> list[dict]:
        """Entries whose latest status is ``failed``."""
        latest: dict[str, dict] = {}
        for entry in self.entries():
            latest[entry.get("key", "")] = entry
        return [
            entry
            for entry in latest.values()
            if entry.get("status") == "failed"
        ]


@dataclasses.dataclass(slots=True)
class ExecutionStats:
    """What one :func:`execute_points` call did, for reporting.

    Attributes:
        workers: Worker processes requested (1 = in-process serial).
        total_points: Points handed in.
        executed: Points actually simulated (cache misses).
        cache_hits / cache_misses: Cache outcomes; both stay 0 when no
            cache was configured.
        wall_seconds: Wall-clock time of the whole call.
        events_processed: Kernel events delivered by the points that
            were actually simulated (cache hits excluded) — with
            ``wall_seconds`` this gives the campaign-level events/sec
            the execution summary reports.
        failed: Points that ended as :class:`FailedResult`.
        timeouts / crashes: Failure attempts by class (every attempt
            counts, so these can exceed ``failed`` when retries
            eventually succeed).
        retried: Re-submissions after a failed attempt.
        pool_rebuilds: Times the process pool was torn down and
            rebuilt (crash or unkillable hung worker).
    """

    workers: int
    total_points: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    events_processed: int = 0
    failed: int = 0
    timeouts: int = 0
    crashes: int = 0
    retried: int = 0
    pool_rebuilds: int = 0

    @property
    def events_per_second(self) -> float:
        """Aggregate simulated events per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds


def run_sweep_point(point: SweepPoint) -> RunResult:
    """Rebuild the model objects from *point* and run the simulation.

    Module-level (not a closure) so :class:`ProcessPoolExecutor`
    workers can import it by qualified name.
    """
    topology, routing = parse_topology_routing(point.topology)
    pattern = parse_pattern(point.pattern, topology)
    return run_simulation(
        topology, pattern, point.rate, point.settings, routing=routing
    )


def point_descriptor(point: SweepPoint) -> str:
    """Human-readable point identity, also the chaos match target."""
    return f"{point.topology}:{point.pattern}:{point.rate:.6g}"


def guarded_run(point: SweepPoint) -> tuple[str, object]:
    """Worker entry of hardened mode: never lets an exception cross
    the pickle boundary (some exception types don't survive it).

    Returns ``("ok", RunResult)`` or ``("error", traceback_text)``.
    Also the chaos hook site — :func:`repro.resilience.apply_chaos`
    is a no-op unless the ``REPRO_CHAOS`` variable is set.  The
    campaign server's persistent pool submits this same entry point,
    so server-side and batch workers share one failure contract.
    """
    try:
        apply_chaos(point_descriptor(point))
        return "ok", run_sweep_point(point)
    except Exception:
        return "error", traceback.format_exc(limit=8)


#: Backwards-compatible spelling; the worker entry is public API now.
_guarded_run = guarded_run


def execute_points(
    points: Sequence[SweepPoint],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    on_result: ResultCallback | None = None,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.0,
    manifest: CampaignManifest | None = None,
) -> tuple[list["PointResult"], ExecutionStats]:
    """Run every point, fanning out across *workers* processes.

    ``workers=1`` runs serially in-process (no pool, no pickling);
    higher counts use a :class:`ProcessPoolExecutor`.  Results are
    returned in input order regardless of completion order, and are
    identical either way because each point carries its own seed.

    Args:
        points: The sweep cells to run.
        workers: Process count; must be >= 1.
        cache: Optional result cache consulted before running and
            filled after; hits are never re-simulated.
        on_result: Optional callback invoked as each point finishes
            (in completion order under parallel execution) — the hook
            campaigns use for incremental CSV persistence.
        timeout: Per-point wall-clock deadline in seconds.  Enforced
            through the process pool, so setting it forces pool
            execution even with ``workers=1``.
        retries: Extra attempts per point after a failure.
        backoff: Seconds slept before re-submitting a failed point,
            multiplied by the attempt number.
        manifest: Optional JSONL outcome ledger, appended as each
            point settles.

    Passing any of *timeout* / *retries* / *manifest* selects
    **hardened mode**: failures become :class:`FailedResult` entries
    in the result list instead of exceptions, and a broken process
    pool is rebuilt with the surviving points resubmitted.  Without
    them the original fail-fast path runs unchanged.

    Returns:
        ``(results, stats)`` with ``results[i]`` belonging to
        ``points[i]``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be > 0, got {timeout}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    hardened = (
        timeout is not None or retries > 0 or manifest is not None
    )
    start = time.perf_counter()
    stats = ExecutionStats(workers=workers, total_points=len(points))
    results: list[PointResult | None] = [None] * len(points)

    def finish(
        index: int,
        point: SweepPoint,
        result: "PointResult",
        cached: bool,
    ) -> None:
        results[index] = result
        if isinstance(result, FailedResult):
            stats.failed += 1
        elif not cached:
            stats.executed += 1
            stats.events_processed += result.events_processed
            if cache is not None:
                cache.put(point, result)
        if manifest is not None:
            manifest.record(point, result, cached)
        if on_result is not None:
            on_result(index, point, result, cached)

    pending: list[tuple[int, SweepPoint]] = []
    for index, point in enumerate(points):
        hit = cache.get(point) if cache is not None else None
        if hit is not None:
            stats.cache_hits += 1
            finish(index, point, hit, True)
        else:
            if cache is not None:
                stats.cache_misses += 1
            pending.append((index, point))

    if not hardened:
        if workers == 1 or len(pending) <= 1:
            for index, point in pending:
                finish(index, point, run_sweep_point(point), False)
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(run_sweep_point, point): (index, point)
                    for index, point in pending
                }
                for future in as_completed(futures):
                    index, point = futures[future]
                    finish(index, point, future.result(), False)
    elif workers == 1 and timeout is None:
        _execute_hardened_serial(
            pending, retries, backoff, finish, stats
        )
    else:
        _execute_hardened_pool(
            pending, workers, timeout, retries, backoff, finish, stats
        )

    stats.wall_seconds = time.perf_counter() - start
    return results, stats  # type: ignore[return-value]


def _failed_result(
    point: SweepPoint, kind: str, detail: str, attempts: int
) -> FailedResult:
    return FailedResult(
        topology=point.topology,
        pattern=point.pattern,
        rate=point.rate,
        seed=point.settings.seed,
        error=kind,
        detail=detail,
        attempts=attempts,
    )


def _execute_hardened_serial(
    pending: list[tuple[int, SweepPoint]],
    retries: int,
    backoff: float,
    finish: Callable,
    stats: ExecutionStats,
) -> None:
    """In-process hardened path: retries without a pool.

    Timeouts and crash chaos need process isolation and therefore the
    pool path; this one only contains model exceptions.
    """
    for index, point in pending:
        attempts = 0
        while True:
            attempts += 1
            status, payload = _guarded_run(point)
            if status == "ok":
                finish(index, point, payload, False)
                break
            if attempts <= retries:
                stats.retried += 1
                if backoff > 0:
                    time.sleep(backoff * attempts)
                continue
            finish(
                index,
                point,
                _failed_result(point, "error", str(payload), attempts),
                False,
            )
            break


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on wedged workers."""
    processes = getattr(pool, "_processes", None) or {}
    pool.shutdown(wait=False, cancel_futures=True)
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # already dead, or platform quirk
            pass


def _execute_hardened_pool(
    pending: list[tuple[int, SweepPoint]],
    workers: int,
    timeout: float | None,
    retries: int,
    backoff: float,
    finish: Callable,
    stats: ExecutionStats,
) -> None:
    """Pool execution that survives crashes, hangs, and exceptions.

    Structure: a submission queue feeds at most *workers* in-flight
    futures, each stamped with its wall-clock deadline.  The loop
    waits for the first completion or the earliest deadline, then
    settles completed futures, reaps expired ones, and — when the
    pool broke or a hung worker would not cancel — rebuilds the pool
    and resubmits whatever was still in flight (those points keep
    their attempt count: they were collateral, not culprits... except
    that a crashed pool cannot say *which* worker died, so every
    future that completed broken is charged one attempt).
    """
    pool = ProcessPoolExecutor(max_workers=workers)
    queue = deque(pending)
    attempts: dict[int, int] = {index: 0 for index, _ in pending}
    inflight: dict = {}  # future -> (index, point, deadline)
    # Backoff is a per-entry not-before timestamp honored at
    # submission time — never an inline sleep, which would stall
    # deadline checks and settlement for every other in-flight point.
    not_before: dict[int, float] = {}

    def charge(index: int, point: SweepPoint, kind: str, detail: str):
        """One failed attempt: requeue or settle as FailedResult."""
        attempts[index] += 1
        if kind == "timeout":
            stats.timeouts += 1
        elif kind == "crash":
            stats.crashes += 1
        if attempts[index] <= retries:
            stats.retried += 1
            if backoff > 0:
                not_before[index] = (
                    time.monotonic() + backoff * attempts[index]
                )
            queue.append((index, point))
        else:
            finish(
                index,
                point,
                _failed_result(point, kind, detail, attempts[index]),
                False,
            )

    def rebuild() -> None:
        nonlocal pool
        _terminate_pool(pool)
        pool = ProcessPoolExecutor(max_workers=workers)
        stats.pool_rebuilds += 1

    def settle(future, index: int, point: SweepPoint) -> bool:
        """Resolve a completed future; returns True if it revealed a
        broken pool."""
        try:
            status, payload = future.result()
        except BrokenProcessPool:
            charge(
                index, point, "crash", "worker process died (pool broken)"
            )
            return True
        except Exception as exc:  # pool plumbing failure
            charge(index, point, "error", repr(exc))
            return False
        if status == "ok":
            finish(index, point, payload, False)
        else:
            charge(index, point, "error", str(payload))
        return False

    def drain_broken_pool() -> None:
        """The pool died: settle finished futures normally, charge the
        rest as crashes (the culprit is among them, and a broken pool
        cannot say which worker it was), then rebuild."""
        for future, (index, point, _) in list(inflight.items()):
            if future.done():
                settle(future, index, point)
            else:
                charge(
                    index,
                    point,
                    "crash",
                    "worker process died (pool broken)",
                )
        inflight.clear()
        rebuild()

    try:
        while queue or inflight:
            submit_broke = False
            now = time.monotonic()
            backing_off: list[tuple[int, SweepPoint]] = []
            while queue and len(inflight) < workers:
                index, point = queue.popleft()
                attempts.setdefault(index, 0)
                if not_before.get(index, 0.0) > now:
                    backing_off.append((index, point))
                    continue
                not_before.pop(index, None)
                try:
                    future = pool.submit(guarded_run, point)
                except BrokenProcessPool:
                    # Pool died between the last wait() and now; the
                    # unsubmitted point never ran, so no charge.
                    queue.appendleft((index, point))
                    drain_broken_pool()
                    submit_broke = True
                    break
                deadline = (
                    time.monotonic() + timeout
                    if timeout is not None
                    else None
                )
                inflight[future] = (index, point, deadline)
            # Entries still backing off return to the queue's front in
            # their original order, keeping retry fairness.
            queue.extendleft(reversed(backing_off))
            if submit_broke:
                continue
            wake_times = [
                deadline
                for (_, _, deadline) in inflight.values()
                if deadline is not None
            ]
            if backing_off and len(inflight) < workers:
                # Free capacity is waiting on a backoff window: wake
                # when the earliest held entry becomes submittable.
                wake_times.extend(
                    not_before[index] for index, _ in backing_off
                )
            if not inflight:
                # Everything queued is backing off; sleep just long
                # enough for the earliest not-before to pass.
                if wake_times:
                    time.sleep(max(0.0, min(wake_times) - now))
                continue
            wait_for = (
                max(0.05, min(wake_times) - time.monotonic())
                if wake_times
                else None
            )
            done, _ = wait(
                set(inflight),
                timeout=wait_for,
                return_when=FIRST_COMPLETED,
            )
            broke = False
            for future in done:
                index, point, _ = inflight.pop(future)
                broke |= settle(future, index, point)
            if broke:
                drain_broken_pool()
                continue
            if timeout is None:
                continue
            now = time.monotonic()
            expired = [
                future
                for future, (_, _, deadline) in inflight.items()
                if deadline is not None and deadline <= now
            ]
            wedged = False
            for future in expired:
                index, point, deadline = inflight.pop(future)
                overdue = now - (deadline - timeout)
                if not future.cancel():
                    # Already running: the worker is wedged and a
                    # pool cannot interrupt it — replace the pool.
                    wedged = True
                charge(
                    index,
                    point,
                    "timeout",
                    f"exceeded {timeout:.6g}s deadline "
                    f"({overdue:.1f}s elapsed)",
                )
            if wedged:
                # Surviving workers die with the pool; their points
                # never misbehaved, so resubmit without charging.
                for future, (index, point, _) in inflight.items():
                    queue.append((index, point))
                inflight.clear()
                rebuild()
    finally:
        _terminate_pool(pool)
