"""Parallel sweep execution: process-pool fan-out and result caching.

Every sweep point of a campaign or figure is independent of every
other, so the cross product can fan out across worker processes.  Two
rules keep the output bit-identical to a serial run:

* **Seeds belong to coordinates.**  A point's RNG seed is part of its
  :class:`~repro.experiments.runner.SweepPoint` (derived from the
  root seed and the point's own (topology, pattern, rate) by
  :func:`derive_seed`), never from the order points happen to run in.
* **Workers rebuild from plain data.**  A point carries spec strings
  and a settings dataclass; :func:`run_sweep_point` re-parses them in
  the worker, so no live simulator state crosses a process boundary.

The optional :class:`ResultCache` stores finished
:class:`~repro.stats.summary.RunResult` objects as JSON keyed by a
stable hash of (topology, pattern, rate, seed, settings); re-runs and
overlapping campaigns skip points that are already computed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Sequence

from repro.experiments.runner import SweepPoint, run_simulation
from repro.experiments.specs import parse_pattern, parse_topology
from repro.stats.summary import RunResult

#: Signature of the incremental-result callback:
#: ``on_result(index, point, result, cached)``.
ResultCallback = Callable[[int, SweepPoint, RunResult, bool], None]


def derive_seed(
    root_seed: int, topology: str, pattern: str, rate: float
) -> int:
    """Seed for one sweep point, a pure function of its coordinates.

    Hashing (root seed, topology, pattern, rate) gives every point an
    independent stream while keeping the whole sweep reproducible from
    the single root seed — and, crucially, makes the seed independent
    of the order in which points execute.
    """
    text = f"{root_seed}|{topology}|{pattern}|{rate:.6g}"
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def point_key(point: SweepPoint) -> str:
    """Stable cache key: sha256 over the point's canonical JSON form.

    Includes every model parameter (the full settings dataclass, and
    with it the seed), so two points collide only if they would run
    the exact same simulation.
    """
    payload = {
        "topology": point.topology,
        "pattern": point.pattern,
        "rate": repr(float(point.rate)),
        "settings": dataclasses.asdict(point.settings),
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Directory of finished results, one JSON file per point key."""

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)

    def _path(self, point: SweepPoint) -> pathlib.Path:
        return self.directory / f"{point_key(point)}.json"

    def get(self, point: SweepPoint) -> RunResult | None:
        """The cached result for *point*, or None on a miss.

        A torn or unreadable entry counts as a miss: the point simply
        re-runs and overwrites it.
        """
        path = self._path(point)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return RunResult.from_dict(data)

    def put(self, point: SweepPoint, result: RunResult) -> None:
        """Store *result*; atomic rename so readers never see a torn file."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(point)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(result.to_dict()))
        tmp.replace(path)


@dataclasses.dataclass(slots=True)
class ExecutionStats:
    """What one :func:`execute_points` call did, for reporting.

    Attributes:
        workers: Worker processes requested (1 = in-process serial).
        total_points: Points handed in.
        executed: Points actually simulated (cache misses).
        cache_hits / cache_misses: Cache outcomes; both stay 0 when no
            cache was configured.
        wall_seconds: Wall-clock time of the whole call.
        events_processed: Kernel events delivered by the points that
            were actually simulated (cache hits excluded) — with
            ``wall_seconds`` this gives the campaign-level events/sec
            the execution summary reports.
    """

    workers: int
    total_points: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    events_processed: int = 0

    @property
    def events_per_second(self) -> float:
        """Aggregate simulated events per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds


def run_sweep_point(point: SweepPoint) -> RunResult:
    """Rebuild the model objects from *point* and run the simulation.

    Module-level (not a closure) so :class:`ProcessPoolExecutor`
    workers can import it by qualified name.
    """
    topology = parse_topology(point.topology)
    pattern = parse_pattern(point.pattern, topology)
    return run_simulation(topology, pattern, point.rate, point.settings)


def execute_points(
    points: Sequence[SweepPoint],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    on_result: ResultCallback | None = None,
) -> tuple[list[RunResult], ExecutionStats]:
    """Run every point, fanning out across *workers* processes.

    ``workers=1`` runs serially in-process (no pool, no pickling);
    higher counts use a :class:`ProcessPoolExecutor`.  Results are
    returned in input order regardless of completion order, and are
    identical either way because each point carries its own seed.

    Args:
        points: The sweep cells to run.
        workers: Process count; must be >= 1.
        cache: Optional result cache consulted before running and
            filled after; hits are never re-simulated.
        on_result: Optional callback invoked as each point finishes
            (in completion order under parallel execution) — the hook
            campaigns use for incremental CSV persistence.

    Returns:
        ``(results, stats)`` with ``results[i]`` belonging to
        ``points[i]``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    start = time.perf_counter()
    stats = ExecutionStats(workers=workers, total_points=len(points))
    results: list[RunResult | None] = [None] * len(points)

    def finish(
        index: int, point: SweepPoint, result: RunResult, cached: bool
    ) -> None:
        results[index] = result
        if not cached:
            stats.executed += 1
            stats.events_processed += result.events_processed
            if cache is not None:
                cache.put(point, result)
        if on_result is not None:
            on_result(index, point, result, cached)

    pending: list[tuple[int, SweepPoint]] = []
    for index, point in enumerate(points):
        hit = cache.get(point) if cache is not None else None
        if hit is not None:
            stats.cache_hits += 1
            finish(index, point, hit, True)
        else:
            if cache is not None:
                stats.cache_misses += 1
            pending.append((index, point))

    if workers == 1 or len(pending) <= 1:
        for index, point in pending:
            finish(index, point, run_sweep_point(point), False)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(run_sweep_point, point): (index, point)
                for index, point in pending
            }
            for future in as_completed(futures):
                index, point = futures[future]
                finish(index, point, future.result(), False)

    stats.wall_seconds = time.perf_counter() - start
    return results, stats  # type: ignore[return-value]
