"""Equal-node-count 2D vs 3D (TSV) stacking study.

The paper compares planar fabrics at equal node count; die stacking
asks the natural follow-on: with the same N routers, does folding the
mesh into layers pay once vertical hops carry a TSV latency penalty?
This campaign pits the 2D reference (``mesh8x8`` for the default
side 4) against ``mesh3d4x4x4`` and ``torus3d4x4x4`` across TSV
penalties (default 1, 2 and 4 cycles per vertical hop) under uniform,
hot-spot and transpose traffic.

Penalty 1 is the control: the 3D grids then use the uniform link
model byte-for-byte (the regression suite pins this), so any latency
gap against the 2D mesh is pure topology (diameter 14 -> 9 -> 6).
Raising the penalty isolates the TSV cost: every minimal XYZ route
crosses exactly ``|dz|`` vertical links, so zero-load latency grows
by ``(penalty - 1) * E[dz]`` while hop counts, and therefore
saturation behaviour, stay put.

``python -m repro mesh3d`` runs it from the command line
(``--smoke`` for the abbreviated CI variant); measured outcomes are
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.formulas import (
    mesh3d_average_distance,
    mesh3d_diameter,
    mesh3d_num_links,
    mesh3d_num_tsv_links,
    mesh_average_distance,
    mesh_diameter,
    mesh_num_links,
    torus3d_average_distance,
    torus3d_diameter,
    torus3d_num_links,
    torus3d_num_tsv_links,
)
from repro.cost.wires import total_wire_length
from repro.experiments.report import FigureData
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.specs import parse_pattern, parse_topology
from repro.topology import MeshTopology, Topology

#: Default TSV latency penalties swept by the study.
DEFAULT_TSV_LATENCIES = (1, 2, 4)

#: Default traffic scenarios (the paper's two plus transpose, which
#: exercises every dimension-order stage).
DEFAULT_PATTERNS = ("uniform", "hotspot:0", "transpose")


@dataclass(slots=True)
class TrafficMetrics:
    """One candidate's behaviour under one traffic pattern."""

    pattern: str
    #: Mean packet latency at the reference (low) injection rate.
    latency: float
    #: Accepted throughput at the saturating (high) injection rate.
    saturation_throughput: float
    #: Accepted throughput per rate, aligned with the study's rates.
    throughput_curve: list[float] = field(default_factory=list)


@dataclass(slots=True)
class StackingCandidate:
    """One topology's static metrics and per-pattern behaviour."""

    spec: str
    tsv_latency: int | None  # None for the 2D reference
    diameter: int
    average_distance: float
    num_links: int
    num_tsv_links: int
    wire_length: float
    traffic: dict[str, TrafficMetrics] = field(default_factory=dict)

    @property
    def is_reference(self) -> bool:
        return self.tsv_latency is None


@dataclass(slots=True)
class StackingStudy:
    """Outcome of one equal-node-count 2D vs 3D sweep."""

    side: int
    num_nodes: int
    patterns: tuple[str, ...]
    tsv_latencies: tuple[int, ...]
    rates: tuple[float, ...]
    reference: StackingCandidate
    candidates: list[StackingCandidate]
    #: One throughput figure per traffic pattern.
    figures: list[FigureData]


def _static_metrics(topology: Topology) -> StackingCandidate:
    from repro.topology import Mesh3DTopology, Torus3DTopology

    if isinstance(topology, Torus3DTopology):
        dims = topology.sizes
        return StackingCandidate(
            spec=topology.name,
            tsv_latency=topology.tsv_latency,
            diameter=torus3d_diameter(*dims),
            average_distance=torus3d_average_distance(*dims),
            num_links=torus3d_num_links(*dims),
            num_tsv_links=torus3d_num_tsv_links(*dims),
            wire_length=total_wire_length(topology),
        )
    if isinstance(topology, Mesh3DTopology):
        dims = topology.sizes
        return StackingCandidate(
            spec=topology.name,
            tsv_latency=topology.tsv_latency,
            diameter=mesh3d_diameter(*dims),
            average_distance=mesh3d_average_distance(*dims),
            num_links=mesh3d_num_links(*dims),
            num_tsv_links=mesh3d_num_tsv_links(*dims),
            wire_length=total_wire_length(topology),
        )
    assert isinstance(topology, MeshTopology)
    return StackingCandidate(
        spec=topology.name,
        tsv_latency=None,
        diameter=mesh_diameter(topology.rows, topology.cols),
        average_distance=mesh_average_distance(
            topology.rows, topology.cols
        ),
        num_links=mesh_num_links(topology.rows, topology.cols),
        num_tsv_links=0,
        wire_length=total_wire_length(topology),
    )


def _simulate(
    topology: Topology,
    pattern_spec: str,
    rates: tuple[float, ...],
    settings: SimulationSettings,
    candidate: StackingCandidate,
) -> None:
    metrics = TrafficMetrics(pattern_spec, 0.0, 0.0)
    for rate in rates:
        result = run_simulation(
            topology,
            parse_pattern(pattern_spec, topology),
            rate,
            settings,
        )
        metrics.throughput_curve.append(result.throughput)
        if rate == rates[0]:
            metrics.latency = result.avg_latency
    metrics.saturation_throughput = metrics.throughput_curve[-1]
    candidate.traffic[pattern_spec] = metrics


def candidate_specs(
    side: int, tsv_latencies: tuple[int, ...]
) -> list[str]:
    """The 3D specs the study evaluates, in report order."""
    specs = []
    for family in ("mesh3d", "torus3d"):
        for latency in tsv_latencies:
            suffix = f"@tsv{latency}" if latency > 1 else ""
            specs.append(f"{family}{side}x{side}x{side}{suffix}")
    return specs


def stacking_study(
    side: int = 4,
    patterns: tuple[str, ...] = DEFAULT_PATTERNS,
    tsv_latencies: tuple[int, ...] = DEFAULT_TSV_LATENCIES,
    rates: tuple[float, ...] = (0.05, 0.15, 0.3, 0.45),
    settings: SimulationSettings | None = None,
) -> StackingStudy:
    """Run the 2D-vs-3D equal-node-count comparison.

    Args:
        side: Cube side; the 3D candidates are ``side^3`` nodes and
            the 2D reference is the best factorization of ``side^3``
            (``mesh8x8`` for the default ``side=4``).
        patterns: Traffic spec strings, each evaluated on every
            candidate (``transpose`` resolves to 2D transpose on the
            reference and the cubic 3D rotation on the candidates).
        tsv_latencies: Vertical-hop penalties to sweep; include 1 to
            keep the uniform-link control in the report.
        rates: Sweep; ``rates[0]`` is the latency reference point and
            ``rates[-1]`` the saturation point.
        settings: Run-length parameters (defaults to the standard
            20k-cycle / 4k-warmup run).

    Raises:
        ValueError: for ``side < 3`` (the 3D torus needs every
            dimension >= 3), an empty rate sweep, or an empty
            pattern/penalty list.
    """
    if side < 3:
        raise ValueError(
            f"stacking study needs side >= 3 (torus3d wraparound), "
            f"got {side}"
        )
    if not rates:
        raise ValueError("need at least one injection rate")
    if not patterns:
        raise ValueError("need at least one traffic pattern")
    if not tsv_latencies:
        raise ValueError("need at least one TSV latency")
    settings = settings or SimulationSettings()
    rates = tuple(rates)
    patterns = tuple(patterns)
    tsv_latencies = tuple(tsv_latencies)
    num_nodes = side**3

    reference_topology = MeshTopology.factorized(num_nodes)
    reference = _static_metrics(reference_topology)
    for pattern in patterns:
        _simulate(reference_topology, pattern, rates, settings, reference)

    candidates = []
    for spec in candidate_specs(side, tsv_latencies):
        topology = parse_topology(spec)
        candidate = _static_metrics(topology)
        for pattern in patterns:
            _simulate(topology, pattern, rates, settings, candidate)
        candidates.append(candidate)

    figures = []
    for pattern in patterns:
        figure = FigureData(
            "ext-mesh3d",
            f"Accepted throughput, 2D vs 3D at N={num_nodes} "
            f"({pattern} traffic)",
            "rate",
            list(rates),
        )
        figure.add_series(
            reference.spec,
            list(reference.traffic[pattern].throughput_curve),
        )
        for candidate in candidates:
            figure.add_series(
                candidate.spec,
                list(candidate.traffic[pattern].throughput_curve),
            )
        figure.notes.append(
            "TSV penalty applies to vertical links only; penalty 1 "
            "equals the uniform-link model exactly"
        )
        figures.append(figure)

    return StackingStudy(
        side=side,
        num_nodes=num_nodes,
        patterns=patterns,
        tsv_latencies=tsv_latencies,
        rates=rates,
        reference=reference,
        candidates=candidates,
        figures=figures,
    )


def format_study(study: StackingStudy) -> str:
    """Render the study as an aligned text report."""
    lines = [
        f"== 2D vs 3D stacking study: N={study.num_nodes}, "
        f"TSV penalties {list(study.tsv_latencies)}, "
        f"rates {list(study.rates)} =="
    ]
    low = format(study.rates[0], "g")
    high = format(study.rates[-1], "g")
    for pattern in study.patterns:
        lines.append(f"-- {pattern} traffic --")
        lines.append(
            f"{'spec':<20} {'tsv':>3} {'ND':>3} {'E[D]':>6} "
            f"{'links':>5} {'wire':>7} {'lat@' + low:>9} "
            f"{'thr@' + high:>9}"
        )
        for candidate in [study.reference, *study.candidates]:
            metrics = candidate.traffic[pattern]
            tsv = (
                "-"
                if candidate.tsv_latency is None
                else candidate.tsv_latency
            )
            lines.append(
                f"{candidate.spec:<20} {tsv:>3} {candidate.diameter:>3} "
                f"{candidate.average_distance:>6.3f} "
                f"{candidate.num_links:>5} {candidate.wire_length:>7.2f} "
                f"{metrics.latency:>9.2f} "
                f"{metrics.saturation_throughput:>9.4f}"
            )
    return "\n".join(lines)


def main(rest: list[str]) -> int:
    """CLI entry: ``python -m repro mesh3d [options]``."""
    import argparse

    from repro.experiments.report import format_table

    parser = argparse.ArgumentParser(
        prog="python -m repro mesh3d",
        description="Equal-node-count comparison of the 2D mesh "
        "against 3D mesh/torus stacks across TSV latency penalties.",
    )
    parser.add_argument(
        "side",
        nargs="?",
        type=int,
        default=4,
        help="cube side; candidates are side^3 nodes (default 4)",
    )
    parser.add_argument(
        "--patterns",
        default=",".join(DEFAULT_PATTERNS),
        help="comma-separated traffic specs",
    )
    parser.add_argument(
        "--tsv",
        default=",".join(str(t) for t in DEFAULT_TSV_LATENCIES),
        help="comma-separated TSV latency penalties",
    )
    parser.add_argument(
        "--rates",
        default="0.05,0.15,0.3,0.45",
        help="comma-separated injection-rate sweep",
    )
    parser.add_argument(
        "--cycles", type=int, default=20_000, help="run length"
    )
    parser.add_argument(
        "--warmup", type=int, default=4_000, help="warmup cycles"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="abbreviated CI variant: short runs, penalties 1 and 4, "
        "one rate, uniform + transpose traffic",
    )
    try:
        args = parser.parse_args(rest)
        rates = tuple(float(r) for r in args.rates.split(",") if r)
        tsv_latencies = tuple(
            int(t) for t in args.tsv.split(",") if t
        )
        patterns = tuple(p for p in args.patterns.split(",") if p)
    except SystemExit as exc:
        return int(exc.code or 0)
    except ValueError:
        print("error: bad --rates or --tsv value")
        return 2
    if args.smoke:
        rates = (0.1,)
        tsv_latencies = (1, 4)
        patterns = ("uniform", "transpose")
        args.cycles, args.warmup = 1_500, 300
    try:
        study = stacking_study(
            args.side,
            patterns=patterns,
            tsv_latencies=tsv_latencies,
            rates=rates,
            settings=SimulationSettings(
                cycles=args.cycles, warmup=args.warmup, seed=args.seed
            ),
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(format_study(study))
    for figure in study.figures:
        print()
        print(format_table(figure))
    return 0
