"""Campaign runner: declarative sweeps with incremental persistence.

A *campaign* is the cross product of topologies, traffic patterns and
injection rates, described as plain data (JSON-compatible dict), run
one simulation at a time with results appended to a CSV file as they
complete.  Re-running a partially finished campaign skips every run
already present in the CSV — long sweeps survive interruption.

Spec format::

    {
      "name": "my-sweep",
      "cycles": 20000,
      "warmup": 4000,
      "seed": 1,
      "source_queue_packets": 64,
      "topologies": ["ring16", "spidergon16", "mesh4x4",
                     "mesh-irregular13", "torus4x4"],
      "patterns": ["uniform", "hotspot:0", "hotspot:0,8",
                   "tornado", "bit-complement", "nearest-neighbor"],
      "rates": [0.05, 0.1, 0.2, 0.4]
    }

Topology strings: ``ring<N>``, ``spidergon<N>``, ``mesh<R>x<C>``,
``mesh<N>`` (factorized), ``mesh-irregular<N>``, ``torus<R>x<C>``.
"""

from __future__ import annotations

import json
import pathlib
import re

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.noc.config import NocConfig
from repro.stats.summary import RunResult
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    Topology,
    TorusTopology,
)
from repro.traffic import (
    BitComplementTraffic,
    HotspotTraffic,
    NearestNeighborTraffic,
    TornadoTraffic,
    TrafficPattern,
    TransposeTraffic,
    UniformTraffic,
)

CSV_COLUMNS = [
    "topology",
    "pattern",
    "rate",
    "seed",
    "throughput",
    "avg_latency",
    "p95_latency",
    "avg_hops",
    "packets_delivered",
    "packets_generated",
    "packets_rejected",
]


def parse_topology(spec: str) -> Topology:
    """Build a topology from its campaign string."""
    if match := re.fullmatch(r"ring(\d+)", spec):
        return RingTopology(int(match.group(1)))
    if match := re.fullmatch(r"spidergon(\d+)", spec):
        return SpidergonTopology(int(match.group(1)))
    if match := re.fullmatch(r"mesh(\d+)x(\d+)", spec):
        return MeshTopology(int(match.group(1)), int(match.group(2)))
    if match := re.fullmatch(r"mesh-irregular(\d+)", spec):
        return MeshTopology.irregular(int(match.group(1)))
    if match := re.fullmatch(r"mesh(\d+)", spec):
        return MeshTopology.factorized(int(match.group(1)))
    if match := re.fullmatch(r"torus(\d+)x(\d+)", spec):
        return TorusTopology(int(match.group(1)), int(match.group(2)))
    if match := re.fullmatch(r"hypercube(\d+)", spec):
        from repro.topology import HypercubeTopology

        return HypercubeTopology.with_nodes(int(match.group(1)))
    raise ValueError(f"unknown topology spec {spec!r}")


def parse_pattern(spec: str, topology: Topology) -> TrafficPattern:
    """Build a traffic pattern from its campaign string."""
    if spec == "uniform":
        return UniformTraffic(topology)
    if spec.startswith("hotspot:"):
        targets = [int(t) for t in spec.split(":", 1)[1].split(",")]
        return HotspotTraffic(topology, targets)
    if spec == "tornado":
        return TornadoTraffic(topology)
    if spec == "bit-complement":
        return BitComplementTraffic(topology)
    if spec == "nearest-neighbor":
        return NearestNeighborTraffic(topology)
    if spec == "transpose":
        if not isinstance(topology, MeshTopology):
            raise ValueError("transpose needs a mesh topology")
        return TransposeTraffic(topology)
    raise ValueError(f"unknown pattern spec {spec!r}")


class Campaign:
    """A declarative sweep with resumable CSV persistence."""

    def __init__(self, spec: dict) -> None:
        for key in ("name", "topologies", "patterns", "rates"):
            if key not in spec:
                raise ValueError(f"campaign spec missing {key!r}")
        self.spec = spec
        self.name = spec["name"]
        self.settings = SimulationSettings(
            cycles=int(spec.get("cycles", 20_000)),
            warmup=int(spec.get("warmup", 4_000)),
            config=NocConfig(
                source_queue_packets=spec.get(
                    "source_queue_packets", 64
                )
            ),
            seed=int(spec.get("seed", 1)),
        )

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        return cls(json.loads(text))

    def runs(self) -> list[tuple[str, str, float]]:
        """Every (topology, pattern, rate) cell of the sweep."""
        return [
            (topo, pattern, float(rate))
            for topo in self.spec["topologies"]
            for pattern in self.spec["patterns"]
            for rate in self.spec["rates"]
        ]

    @staticmethod
    def _key(topology: str, pattern: str, rate: float) -> str:
        return f"{topology}|{pattern}|{rate:.6g}"

    def completed_keys(self, csv_path: pathlib.Path) -> set[str]:
        """Keys already present in *csv_path* (resume support)."""
        if not csv_path.exists():
            return set()
        done = set()
        for line in csv_path.read_text().splitlines()[1:]:
            cells = line.split(",")
            if len(cells) >= 3:
                done.add(
                    self._key(cells[0], cells[1], float(cells[2]))
                )
        return done

    def execute(
        self,
        csv_path: str | pathlib.Path,
        progress=None,
    ) -> list[RunResult]:
        """Run every outstanding cell, appending rows to *csv_path*.

        Args:
            csv_path: Output CSV (created with a header if absent).
            progress: Optional callable invoked as
                ``progress(done, total, key)`` after each run.

        Returns:
            The :class:`RunResult` objects produced by *this* call
            (resumed cells are not re-run and not returned).
        """
        path = pathlib.Path(csv_path)
        if not path.exists():
            path.write_text(",".join(CSV_COLUMNS) + "\n")
        done = self.completed_keys(path)
        cells = self.runs()
        results = []
        for index, (topo_spec, pattern_spec, rate) in enumerate(cells):
            key = self._key(topo_spec, pattern_spec, rate)
            if key in done:
                continue
            topology = parse_topology(topo_spec)
            pattern = parse_pattern(pattern_spec, topology)
            result = run_simulation(
                topology, pattern, rate, self.settings
            )
            results.append(result)
            row = [
                topo_spec,
                pattern_spec,
                f"{rate:.6g}",
                str(self.settings.seed),
                f"{result.throughput:.6g}",
                _cell(result.avg_latency),
                _cell(result.p95_latency),
                _cell(result.avg_hops),
                str(result.packets_delivered),
                str(result.packets_generated),
                str(result.packets_rejected),
            ]
            with path.open("a") as handle:
                handle.write(",".join(row) + "\n")
            if progress is not None:
                progress(index + 1, len(cells), key)
        return results


def _cell(value: float | None) -> str:
    return "" if value is None else f"{value:.6g}"
