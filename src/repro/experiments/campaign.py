"""Campaign runner: declarative sweeps with incremental persistence.

A *campaign* is the cross product of topologies, traffic patterns and
injection rates, described as plain data (JSON-compatible dict), with
results appended to a CSV file as they complete.  Re-running a
partially finished campaign skips every run already present in the
CSV — long sweeps survive interruption.  Execution can fan out over
worker processes (``workers=N``) and consult a result cache; both are
bit-transparent because every sweep point derives its seed from its
own coordinates (see :mod:`repro.experiments.parallel`), so serial,
parallel and resumed runs all produce identical rows.

Spec format::

    {
      "name": "my-sweep",
      "cycles": 20000,
      "warmup": 4000,
      "seed": 1,
      "source_queue_packets": 64,
      "topologies": ["ring16", "spidergon16", "mesh4x4",
                     "mesh-irregular13", "torus4x4"],
      "patterns": ["uniform", "hotspot:0", "hotspot:0,8",
                   "tornado", "bit-complement", "nearest-neighbor"],
      "rates": [0.05, 0.1, 0.2, 0.4],
      "timeline_window": 500
    }

The optional ``timeline_window`` key makes every run export a
per-link utilization timeline (see
:class:`~repro.stats.utilization.UtilizationTimeline`) into
``result.extra["timeline"]`` — cached results and worker processes
included; the export is deterministic, so it never perturbs resume
or serial/parallel equivalence.

Resilience keys (all optional)::

    "stall_cycles": 3000,              # stall watchdog threshold
    "invariant_check_interval": 5000,  # periodic invariant audits
    "fault_plan": {"events": [         # explicit fault schedule
        {"time": 5000, "src": 0, "dst": 1, "action": "fail"},
        {"time": 9000, "src": 0, "dst": 1, "action": "repair"}]},
    "random_faults": {"count": 2, "at": 5000,
                      "repair_after": 4000, "seed": 9}

``fault_plan`` applies the same schedule to every cell (the links
must exist in every topology of the sweep); ``random_faults``
resolves to a per-topology plan instead (picks are deterministic in
the topology name, count, time and seed).  The two are mutually
exclusive.  Like the seed, plans live inside the settings, so cache
keys and serial/parallel/resumed equivalence cover them.

Topology strings: ``ring<N>``, ``spidergon<N>``, ``mesh<R>x<C>``,
``mesh<N>`` (factorized), ``mesh-irregular<N>``, ``torus<R>x<C>``,
``hypercube<N>``, ``circulant<N>s<s>``, ``faulty:<base>:<k>@<seed>``
(the full :mod:`repro.experiments.specs` grammar).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import replace

from repro.experiments.parallel import (
    CampaignManifest,
    ExecutionStats,
    FailedResult,
    PointResult,
    ResultCache,
    derive_seed,
    execute_points,
    point_key,
)
from repro.experiments.runner import SimulationSettings, SweepPoint
from repro.experiments.specs import (
    parse_pattern,
    parse_topology,
    parse_topology_routing,
)
from repro.noc.config import NocConfig
from repro.resilience.plan import FaultPlan
from repro.stats.summary import RunResult

__all__ = [
    "CSV_COLUMNS",
    "Campaign",
    "campaign_points",
    "parse_pattern",
    "parse_topology",
]


def campaign_points(spec: dict) -> list[SweepPoint]:
    """Validate *spec* and expand it into seeded sweep points.

    The one spec-to-points path shared by batch campaigns and the
    campaign server (:mod:`repro.serve`): both accept the identical
    JSON spec format documented above, fail fast on a bad spec
    (raising :class:`ValueError` before any simulation runs), and
    derive every point's seed from its own coordinates — which is
    what makes a submitted point's
    :func:`~repro.experiments.parallel.point_key` identical no matter
    which client, server, or batch run computes it.
    """
    campaign = Campaign(spec)
    campaign.validate()
    return campaign.sweep_points()

CSV_COLUMNS = [
    "topology",
    "pattern",
    "rate",
    "seed",
    "throughput",
    "avg_latency",
    "p95_latency",
    "avg_hops",
    "packets_delivered",
    "packets_generated",
    "packets_rejected",
]


class Campaign:
    """A declarative sweep with resumable CSV persistence."""

    def __init__(self, spec: dict) -> None:
        for key in ("name", "topologies", "patterns", "rates"):
            if key not in spec:
                raise ValueError(f"campaign spec missing {key!r}")
        self.spec = spec
        self.name = spec["name"]
        timeline_window = spec.get("timeline_window")
        stall_cycles = spec.get("stall_cycles")
        fault_plan = spec.get("fault_plan")
        self.settings = SimulationSettings(
            cycles=int(spec.get("cycles", 20_000)),
            warmup=int(spec.get("warmup", 4_000)),
            config=NocConfig(
                source_queue_packets=spec.get(
                    "source_queue_packets", 64
                )
            ),
            seed=int(spec.get("seed", 1)),
            timeline_window=(
                int(timeline_window)
                if timeline_window is not None
                else None
            ),
            fault_plan=(
                FaultPlan.from_dict(fault_plan)
                if fault_plan is not None
                else None
            ),
            stall_cycles=(
                int(stall_cycles) if stall_cycles is not None else None
            ),
            invariant_check_interval=int(
                spec.get("invariant_check_interval", 0)
            ),
            engine=str(spec.get("engine", "wheel")),
        )
        # Per-topology random fault plans are resolved lazily in
        # sweep_points (the picks depend on each topology's links):
        # {"count": N, "at": T, "repair_after": T?, "seed": S?}.
        self._random_faults: dict | None = spec.get("random_faults")
        if self._random_faults is not None and fault_plan is not None:
            raise ValueError(
                "campaign spec sets both fault_plan and random_faults"
            )
        #: Filled by :meth:`execute` for reporting.
        self.last_stats: ExecutionStats | None = None
        #: Manifest of the last hardened :meth:`execute`, if any.
        self.last_manifest: CampaignManifest | None = None

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        return cls(json.loads(text))

    def validate(self) -> None:
        """Parse every topology, pattern and engine spec, failing
        fast.

        Raises:
            ValueError: naming the offending spec — so a typo aborts
                the campaign before any simulation runs (and before
                any CSV row is written), not mid-sweep.
        """
        from repro.sim.engines import resolve_engine

        resolve_engine(self.settings.engine)
        for topo_spec in self.spec["topologies"]:
            topology, _ = parse_topology_routing(topo_spec)
            for pattern_spec in self.spec["patterns"]:
                try:
                    parse_pattern(pattern_spec, topology)
                except ValueError as exc:
                    raise ValueError(
                        f"pattern {pattern_spec!r} is invalid for "
                        f"topology {topo_spec!r}: {exc}"
                    ) from exc

    def runs(self) -> list[tuple[str, str, float]]:
        """Every (topology, pattern, rate) cell of the sweep."""
        return [
            (topo, pattern, float(rate))
            for topo in self.spec["topologies"]
            for pattern in self.spec["patterns"]
            for rate in self.spec["rates"]
        ]

    def _fault_plan_for(self, topo_spec: str) -> FaultPlan | None:
        """The (possibly per-topology) fault plan of cell *topo_spec*.

        A ``random_faults`` spec resolves here, deterministically per
        topology: the picks depend only on (topology name, count, at,
        seed), never on execution order — so serial, parallel and
        resumed campaigns inject the same faults.
        """
        if self._random_faults is None:
            return self.settings.fault_plan
        config = self._random_faults
        return FaultPlan.random_faults(
            parse_topology_routing(topo_spec)[0],
            count=int(config["count"]),
            at=int(config["at"]),
            repair_after=(
                int(config["repair_after"])
                if config.get("repair_after") is not None
                else None
            ),
            seed=int(config.get("seed", self.settings.seed)),
        )

    def sweep_points(self) -> list[SweepPoint]:
        """Every cell as a :class:`SweepPoint` with its derived seed."""
        points = []
        for topo, pattern, rate in self.runs():
            points.append(
                SweepPoint(
                    topology=topo,
                    pattern=pattern,
                    rate=rate,
                    settings=replace(
                        self.settings,
                        seed=derive_seed(
                            self.settings.seed, topo, pattern, rate
                        ),
                        fault_plan=self._fault_plan_for(topo),
                    ),
                )
            )
        return points

    @staticmethod
    def _key(topology: str, pattern: str, rate: float) -> str:
        return f"{topology}|{pattern}|{rate:.6g}"

    def completed_keys(self, csv_path: pathlib.Path) -> set[str]:
        """Keys already present in *csv_path* (resume support)."""
        if not csv_path.exists():
            return set()
        done = set()
        for line in csv_path.read_text().splitlines()[1:]:
            cells = line.split(",")
            if len(cells) >= 3:
                done.add(
                    self._key(cells[0], cells[1], float(cells[2]))
                )
        return done

    def manifest_path(
        self, csv_path: str | pathlib.Path
    ) -> pathlib.Path:
        """Default manifest location: a sibling of the CSV."""
        path = pathlib.Path(csv_path)
        return path.with_name(path.stem + ".manifest.jsonl")

    def execute(
        self,
        csv_path: str | pathlib.Path,
        progress=None,
        *,
        workers: int = 1,
        cache: bool = True,
        cache_dir: str | pathlib.Path | None = None,
        timeout: float | None = None,
        retries: int = 0,
        resume: bool = False,
    ) -> list[PointResult]:
        """Run every outstanding cell, appending rows to *csv_path*.

        Args:
            csv_path: Output CSV (created with a header if absent).
            progress: Optional callable invoked as
                ``progress(done, total, key)`` after each run.
            workers: Worker processes; 1 runs serially in-process.
                Any value yields identical rows (order aside) because
                each cell's seed comes from its coordinates.
            cache: Consult/fill the result cache so overlapping
                campaigns and re-runs skip completed simulations.
            cache_dir: Cache location; defaults to ``.repro-cache``
                next to the CSV.
            timeout: Per-point wall-clock deadline (seconds); selects
                hardened execution (see
                :func:`~repro.experiments.parallel.execute_points`).
            retries: Extra attempts per failed point before it is
                recorded as a :class:`FailedResult`.
            resume: Keep the existing outcome manifest and skip
                points it already marks ``ok`` (in addition to the
                CSV-based skip); without it a hardened run starts a
                fresh manifest.

        Returns:
            The results produced by *this* call, in sweep order —
            :class:`RunResult` for successes (cache hits included),
            :class:`FailedResult` for points that exhausted their
            retries.  Failed points get **no CSV row**, so a resumed
            campaign re-attempts exactly those.
        """
        self.validate()
        path = pathlib.Path(csv_path)
        if not path.exists():
            path.write_text(",".join(CSV_COLUMNS) + "\n")
        hardened = timeout is not None or retries > 0 or resume
        manifest = None
        if hardened:
            mpath = self.manifest_path(path)
            if not resume and mpath.exists():
                mpath.unlink()
            manifest = CampaignManifest(mpath)
        done = self.completed_keys(path)
        manifest_done = (
            manifest.completed_keys() if resume and manifest else set()
        )
        total = len(self.runs())
        outstanding = [
            point
            for point in self.sweep_points()
            if self._key(point.topology, point.pattern, point.rate)
            not in done
            and point_key(point) not in manifest_done
        ]
        result_cache = None
        if cache:
            directory = (
                pathlib.Path(cache_dir)
                if cache_dir is not None
                else path.parent / ".repro-cache"
            )
            result_cache = ResultCache(directory)
        finished = total - len(outstanding)

        def persist(index, point, result, cached):
            nonlocal finished
            finished += 1
            key = self._key(point.topology, point.pattern, point.rate)
            if isinstance(result, FailedResult):
                # No CSV row: the point stays outstanding for the
                # next run; the manifest documents the casualty.
                if progress is not None:
                    progress(
                        finished, total, f"{key} FAILED({result.error})"
                    )
                return
            with path.open("a") as handle:
                handle.write(",".join(_row(point, result)) + "\n")
            if progress is not None:
                progress(finished, total, key)

        results, stats = execute_points(
            outstanding,
            workers=workers,
            cache=result_cache,
            on_result=persist,
            timeout=timeout,
            retries=retries,
            manifest=manifest,
        )
        self.last_stats = stats
        self.last_manifest = manifest
        return results


def _row(point: SweepPoint, result: RunResult) -> list[str]:
    return [
        point.topology,
        point.pattern,
        f"{point.rate:.6g}",
        str(point.settings.seed),
        f"{result.throughput:.6g}",
        _cell(result.avg_latency),
        _cell(result.p95_latency),
        _cell(result.avg_hops),
        str(result.packets_delivered),
        str(result.packets_generated),
        str(result.packets_rejected),
    ]


def _cell(value: float | None) -> str:
    return "" if value is None else f"{value:.6g}"
