"""Spec-string parsing: plain strings -> topology / traffic objects.

Campaigns, figure sweeps and the parallel execution layer all
describe a sweep point as plain data (strings and numbers) so that it
can be hashed for the result cache and pickled to worker processes;
these parsers rebuild the model objects on the other side.

Topology strings: ``ring<N>``, ``spidergon<N>``, ``mesh<R>x<C>``,
``mesh<N>`` (factorized), ``mesh-irregular<N>``, ``torus<R>x<C>``,
``hypercube<N>``, ``circulant<N>s<s>`` (the circulant ring
``C(N; 1, s)``), and ``faulty:<base>:<count>@<seed>`` — any base
spec degraded by *count* random build-time link faults picked with
*seed* (see :class:`~repro.topology.faults.FaultyTopology`).

Pattern strings: ``uniform``, ``hotspot:<n>[,<n>...]``, ``tornado``,
``bit-complement``, ``nearest-neighbor``, ``transpose``,
``shuffle``, ``bit-reverse``.
"""

from __future__ import annotations

import re

from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    Topology,
    TorusTopology,
)
from repro.traffic import (
    BitComplementTraffic,
    BitReverseTraffic,
    HotspotTraffic,
    NearestNeighborTraffic,
    ShuffleTraffic,
    TornadoTraffic,
    TrafficPattern,
    TransposeTraffic,
    UniformTraffic,
)


def parse_topology(spec: str) -> Topology:
    """Build a topology from its campaign string.

    Raises:
        ValueError: for an unrecognized spec, or (via
            :class:`~repro.topology.base.TopologyError`, a ValueError
            subclass) for a recognized spec with impossible
            parameters, e.g. ``spidergon7`` or ``ring2``.
    """
    if match := re.fullmatch(r"ring(\d+)", spec):
        return RingTopology(int(match.group(1)))
    if match := re.fullmatch(r"spidergon(\d+)", spec):
        return SpidergonTopology(int(match.group(1)))
    if match := re.fullmatch(r"circulant(\d+)s(\d+)", spec):
        from repro.topology import CirculantTopology

        return CirculantTopology(int(match.group(1)), int(match.group(2)))
    if match := re.fullmatch(r"mesh(\d+)x(\d+)", spec):
        return MeshTopology(int(match.group(1)), int(match.group(2)))
    if match := re.fullmatch(r"mesh-irregular(\d+)", spec):
        return MeshTopology.irregular(int(match.group(1)))
    if match := re.fullmatch(r"mesh(\d+)", spec):
        return MeshTopology.factorized(int(match.group(1)))
    if match := re.fullmatch(r"torus(\d+)x(\d+)", spec):
        return TorusTopology(int(match.group(1)), int(match.group(2)))
    if match := re.fullmatch(r"hypercube(\d+)", spec):
        from repro.topology import HypercubeTopology

        return HypercubeTopology.with_nodes(int(match.group(1)))
    if match := re.fullmatch(r"faulty:(.+):(\d+)@(\d+)", spec):
        from repro.topology.faults import FaultyTopology

        return FaultyTopology.with_random_faults(
            parse_topology(match.group(1)),
            int(match.group(2)),
            seed=int(match.group(3)),
        )
    raise ValueError(f"unknown topology spec {spec!r}")


def parse_pattern(spec: str, topology: Topology) -> TrafficPattern:
    """Build a traffic pattern from its campaign string.

    Raises:
        ValueError: for an unrecognized spec or one that does not fit
            *topology* (e.g. ``transpose`` on a non-mesh).
    """
    if spec == "uniform":
        return UniformTraffic(topology)
    if spec.startswith("hotspot:"):
        body = spec.split(":", 1)[1]
        try:
            targets = [int(t) for t in body.split(",")]
        except ValueError:
            raise ValueError(
                f"hotspot targets must be integers, got {body!r}"
            ) from None
        return HotspotTraffic(topology, targets)
    if spec == "tornado":
        return TornadoTraffic(topology)
    if spec == "bit-complement":
        return BitComplementTraffic(topology)
    if spec == "nearest-neighbor":
        return NearestNeighborTraffic(topology)
    if spec == "shuffle":
        return ShuffleTraffic(topology)
    if spec == "bit-reverse":
        return BitReverseTraffic(topology)
    if spec == "transpose":
        if not isinstance(topology, MeshTopology):
            raise ValueError("transpose needs a mesh topology")
        return TransposeTraffic(topology)
    raise ValueError(f"unknown pattern spec {spec!r}")
