"""Spec-string parsing: plain strings -> topology / traffic objects.

Campaigns, figure sweeps and the parallel execution layer all
describe a sweep point as plain data (strings and numbers) so that it
can be hashed for the result cache and pickled to worker processes;
these parsers rebuild the model objects on the other side.

Topology specs are handled by a registry: each family registers a
``(prefix, regex, parser)`` triple via the
:func:`register_topology` decorator, :func:`parse_topology` tries the
registered patterns in registration order, and
:func:`available_topologies` lists them for the CLI
(``python -m repro topologies``).  Built-in specs: ``ring<N>``,
``spidergon<N>``, ``circulant<N>s<s>``, ``hypercube<N>``,
``mesh<R>x<C>``, ``mesh<N>`` (factorized), ``mesh-irregular<N>``,
``torus<R>x<C>``, ``mesh3d<X>x<Y>x<Z>[@tsv<L>]``,
``torus3d<X>x<Y>x<Z>[@tsv<L>]`` (3D grids whose vertical TSV links
take ``L`` cycles, default 1), and ``faulty:<base>:<count>@<seed>``.

Pattern strings: ``uniform``, ``hotspot:<n>[,<n>...]``, ``tornado``,
``bit-complement``, ``nearest-neighbor``, ``transpose`` (2D mesh or
cubic 3D grid), ``shuffle``, ``bit-reverse``.

A topology spec may carry a **routing suffix** — a final
``:<routing>`` segment naming a registered routing scheme, e.g.
``mesh4x4:adaptive`` or ``faulty:ring16:1@7:adaptive-misroute`` —
resolved by :func:`parse_topology_routing`.  Registered schemes:
``paper`` (the default :func:`~repro.routing.routing_for` choice),
``table``, ``o1turn``, ``adaptive``, ``adaptive-misroute`` (see
:func:`available_routings`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    Topology,
    TorusTopology,
)
from repro.traffic import (
    BitComplementTraffic,
    BitReverseTraffic,
    HotspotTraffic,
    NearestNeighborTraffic,
    ShuffleTraffic,
    TornadoTraffic,
    TrafficPattern,
    Transpose3DTraffic,
    TransposeTraffic,
    UniformTraffic,
)


@dataclass(frozen=True, slots=True)
class TopologyFamily:
    """One registered topology spec family.

    Attributes:
        prefix: Registry key, e.g. ``"mesh3d"``.
        pattern: Compiled regex a spec must fullmatch.
        parser: ``Match -> Topology`` builder.
        example: A representative spec string for help output.
        description: One-line summary for ``repro topologies``.
    """

    prefix: str
    pattern: re.Pattern[str]
    parser: Callable[[re.Match[str]], Topology]
    example: str
    description: str


_TOPOLOGY_FAMILIES: dict[str, TopologyFamily] = {}


def register_topology(
    prefix: str,
    pattern: str,
    *,
    example: str,
    description: str,
) -> Callable[
    [Callable[[re.Match[str]], Topology]],
    Callable[[re.Match[str]], Topology],
]:
    """Register a topology spec family under *prefix*.

    The decorated function receives the ``re.fullmatch`` result of
    *pattern* against the spec string and returns the built topology.
    Registration order is match order, so register more specific
    patterns (``mesh3d...``) before catch-all ones (``mesh<N>``).

    Raises:
        ValueError: if *prefix* is already registered.
    """
    compiled = re.compile(pattern)

    def decorator(
        parser: Callable[[re.Match[str]], Topology],
    ) -> Callable[[re.Match[str]], Topology]:
        if prefix in _TOPOLOGY_FAMILIES:
            raise ValueError(
                f"topology prefix {prefix!r} is already registered"
            )
        _TOPOLOGY_FAMILIES[prefix] = TopologyFamily(
            prefix, compiled, parser, example, description
        )
        return parser

    return decorator


def available_topologies() -> list[TopologyFamily]:
    """All registered spec families, sorted by prefix."""
    return sorted(_TOPOLOGY_FAMILIES.values(), key=lambda f: f.prefix)


def parse_topology(spec: str) -> Topology:
    """Build a topology from its campaign string.

    Raises:
        ValueError: for an unrecognized spec, or (via
            :class:`~repro.topology.base.TopologyError`, a ValueError
            subclass) for a recognized spec with impossible
            parameters, e.g. ``spidergon7`` or ``ring2``.
    """
    for family in _TOPOLOGY_FAMILIES.values():
        if match := family.pattern.fullmatch(spec):
            return family.parser(match)
    raise ValueError(f"unknown topology spec {spec!r}")


@register_topology(
    "ring",
    r"ring(\d+)",
    example="ring16",
    description="bidirectional ring (paper baseline)",
)
def _parse_ring(match: re.Match[str]) -> Topology:
    return RingTopology(int(match.group(1)))


@register_topology(
    "spidergon",
    r"spidergon(\d+)",
    example="spidergon16",
    description="ring plus across links (paper's Spidergon)",
)
def _parse_spidergon(match: re.Match[str]) -> Topology:
    return SpidergonTopology(int(match.group(1)))


@register_topology(
    "circulant",
    r"circulant(\d+)s(\d+)",
    example="circulant16s4",
    description="circulant ring C(N; 1, s)",
)
def _parse_circulant(match: re.Match[str]) -> Topology:
    from repro.topology import CirculantTopology

    return CirculantTopology(int(match.group(1)), int(match.group(2)))


@register_topology(
    "hypercube",
    r"hypercube(\d+)",
    example="hypercube16",
    description="binary hypercube with N = 2^k nodes",
)
def _parse_hypercube(match: re.Match[str]) -> Topology:
    from repro.topology import HypercubeTopology

    return HypercubeTopology.with_nodes(int(match.group(1)))


@register_topology(
    "mesh3d",
    r"mesh3d(\d+)x(\d+)x(\d+)(?:@tsv(\d+))?",
    example="mesh3d4x4x4@tsv2",
    description="3D mesh; @tsvL sets vertical-link latency",
)
def _parse_mesh3d(match: re.Match[str]) -> Topology:
    from repro.topology import Mesh3DTopology

    return Mesh3DTopology(
        int(match.group(1)),
        int(match.group(2)),
        int(match.group(3)),
        tsv_latency=int(match.group(4) or 1),
    )


@register_topology(
    "torus3d",
    r"torus3d(\d+)x(\d+)x(\d+)(?:@tsv(\d+))?",
    example="torus3d4x4x4@tsv2",
    description="3D torus; @tsvL sets vertical-link latency",
)
def _parse_torus3d(match: re.Match[str]) -> Topology:
    from repro.topology import Torus3DTopology

    return Torus3DTopology(
        int(match.group(1)),
        int(match.group(2)),
        int(match.group(3)),
        tsv_latency=int(match.group(4) or 1),
    )


@register_topology(
    "mesh-irregular",
    r"mesh-irregular(\d+)",
    example="mesh-irregular11",
    description="largest-square mesh with leftover nodes attached",
)
def _parse_mesh_irregular(match: re.Match[str]) -> Topology:
    return MeshTopology.irregular(int(match.group(1)))


@register_topology(
    "mesh",
    r"mesh(\d+)(?:x(\d+))?",
    example="mesh4x4",
    description="2D mesh; meshN picks the best factorization",
)
def _parse_mesh(match: re.Match[str]) -> Topology:
    if match.group(2) is not None:
        return MeshTopology(int(match.group(1)), int(match.group(2)))
    return MeshTopology.factorized(int(match.group(1)))


@register_topology(
    "torus",
    r"torus(\d+)x(\d+)",
    example="torus4x4",
    description="2D torus (mesh with wraparound links)",
)
def _parse_torus(match: re.Match[str]) -> Topology:
    return TorusTopology(int(match.group(1)), int(match.group(2)))


@register_topology(
    "faulty",
    r"faulty:(.+):(\d+)@(\d+)",
    example="faulty:mesh4x4:2@7",
    description="any base spec with random build-time link faults",
)
def _parse_faulty(match: re.Match[str]) -> Topology:
    from repro.topology.faults import FaultyTopology

    return FaultyTopology.with_random_faults(
        parse_topology(match.group(1)),
        int(match.group(2)),
        seed=int(match.group(3)),
    )


@dataclass(frozen=True, slots=True)
class RoutingFamily:
    """One registered routing spec scheme.

    Attributes:
        name: Suffix key, e.g. ``"adaptive"``.
        factory: ``Topology -> RoutingAlgorithm`` builder.
        description: One-line summary for the CLI.
    """

    name: str
    factory: Callable[[Topology], "object"]
    description: str


_ROUTING_FAMILIES: dict[str, RoutingFamily] = {}


def register_routing(
    name: str, *, description: str
) -> Callable[[Callable[[Topology], "object"]], Callable]:
    """Register a routing scheme usable as a ``:<name>`` spec suffix.

    Raises:
        ValueError: if *name* is already registered.
    """

    def decorator(
        factory: Callable[[Topology], "object"],
    ) -> Callable[[Topology], "object"]:
        if name in _ROUTING_FAMILIES:
            raise ValueError(
                f"routing scheme {name!r} is already registered"
            )
        _ROUTING_FAMILIES[name] = RoutingFamily(
            name, factory, description
        )
        return factory

    return decorator


def available_routings() -> list[RoutingFamily]:
    """All registered routing schemes, sorted by name."""
    return sorted(_ROUTING_FAMILIES.values(), key=lambda f: f.name)


def split_routing_suffix(spec: str) -> tuple[str, str | None]:
    """Split ``"mesh4x4:adaptive"`` into ``("mesh4x4", "adaptive")``.

    Only a *final* colon-separated segment that names a registered
    scheme is treated as a routing suffix, so specs whose own grammar
    uses colons (``faulty:mesh4x4:2@7``) stay unambiguous — their
    routed form is ``faulty:mesh4x4:2@7:adaptive``.
    """
    base, sep, suffix = spec.rpartition(":")
    if sep and suffix in _ROUTING_FAMILIES:
        return base, suffix
    return spec, None


def parse_topology_routing(spec: str):
    """Build ``(topology, routing)`` from a topology spec string.

    ``routing`` is ``None`` when the spec carries no routing suffix —
    the network then applies the paper's default scheme for the
    topology (:func:`repro.routing.routing_for`).

    Raises:
        ValueError: for an unknown spec, or a routing scheme that
            does not fit the topology (e.g. ``ring16:o1turn``).
    """
    base, suffix = split_routing_suffix(spec)
    topology = parse_topology(base)
    if suffix is None:
        return topology, None
    family = _ROUTING_FAMILIES[suffix]
    try:
        return topology, family.factory(topology)
    except (RuntimeError, TypeError, AttributeError) as exc:
        raise ValueError(
            f"routing {suffix!r} does not fit topology {base!r}: {exc}"
        ) from exc


@register_routing(
    "paper", description="the paper's default scheme per topology"
)
def _routing_paper(topology: Topology):
    from repro.routing import routing_for

    return routing_for(topology)


@register_routing(
    "table", description="BFS shortest-path tables (ablation baseline)"
)
def _routing_table(topology: Topology):
    from repro.routing import TableRouting

    return TableRouting(topology)


@register_routing(
    "o1turn",
    description="per-packet XY/YX dimension order (regular meshes)",
)
def _routing_o1turn(topology: Topology):
    from repro.routing import MeshO1TurnRouting

    return MeshO1TurnRouting(topology)


@register_routing(
    "adaptive",
    description="minimal-adaptive, free-VC selection (not deadlock-free)",
)
def _routing_adaptive(topology: Topology):
    from repro.routing import MinimalAdaptiveRouting

    return MinimalAdaptiveRouting(topology)


@register_routing(
    "adaptive-misroute",
    description="minimal-adaptive with bounded misrouting",
)
def _routing_adaptive_misroute(topology: Topology):
    from repro.routing import MisrouteAdaptiveRouting

    return MisrouteAdaptiveRouting(topology)


def parse_pattern(spec: str, topology: Topology) -> TrafficPattern:
    """Build a traffic pattern from its campaign string.

    Raises:
        ValueError: for an unrecognized spec or one that does not fit
            *topology* (e.g. ``transpose`` on a non-mesh).
    """
    if spec == "uniform":
        return UniformTraffic(topology)
    if spec.startswith("hotspot:"):
        body = spec.split(":", 1)[1]
        try:
            targets = [int(t) for t in body.split(",")]
        except ValueError:
            raise ValueError(
                f"hotspot targets must be integers, got {body!r}"
            ) from None
        return HotspotTraffic(topology, targets)
    if spec == "tornado":
        return TornadoTraffic(topology)
    if spec == "bit-complement":
        return BitComplementTraffic(topology)
    if spec == "nearest-neighbor":
        return NearestNeighborTraffic(topology)
    if spec == "shuffle":
        return ShuffleTraffic(topology)
    if spec == "bit-reverse":
        return BitReverseTraffic(topology)
    if spec == "transpose":
        from repro.topology.mesh3d import Mesh3DTopology, Torus3DTopology

        if isinstance(topology, (Mesh3DTopology, Torus3DTopology)):
            return Transpose3DTraffic(topology)
        if not isinstance(topology, MeshTopology):
            raise ValueError("transpose needs a mesh topology")
        return TransposeTraffic(topology)
    raise ValueError(f"unknown pattern spec {spec!r}")
