"""Deadlock avoidance vs recovery: the drain study.

The paper's fabrics never deadlock by construction — dateline VC
disciplines on Ring/Spidergon and dimension-order turn restriction on
the mesh (docs/deadlock.md).  That guarantee is paid for up front, in
VCs and routing freedom.  The adaptive algorithms of
:mod:`repro.routing.adaptive` drop it (``deadlock_free = False``) and
pair with the DRAIN-style
:class:`~repro.resilience.drain.DrainController` instead, which costs
nothing until a deadlock actually forms.  This study measures both
sides of that trade:

* **Positive control** — a deterministic wormhole deadlock on an
  8-ring: single VC, 4-flit packets, and three synchronized
  all-nodes bursts to ``(i + 3) % 8``.  Without recovery the cycle
  wedges with zero packets delivered and the stall watchdog truncates
  the run; with a :class:`DrainController` attached every packet is
  delivered, byte-identically across repeats.  The packet length
  matters: 4-flit worms wedge with each head parked one hop beyond
  its queued tail flits, which is exactly the owner-free shape the
  drain rotation can break (see :mod:`repro.resilience.drain` on the
  recovery bound).

* **Load sweep** — uniform traffic on the same ring comparing the
  paper's dateline routing against minimal-adaptive with and without
  a controller.  At sane loads the adaptive network never wedges, so
  the controller's detection timer stays idle and the measured
  results with and without it are identical — recovery is free until
  needed, which is the argument for recovery over avoidance.

``python -m repro drain`` runs it from the command line (``--smoke``
for the abbreviated CI variant); measured outcomes are recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.routing import routing_for
from repro.resilience.drain import DrainController
from repro.resilience.watchdog import StallWatchdog
from repro.experiments.specs import parse_pattern
from repro.stats.summary import RunResult
from repro.topology.ring import RingTopology
from repro.traffic.base import TrafficSpec
from repro.traffic.trace import Trace, TraceEntry

#: Canonical positive-control parameters (shared with the deadlock
#: regression tests — change them only with the tests).
DEADLOCK_NODES = 8
DEADLOCK_PACKET_FLITS = 4
DEADLOCK_BURST_TIMES = (0, 2, 4)
DEADLOCK_HOPS = 3
DEADLOCK_CYCLES = 20_000
DEADLOCK_STALL_CYCLES = 3_000
DEADLOCK_DETECT_CYCLES = 100
DEADLOCK_SPIN_INTERVAL = 32


def deadlock_trace() -> Trace:
    """The canonical wedge workload: every node sends one 4-flit
    packet ``DEADLOCK_HOPS`` hops clockwise in each of three
    synchronized bursts."""
    return Trace(
        TraceEntry(time=t, src=i, dst=(i + DEADLOCK_HOPS) % DEADLOCK_NODES)
        for t in DEADLOCK_BURST_TIMES
        for i in range(DEADLOCK_NODES)
    )


def build_deadlock_network(
    with_drain: bool, engine=None
) -> Network:
    """The positive-control network: provably wedges without a
    controller, provably completes with one.

    Single VC (no dateline escape), 4-flit packets against a 3-flit
    output queue and 1-flit lanes, minimal-adaptive routing: the
    synchronized clockwise bursts close a cyclic channel dependency
    within ~100 cycles.  A stall watchdog is always attached so the
    no-drain variant terminates with a diagnostic instead of burning
    the full horizon.
    """
    topology = RingTopology(DEADLOCK_NODES)
    network = Network(
        topology,
        MinimalAdaptiveRouting(topology),
        config=NocConfig(
            packet_size_flits=DEADLOCK_PACKET_FLITS,
            num_vcs=1,
            input_buffer_flits=1,
            output_buffer_flits=3,
        ),
        engine=engine,
    )
    network.install_trace(deadlock_trace())
    StallWatchdog(network, stall_cycles=DEADLOCK_STALL_CYCLES)
    if with_drain:
        DrainController(
            network,
            detect_cycles=DEADLOCK_DETECT_CYCLES,
            spin_interval=DEADLOCK_SPIN_INTERVAL,
        )
    return network


def run_deadlock_control(
    with_drain: bool, engine=None
) -> RunResult:
    """Run the positive control once."""
    network = build_deadlock_network(with_drain, engine=engine)
    return network.run(DEADLOCK_CYCLES)


@dataclass(slots=True)
class SweepPoint:
    """One injection rate of the avoidance-vs-recovery sweep."""

    rate: float
    #: scheme name -> (throughput, avg latency or None, degraded).
    schemes: dict
    #: Drain summary of the controller-attached adaptive run.
    drain: dict

    def to_dict(self) -> dict:
        return {
            "rate": self.rate,
            "schemes": {
                name: {
                    "throughput": throughput,
                    "avg_latency": latency,
                    "degraded": degraded,
                }
                for name, (throughput, latency, degraded)
                in self.schemes.items()
            },
            "drain": self.drain,
        }


@dataclass(slots=True)
class DrainStudy:
    """Everything ``python -m repro drain`` measures."""

    control_without: RunResult
    control_with: RunResult
    sweep: list
    cycles: int
    warmup: int

    @property
    def control_packets(self) -> int:
        return len(DEADLOCK_BURST_TIMES) * DEADLOCK_NODES


SWEEP_SCHEMES = ("dateline", "adaptive", "adaptive+drain")


def drain_study(
    rates=(0.05, 0.15, 0.3),
    cycles: int = 10_000,
    warmup: int = 2_000,
    seed: int = 1,
) -> DrainStudy:
    """Run the positive control and the load sweep."""
    sweep = []
    for rate in rates:
        schemes: dict = {}
        drain_summary: dict = {}
        for name in SWEEP_SCHEMES:
            topology = RingTopology(DEADLOCK_NODES)
            routing = (
                routing_for(topology)
                if name == "dateline"
                else MinimalAdaptiveRouting(topology)
            )
            network = Network(
                topology,
                routing,
                traffic=TrafficSpec(
                    parse_pattern("uniform", topology), rate
                ),
                seed=seed,
            )
            StallWatchdog(
                network, stall_cycles=DEADLOCK_STALL_CYCLES
            )
            if name == "adaptive+drain":
                controller = DrainController(
                    network,
                    detect_cycles=DEADLOCK_DETECT_CYCLES,
                    spin_interval=DEADLOCK_SPIN_INTERVAL,
                )
            result = network.run(cycles, warmup=warmup)
            schemes[name] = (
                result.throughput,
                result.avg_latency,
                result.degraded,
            )
            if name == "adaptive+drain":
                drain_summary = controller.summary()
        sweep.append(
            SweepPoint(rate=rate, schemes=schemes, drain=drain_summary)
        )
    return DrainStudy(
        control_without=run_deadlock_control(False),
        control_with=run_deadlock_control(True),
        sweep=sweep,
        cycles=cycles,
        warmup=warmup,
    )


def format_study(study: DrainStudy) -> str:
    """Render the study as an aligned text report."""
    total = study.control_packets
    without, with_drain = study.control_without, study.control_with
    drain = with_drain.extra.get("drain", {})
    lines = [
        "== Deadlock recovery study: avoidance vs DRAIN-style drain ==",
        "",
        "-- positive control: ring8, 1 VC, 4-flit packets, 3 "
        "synchronized bursts --",
        f"without drain: degraded={without.degraded} "
        f"delivered={without.packets_delivered}/{total} "
        f"(stall watchdog truncated the run)",
        f"with drain:    degraded={with_drain.degraded} "
        f"delivered={with_drain.packets_delivered}/{total} "
        f"avg_latency={with_drain.avg_latency:.1f} "
        f"(detections={drain.get('stall_detections')}, "
        f"epochs={drain.get('epochs')}, "
        f"flits_spun={drain.get('flits_spun')}, "
        f"recoveries={drain.get('recoveries')})",
        "",
        f"-- uniform sweep: ring8, {study.cycles} cycles, "
        f"{study.warmup} warmup --",
        f"{'rate':>6}  "
        + "  ".join(
            f"{name + ' thr':>16} {'lat':>8}" for name in SWEEP_SCHEMES
        )
        + f"  {'drain activity':>14}",
    ]
    for point in study.sweep:
        cells = []
        for name in SWEEP_SCHEMES:
            throughput, latency, degraded = point.schemes[name]
            lat = f"{latency:.2f}" if latency is not None else "-"
            flag = "!" if degraded else ""
            cells.append(f"{throughput:>16.4f}{flag} {lat:>8}")
        activity = (
            f"{point.drain.get('stall_detections', 0)} det/"
            f"{point.drain.get('flits_spun', 0)} spun"
        )
        lines.append(
            f"{point.rate:>6.3g}  " + "  ".join(cells)
            + f"  {activity:>14}"
        )
    idle = all(
        point.drain.get("flits_spun", 0) == 0 for point in study.sweep
    )
    agree = all(
        point.schemes["adaptive"] == point.schemes["adaptive+drain"]
        for point in study.sweep
    )
    if idle:
        lines.append(
            "drain controller stayed idle at every swept load"
            + (
                " and left the adaptive results untouched"
                if agree
                else ""
            )
            + " — recovery costs nothing until a deadlock forms"
        )
    return "\n".join(lines)


def main(rest: list[str]) -> int:
    """CLI entry: ``python -m repro drain [options]``."""
    import argparse
    import json
    import pathlib

    parser = argparse.ArgumentParser(
        prog="python -m repro drain",
        description="Deadlock avoidance vs DRAIN-style recovery: a "
        "deterministic wormhole-deadlock positive control (wedges "
        "without the controller, completes with it) plus a uniform "
        "load sweep of dateline vs adaptive routing.",
    )
    parser.add_argument(
        "--rates",
        default="0.05,0.15,0.3",
        help="comma-separated injection-rate sweep",
    )
    parser.add_argument(
        "--cycles", type=int, default=10_000, help="sweep run length"
    )
    parser.add_argument(
        "--warmup", type=int, default=2_000, help="sweep warmup cycles"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also dump the study as JSON here",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="abbreviated CI variant: one rate, short sweep runs "
        "(the positive control always runs in full)",
    )
    try:
        args = parser.parse_args(rest)
        rates = tuple(float(r) for r in args.rates.split(",") if r)
    except SystemExit as exc:
        return int(exc.code or 0)
    except ValueError:
        print("error: bad --rates value")
        return 2
    if args.smoke:
        rates = (0.1,)
        args.cycles, args.warmup = 2_000, 400
    if args.cycles < 1 or not 0 <= args.warmup < args.cycles:
        print("error: need cycles >= 1 and 0 <= warmup < cycles")
        return 2
    study = drain_study(
        rates=rates,
        cycles=args.cycles,
        warmup=args.warmup,
        seed=args.seed,
    )
    print(format_study(study))
    if args.json is not None:
        drain = study.control_with.extra.get("drain", {})
        payload = {
            "control": {
                "packets": study.control_packets,
                "without_drain": {
                    "degraded": study.control_without.degraded,
                    "delivered": (
                        study.control_without.packets_delivered
                    ),
                },
                "with_drain": {
                    "degraded": study.control_with.degraded,
                    "delivered": study.control_with.packets_delivered,
                    "drain": drain,
                },
            },
            "sweep": [point.to_dict() for point in study.sweep],
        }
        pathlib.Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"full study -> {args.json}")
    ok = (
        study.control_without.degraded
        and study.control_without.packets_delivered == 0
        and not study.control_with.degraded
        and study.control_with.packets_delivered
        == study.control_packets
    )
    return 0 if ok else 1
