"""Figure data containers and text/CSV rendering.

The original paper presents its evaluation as line plots; in this
offline reproduction each figure is a table whose first column is the
x-axis (node count or injection rate) and whose remaining columns are
one series per topology/scenario.  The *shape* comparisons the paper
draws (who wins, where curves cross, where saturation knees sit) read
directly off these tables.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field


@dataclass(slots=True)
class FigureData:
    """A rendered-figure equivalent: labelled columns over an x-axis.

    Attributes:
        figure_id: Paper figure identifier, e.g. ``"fig10"``.
        title: Human-readable description.
        x_label: Name of the x column.
        x_values: The x-axis points.
        series: Mapping of series label to y-values (must align with
            ``x_values``; None marks a missing measurement).
        notes: Free-form remarks (scenario details, caveats).
    """

    figure_id: str
    title: str
    x_label: str
    x_values: list[float]
    series: dict[str, list[float | None]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_series(self, label: str, values: list[float | None]) -> None:
        """Attach a series, validating alignment with the x-axis."""
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points for "
                f"{len(self.x_values)} x values"
            )
        if label in self.series:
            raise ValueError(f"duplicate series label {label!r}")
        self.series[label] = values

    def column(self, label: str) -> list[float | None]:
        """The y-values of one series."""
        return self.series[label]


def _format_value(value: float | None, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{value:.{precision}f}"


def format_table(figure: FigureData, precision: int = 3) -> str:
    """Render *figure* as an aligned monospace table."""
    headers = [figure.x_label] + list(figure.series)
    rows = []
    for i, x in enumerate(figure.x_values):
        row = [_format_value(x, precision)]
        row.extend(
            _format_value(figure.series[label][i], precision)
            for label in figure.series
        )
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows
        else len(headers[c])
        for c in range(len(headers))
    ]
    out = io.StringIO()
    out.write(f"== {figure.figure_id}: {figure.title} ==\n")
    for note in figure.notes:
        out.write(f"   ({note})\n")
    out.write(
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)) + "\n"
    )
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in rows:
        out.write(
            "  ".join(v.rjust(w) for v, w in zip(row, widths)) + "\n"
        )
    return out.getvalue()


def format_execution_summary(stats) -> str:
    """One-line report of a sweep execution.

    *stats* is an :class:`~repro.experiments.parallel.ExecutionStats`
    (duck-typed to keep this module import-light): wall clock, worker
    count, how many points were simulated vs served from cache.
    """
    parts = [
        f"{stats.total_points} points",
        f"{stats.executed} simulated",
        f"workers {stats.workers}",
        f"wall {stats.wall_seconds:.2f}s",
    ]
    events = getattr(stats, "events_processed", 0)
    if events and stats.wall_seconds > 0:
        parts.append(
            f"{events} events "
            f"({events / stats.wall_seconds:,.0f}/s)"
        )
    if stats.cache_hits or stats.cache_misses:
        parts.append(
            f"cache {stats.cache_hits} hit"
            f"{'' if stats.cache_hits == 1 else 's'} / "
            f"{stats.cache_misses} miss"
            f"{'' if stats.cache_misses == 1 else 'es'}"
        )
    failed = getattr(stats, "failed", 0)
    if failed:
        parts.append(f"{failed} FAILED")
    for attr, label in (
        ("timeouts", "timeouts"),
        ("crashes", "crashes"),
        ("retried", "retried"),
        ("pool_rebuilds", "pool rebuilds"),
    ):
        count = getattr(stats, attr, 0)
        if count:
            parts.append(f"{count} {label}")
    return ", ".join(parts)


def to_csv(figure: FigureData) -> str:
    """Render *figure* as CSV (header row + one row per x value)."""
    headers = [figure.x_label] + list(figure.series)
    lines = [",".join(headers)]
    for i, x in enumerate(figure.x_values):
        cells = [repr(float(x))]
        for label in figure.series:
            value = figure.series[label][i]
            cells.append("" if value is None else repr(float(value)))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"
