"""Extension experiments beyond the paper's evaluation.

The paper's future work lists "more NoC nodes, specific traffic
patterns originated by common applications, and analysis of routing
protocols and additional NoC topologies".  This module covers:

* :func:`extension_torus_comparison` — the 2D torus joining the
  Ring/Spidergon/Mesh comparison under uniform and bit-complement
  traffic;
* :func:`extension_traffic_patterns` — all implemented synthetic
  patterns on the three paper topologies;
* :func:`extension_large_networks` — the figure 10 comparison pushed
  to larger node counts than the paper simulates;
* :func:`replicate` — multi-seed replication with confidence
  intervals, quantifying the stochastic variability the paper
  mentions when validating figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import FigureData
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.stats import RunResult, confidence_interval
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    TorusTopology,
)
from repro.traffic import (
    BitComplementTraffic,
    NearestNeighborTraffic,
    TornadoTraffic,
    UniformTraffic,
)


@dataclass(frozen=True, slots=True)
class Replication:
    """Mean and 95% CI of a metric across independent seeds."""

    metric: str
    mean: float
    half_width: float
    samples: tuple[float, ...]

    @property
    def relative_error(self) -> float:
        """CI half-width as a fraction of the mean (0 when mean=0)."""
        if self.mean == 0:
            return 0.0
        return self.half_width / abs(self.mean)


def replicate(
    topology_factory,
    pattern_factory,
    injection_rate: float,
    settings: SimulationSettings,
    seeds=(1, 2, 3, 4, 5),
    metric: str = "throughput",
) -> Replication:
    """Run one configuration under several seeds and summarise.

    Args:
        topology_factory: Zero-argument callable building a fresh
            topology per run (topologies are cheap; networks are
            single-use).
        pattern_factory: Callable mapping a topology to its pattern.
        injection_rate: Offered load per source, flits/cycle.
        settings: Run-length parameters (the seed field is ignored).
        seeds: Independent root seeds.
        metric: RunResult attribute to aggregate.

    Raises:
        ValueError: with fewer than two seeds (no CI), or if the
            metric is missing/None in any run.
    """
    if len(seeds) < 2:
        raise ValueError("replication needs at least 2 seeds")
    samples = []
    for seed in seeds:
        topology = topology_factory()
        run_settings = SimulationSettings(
            cycles=settings.cycles,
            warmup=settings.warmup,
            config=settings.config,
            seed=seed,
        )
        result = run_simulation(
            topology,
            pattern_factory(topology),
            injection_rate,
            run_settings,
        )
        value = getattr(result, metric)
        if value is None:
            raise ValueError(
                f"metric {metric!r} is None for seed {seed}"
            )
        samples.append(float(value))
    center, half_width = confidence_interval(samples)
    return Replication(metric, center, half_width, tuple(samples))


def extension_torus_comparison(
    settings: SimulationSettings | None = None,
    rows: int = 4,
    cols: int = 4,
    rates=(0.1, 0.3, 0.5, 0.7),
) -> FigureData:
    """Torus vs Mesh vs Spidergon vs Ring, uniform traffic."""
    settings = settings or SimulationSettings()
    n = rows * cols
    figure = FigureData(
        "ext-torus",
        f"Uniform-traffic throughput with the torus extension "
        f"(N={n})",
        "lambda",
        list(rates),
    )
    candidates = [RingTopology(n)]
    if n % 2 == 0:
        candidates.append(SpidergonTopology(n))
    candidates.append(MeshTopology(rows, cols))
    candidates.append(TorusTopology(rows, cols))
    for topology in candidates:
        values = []
        for rate in rates:
            result = run_simulation(
                topology, UniformTraffic(topology), rate, settings
            )
            values.append(result.throughput)
        figure.add_series(topology.name, values)
    figure.notes.append(
        "torus = mesh + wraparound; constant degree 4, vertex "
        "symmetric like the Spidergon"
    )
    return figure


def extension_traffic_patterns(
    settings: SimulationSettings | None = None,
    num_nodes: int = 16,
    injection_rate: float = 0.25,
) -> FigureData:
    """Throughput of each synthetic pattern on the paper topologies.

    The x-axis indexes the pattern list; see the notes for labels.
    """
    settings = settings or SimulationSettings()
    pattern_factories = [
        ("uniform", UniformTraffic),
        ("tornado", TornadoTraffic),
        ("bit-complement", BitComplementTraffic),
        ("nearest-neighbor", NearestNeighborTraffic),
    ]
    figure = FigureData(
        "ext-patterns",
        f"Throughput by traffic pattern (N={num_nodes}, lambda="
        f"{injection_rate})",
        "pattern#",
        list(range(len(pattern_factories))),
    )
    for topology in (
        RingTopology(num_nodes),
        SpidergonTopology(num_nodes),
        MeshTopology.factorized(num_nodes),
    ):
        values = []
        for _, factory in pattern_factories:
            result = run_simulation(
                topology, factory(topology), injection_rate, settings
            )
            values.append(result.throughput)
        figure.add_series(topology.name, values)
    figure.notes.append(
        "patterns: "
        + ", ".join(
            f"{i}={name}" for i, (name, _) in enumerate(pattern_factories)
        )
    )
    return figure


def extension_fault_tolerance(
    settings: SimulationSettings | None = None,
    rows: int = 4,
    cols: int = 4,
    fault_counts=(0, 2, 4, 8),
    injection_rate: float = 0.1,
    seed: int = 5,
) -> FigureData:
    """Graceful degradation of a torus under random link faults.

    Table routing detours around dead links; below saturation the
    network keeps delivering while mean hop count and latency grow
    with damage — the irregular-topology robustness story extended
    to in-field faults.
    """
    from repro.routing import TableRouting
    from repro.topology import TorusTopology
    from repro.topology.faults import FaultyTopology

    settings = settings or SimulationSettings()
    figure = FigureData(
        "ext-faults",
        f"Torus{rows}x{cols} under random link faults "
        f"(uniform traffic, lambda={injection_rate})",
        "failed links",
        list(fault_counts),
    )
    throughputs: list[float | None] = []
    latencies: list[float | None] = []
    hops: list[float | None] = []
    for count in fault_counts:
        base = TorusTopology(rows, cols)
        topology = (
            base
            if count == 0
            else FaultyTopology.with_random_faults(base, count, seed)
        )
        result = run_simulation(
            topology,
            UniformTraffic(topology),
            injection_rate,
            settings,
            routing=TableRouting(topology),
        )
        throughputs.append(result.throughput)
        latencies.append(result.avg_latency)
        hops.append(result.avg_hops)
    figure.add_series("throughput", throughputs)
    figure.add_series("latency", latencies)
    figure.add_series("hops", hops)
    figure.notes.append(
        "faults picked at random, retried to keep the network "
        "connected; table routing detours around them"
    )
    return figure


def extension_large_networks(
    settings: SimulationSettings | None = None,
    node_counts=(32, 48, 64),
    injection_rate: float = 0.3,
) -> FigureData:
    """Figure 10's comparison at node counts beyond the paper's 32."""
    settings = settings or SimulationSettings()
    figure = FigureData(
        "ext-large",
        f"Uniform-traffic throughput at larger N (lambda="
        f"{injection_rate})",
        "N",
        list(node_counts),
    )
    ring_values, spider_values, mesh_values = [], [], []
    for n in node_counts:
        for topology, values in (
            (RingTopology(n), ring_values),
            (SpidergonTopology(n), spider_values),
            (MeshTopology.factorized(n), mesh_values),
        ):
            result = run_simulation(
                topology, UniformTraffic(topology), injection_rate,
                settings,
            )
            values.append(result.throughput)
    figure.add_series("ring", ring_values)
    figure.add_series("spidergon", spider_values)
    figure.add_series("real-mesh", mesh_values)
    figure.notes.append(
        "paper future work: 'extension of the analysis and "
        "simulation with more NoC nodes'"
    )
    return figure
