"""Single-run and sweep execution helpers."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.resilience.plan import FaultPlan
from repro.routing.base import RoutingAlgorithm
from repro.stats.summary import RunResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern, TrafficSpec


@dataclass(frozen=True, slots=True)
class SimulationSettings:
    """Run-length and model parameters shared across a sweep.

    The defaults are sized so a full figure regenerates in minutes on
    a laptop while keeping the post-warmup window long enough for
    stable throughput estimates (the paper's qualitative shapes are
    insensitive to the exact horizon).

    Attributes:
        cycles: Total simulated cycles per run.
        warmup: Cycles excluded from measurement.
        config: NoC model parameters.
        seed: Root seed; each source derives its own stream.
        timeline_window: When set, every run collects a per-link
            utilization timeline with this window width (cycles) and
            exports it as ``result.extra["timeline"]``.  Part of the
            settings — rather than an execution flag — so the sweep
            cache key covers it and worker processes produce the
            identical export a serial run would.
        fault_plan: Optional schedule of runtime link failures and
            repairs, executed by a
            :class:`~repro.resilience.FaultInjector`.  Like the seed,
            the plan is part of the point's identity: it is hashed
            into the sweep cache key and replays identically under
            serial, parallel, or resumed execution.
        stall_cycles: When set, attach a
            :class:`~repro.resilience.StallWatchdog` that aborts the
            run (``degraded=True`` + ``extra["stall"]`` snapshot)
            after this many cycles without a consumed flit.
        invariant_check_interval: When non-zero, run the full
            :class:`~repro.noc.invariants.InvariantChecker` suite
            every this many cycles during the run (0 = off; audits
            are O(model state) each).
        engine: Simulation engine name (``"wheel"``, ``"heap"`` or
            ``"batched"`` — see :func:`repro.sim.available_engines`
            and docs/engines.md).  Part of the settings so campaign
            manifests and sweep cache keys record which engine
            produced a result; every engine yields byte-identical
            ``RunResult``s, so cached results stay valid across
            engine switches only if the key distinguishes them
            explicitly — which this field guarantees.
        link_delay: **Deprecated.** Global link-latency multiplier,
            folded into ``config.link_delay`` for back compatibility.
            It can only retime *every* link at once; per-link timing
            (TSV penalties, slow chords) belongs to the topology via
            :meth:`~repro.topology.base.Topology.link_attrs` — see
            docs/timing_model.md for the migration.
    """

    cycles: int = 20_000
    warmup: int = 4_000
    config: NocConfig = NocConfig(source_queue_packets=64)
    seed: int = 1
    timeline_window: int | None = None
    fault_plan: FaultPlan | None = None
    stall_cycles: int | None = None
    invariant_check_interval: int = 0
    engine: str = "wheel"
    link_delay: int | None = None

    def __post_init__(self) -> None:
        if self.link_delay is not None:
            warnings.warn(
                "SimulationSettings.link_delay is deprecated: it is a "
                "uniform multiplier over every link and cannot express "
                "non-uniform timing; set per-link latencies via "
                "Topology.link_attrs (or NocConfig.link_delay for a "
                "deliberate global scale) — see docs/timing_model.md",
                DeprecationWarning,
                stacklevel=3,
            )
            object.__setattr__(
                self,
                "config",
                replace(self.config, link_delay=self.link_delay),
            )
            # Folded: config.link_delay is the single source of truth
            # from here on (also keeps scaled()/replace() from
            # re-warning on every copy).
            object.__setattr__(self, "link_delay", None)

    def scaled(self, factor: float) -> "SimulationSettings":
        """A copy with run length scaled by *factor* (for quick tests)."""
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return replace(
            self,
            cycles=max(2, int(self.cycles * factor)),
            warmup=int(self.warmup * factor),
        )


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One cell of a sweep, as plain picklable data.

    Workers rebuild the actual topology / pattern objects from the
    spec strings (see :mod:`repro.experiments.specs`), so a point can
    cross a process boundary and be hashed for the result cache.  The
    seed travels *inside* ``settings`` — it belongs to the point's
    coordinates, never to execution order, which is what makes serial
    and parallel sweeps produce identical results.

    Attributes:
        topology: Topology spec string, e.g. ``"spidergon16"``.
        pattern: Traffic spec string, e.g. ``"hotspot:0,8"``.
        rate: Injection rate (flits/cycle/source).
        settings: Full run parameters, including the point's seed.
    """

    topology: str
    pattern: str
    rate: float
    settings: SimulationSettings


def run_simulation(
    topology: Topology,
    pattern: TrafficPattern,
    injection_rate: float,
    settings: SimulationSettings,
    routing: RoutingAlgorithm | None = None,
    observers: Sequence[Callable[[Network], object]] = (),
    profile: bool = False,
) -> RunResult:
    """Build, run and summarise one simulation.

    Args:
        topology / pattern / injection_rate / settings / routing: The
            model, as before.
        observers: Factories called with the built :class:`Network`
            before the run — each typically constructs a
            :class:`repro.obs` observer (they self-register with the
            network's simulator).  Return values are ignored; hold
            your own reference to read the observer afterwards.
        profile: Attach a :class:`~repro.obs.KernelProfiler` and
            store its summary in ``result.extra["kernel"]``.  The
            summary contains wall-clock-derived numbers, so profiled
            results are *not* bit-comparable across machines — leave
            this off for determinism-sensitive sweeps.

    When ``settings.timeline_window`` is set, the exported
    :class:`~repro.stats.utilization.UtilizationTimeline` dict is
    stored in ``result.extra["timeline"]`` (deterministic, and
    identical under serial or parallel execution).
    """
    traffic = TrafficSpec(pattern, injection_rate)
    network = Network(
        topology,
        routing=routing,
        config=settings.config,
        traffic=traffic,
        seed=settings.seed,
        engine=settings.engine,
    )
    timeline_observer = None
    if settings.timeline_window is not None:
        from repro.obs import TimelineObserver

        timeline_observer = TimelineObserver(
            network, window=settings.timeline_window
        )
    profiler = None
    if profile:
        from repro.obs import KernelProfiler

        profiler = KernelProfiler(network.simulator)
    if settings.fault_plan is not None and settings.fault_plan:
        from repro.resilience.injector import FaultInjector

        FaultInjector(network, settings.fault_plan)
    if settings.stall_cycles is not None:
        from repro.resilience.watchdog import StallWatchdog

        StallWatchdog(network, settings.stall_cycles)
    if settings.invariant_check_interval:
        from repro.resilience.auditor import InvariantAuditor

        InvariantAuditor(network, settings.invariant_check_interval)
    for factory in observers:
        factory(network)
    result = network.run(
        cycles=settings.cycles, warmup=settings.warmup
    )
    if timeline_observer is not None:
        result.extra["timeline"] = (
            timeline_observer.timeline().to_dict()
        )
    if profiler is not None:
        result.extra["kernel"] = profiler.summary()
    return result


def sweep_injection_rates(
    topology: Topology,
    pattern: TrafficPattern,
    injection_rates: list[float],
    settings: SimulationSettings,
    routing: RoutingAlgorithm | None = None,
) -> list[RunResult]:
    """One run per injection rate, same topology and pattern."""
    return [
        run_simulation(
            topology, pattern, rate, settings, routing=routing
        )
        for rate in injection_rates
    ]
