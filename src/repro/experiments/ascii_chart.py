"""ASCII line charts for figure data.

matplotlib is not available in the offline environment, so the
harness renders each figure's series as a monospace scatter/line
chart — enough to eyeball the crossovers and saturation knees the
paper's conclusions rest on.  Each series gets a marker character;
colliding points show the marker of the later series.

Example output (figure 10, throughput vs lambda)::

    8.06 |                                                      m
         |                                         m
         |
    4.03 |                           s  m  s       s            s
         |              m  s
    0.00 | r  ...
         +---------------------------------------------------------
           0.05        0.1         0.2         0.3   ...
"""

from __future__ import annotations

import io

from repro.experiments.report import FigureData

#: Marker characters assigned to series in declaration order.
MARKERS = "oxs*+#@%&123456789"


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high == low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, round(position * (size - 1))))


def render_chart(
    figure: FigureData, width: int = 68, height: int = 18
) -> str:
    """Render *figure* as an ASCII chart with a legend.

    Args:
        figure: The data to draw.
        width: Plot-area columns (>= 16).
        height: Plot-area rows (>= 6).

    Raises:
        ValueError: if the figure has no series or no finite points,
            or the geometry is too small to draw.
    """
    if width < 16 or height < 6:
        raise ValueError(
            f"chart needs width >= 16 and height >= 6, got "
            f"{width}x{height}"
        )
    if not figure.series:
        raise ValueError(f"figure {figure.figure_id} has no series")
    xs = [float(x) for x in figure.x_values]
    ys = [
        float(v)
        for values in figure.series.values()
        for v in values
        if v is not None
    ]
    if not xs or not ys:
        raise ValueError(
            f"figure {figure.figure_id} has no drawable points"
        )
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(figure.series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, value in zip(xs, values):
            if value is None:
                continue
            col = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(
                float(value), y_low, y_high, height
            )
            grid[row][col] = marker
    out = io.StringIO()
    out.write(f"{figure.figure_id}: {figure.title}\n")
    label_width = 10
    for row_index, row in enumerate(grid):
        if row_index == 0:
            axis_label = f"{y_high:.3g}"
        elif row_index == height - 1:
            axis_label = f"{y_low:.3g}"
        elif row_index == (height - 1) // 2:
            axis_label = f"{(y_low + y_high) / 2:.3g}"
        else:
            axis_label = ""
        out.write(
            f"{axis_label:>{label_width}} |" + "".join(row) + "\n"
        )
    out.write(" " * label_width + " +" + "-" * width + "\n")
    x_axis = (
        f"{x_low:.3g}".ljust(width - 8) + f"{x_high:.3g}".rjust(8)
    )
    out.write(" " * (label_width + 2) + x_axis + "\n")
    out.write(" " * (label_width + 2) + f"{figure.x_label}\n")
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} = {label}"
        for i, label in enumerate(figure.series)
    )
    out.write(f"legend: {legend}\n")
    return out.getvalue()
