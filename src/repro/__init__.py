"""repro — reproduction of "Simulation and Analysis of Network on Chip
Architectures: Ring, Spidergon and 2D Mesh" (Bononi & Concer, DATE 2006).

The package compares the Ring, Spidergon and 2D Mesh NoC topologies
both analytically (network diameter and average distance closed forms,
:mod:`repro.analysis`) and by flit-level wormhole simulation
(:mod:`repro.noc` on top of the discrete-event kernel in
:mod:`repro.sim`), under the paper's hot-spot and homogeneous traffic
scenarios (:mod:`repro.traffic`).

Quickstart::

    from repro import (
        Network, NocConfig, SpidergonTopology, TrafficSpec,
        UniformTraffic,
    )

    topology = SpidergonTopology(16)
    traffic = TrafficSpec(UniformTraffic(topology), injection_rate=0.2)
    result = Network(topology, traffic=traffic, seed=1).run(
        cycles=20_000, warmup=5_000
    )
    print(result.throughput, result.avg_latency)

Or drive it from spec strings, the way the sweep machinery does::

    from repro import (
        SimulationSettings, parse_pattern, parse_topology,
        run_simulation,
    )

    topology = parse_topology("spidergon16")
    pattern = parse_pattern("hotspot:0", topology)
    result = run_simulation(
        topology, pattern, 0.2, SimulationSettings(cycles=20_000)
    )

Observability — per-link utilization timelines, flit-lifecycle traces
and kernel profiles — lives in :mod:`repro.obs`, built on the kernel
observer protocol (:class:`Observer`); the key entry points are
re-exported here (:class:`TimelineObserver`, :class:`FlitTracer`,
:class:`KernelProfiler`, :class:`TraceSink`).

Resilience — runtime link-fault injection (:class:`FaultPlan`,
:class:`FaultInjector`), stall detection (:class:`StallWatchdog`),
DRAIN-style deadlock recovery for the adaptive routing algorithms
(:class:`DrainController`, :func:`drain_ring`), periodic invariant
audits (:class:`InvariantAuditor`) and the crash-tolerant campaign
executor (:class:`FailedResult`, :class:`CampaignManifest`) — lives
in :mod:`repro.resilience` and :mod:`repro.experiments.parallel`;
see ``docs/resilience.md``.

Serving — the asyncio campaign server behind ``python -m repro
serve`` (content-addressed :class:`ResultStore`, single-flight job
coalescing, chunked-JSONL progress streams) and its stdlib client
(:class:`ServeClient`, ``python -m repro submit``) — lives in
:mod:`repro.serve`; see ``docs/serving.md``.
"""

from repro.experiments.campaign import Campaign, campaign_points
from repro.experiments.parallel import CampaignManifest, FailedResult
from repro.experiments.runner import (
    SimulationSettings,
    run_simulation,
    sweep_injection_rates,
)
from repro.experiments.specs import parse_pattern, parse_topology
from repro.noc import Network, NocConfig, Packet
from repro.obs import (
    FlitTracer,
    KernelProfiler,
    TimelineObserver,
    TraceSink,
    UtilizationTimeline,
)
from repro.resilience import (
    DrainController,
    DrainError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    InvariantAuditor,
    StallWatchdog,
    drain_ring,
)
from repro.serve.client import ServeClient
from repro.serve.store import ResultStore
from repro.routing import (
    CirculantTableRouting,
    MeshXYRouting,
    MinimalAdaptiveRouting,
    MisrouteAdaptiveRouting,
    MultiplicativeCirculantRouting,
    RingShortestRouting,
    SpidergonAcrossFirstRouting,
    TableRouting,
    routing_for,
)
from repro.sim import EventTracer, Observer, Simulator
from repro.stats import RunResult, detect_saturation_point
from repro.topology import (
    CirculantTopology,
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    Topology,
    average_distance,
    diameter,
)
from repro.traffic import (
    HotspotTraffic,
    TrafficSpec,
    UniformTraffic,
    double_hotspot_targets,
)

__version__ = "1.0.0"

__all__ = [
    "Campaign",
    "CampaignManifest",
    "CirculantTableRouting",
    "CirculantTopology",
    "DrainController",
    "DrainError",
    "EventTracer",
    "FailedResult",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FlitTracer",
    "HotspotTraffic",
    "InvariantAuditor",
    "KernelProfiler",
    "MeshTopology",
    "MeshXYRouting",
    "MinimalAdaptiveRouting",
    "MisrouteAdaptiveRouting",
    "MultiplicativeCirculantRouting",
    "Network",
    "NocConfig",
    "Observer",
    "Packet",
    "ResultStore",
    "RingShortestRouting",
    "RingTopology",
    "RunResult",
    "ServeClient",
    "SimulationSettings",
    "Simulator",
    "SpidergonAcrossFirstRouting",
    "SpidergonTopology",
    "StallWatchdog",
    "TableRouting",
    "TimelineObserver",
    "Topology",
    "TraceSink",
    "TrafficSpec",
    "UniformTraffic",
    "UtilizationTimeline",
    "average_distance",
    "campaign_points",
    "detect_saturation_point",
    "diameter",
    "double_hotspot_targets",
    "drain_ring",
    "parse_pattern",
    "parse_topology",
    "routing_for",
    "run_simulation",
    "sweep_injection_rates",
    "__version__",
]
