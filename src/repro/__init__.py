"""repro — reproduction of "Simulation and Analysis of Network on Chip
Architectures: Ring, Spidergon and 2D Mesh" (Bononi & Concer, DATE 2006).

The package compares the Ring, Spidergon and 2D Mesh NoC topologies
both analytically (network diameter and average distance closed forms,
:mod:`repro.analysis`) and by flit-level wormhole simulation
(:mod:`repro.noc` on top of the discrete-event kernel in
:mod:`repro.sim`), under the paper's hot-spot and homogeneous traffic
scenarios (:mod:`repro.traffic`).

Quickstart::

    from repro import (
        Network, NocConfig, SpidergonTopology, TrafficSpec,
        UniformTraffic,
    )

    topology = SpidergonTopology(16)
    traffic = TrafficSpec(UniformTraffic(topology), injection_rate=0.2)
    result = Network(topology, traffic=traffic, seed=1).run(
        cycles=20_000, warmup=5_000
    )
    print(result.throughput, result.avg_latency)
"""

from repro.noc import Network, NocConfig, Packet
from repro.routing import (
    MeshXYRouting,
    RingShortestRouting,
    SpidergonAcrossFirstRouting,
    TableRouting,
    routing_for,
)
from repro.stats import RunResult
from repro.topology import (
    MeshTopology,
    RingTopology,
    SpidergonTopology,
    Topology,
    average_distance,
    diameter,
)
from repro.traffic import (
    HotspotTraffic,
    TrafficSpec,
    UniformTraffic,
    double_hotspot_targets,
)

__version__ = "1.0.0"

__all__ = [
    "HotspotTraffic",
    "MeshTopology",
    "MeshXYRouting",
    "Network",
    "NocConfig",
    "Packet",
    "RingShortestRouting",
    "RingTopology",
    "RunResult",
    "SpidergonAcrossFirstRouting",
    "SpidergonTopology",
    "TableRouting",
    "Topology",
    "TrafficSpec",
    "UniformTraffic",
    "average_distance",
    "diameter",
    "double_hotspot_targets",
    "routing_for",
    "__version__",
]
