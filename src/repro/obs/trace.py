"""Flit-lifecycle tracing: streaming, bounded JSONL.

A :class:`FlitTracer` watches the kernel and emits one JSON record
per lifecycle step of every flit — ``generate`` → ``inject`` →
``hop`` (per link traversal) → ``consume`` — through a
:class:`TraceSink`.  The sink is bounded (drops, and counts, records
past its limit) and free when disabled: a disabled sink makes every
``write`` a cheap early return, and with no tracer registered the
kernel pays nothing at all.

Record schema (one JSON object per line; field order not significant):

========  ==========================================================
field     meaning
========  ==========================================================
type      ``"flit"`` for lifecycle records (the CLI adds ``"meta"``,
          ``"link"``, ``"timeline"`` and ``"summary"`` records)
ev        ``generate`` | ``inject`` | ``hop`` | ``consume`` |
          ``drain``
t         simulation cycle of the step
pkt       packet id
flit      flit index within the packet (0 = head)
src, dst  packet endpoints
node      node where the step happened (absent on ``generate``)
vc        wire virtual channel (absent on ``generate``)
from      upstream node (``hop`` and ``drain`` only)
port      upstream output-port name (``hop`` only)
kind      ``pull`` | ``send`` (``drain`` only): lane-to-queue move
          inside ``node`` (``from == node``) or a forced traversal
          of the drain-loop link ``from -> node``
========  ==========================================================

``generate`` is emitted when the head flit is injected, stamped with
the packet's creation cycle — so a packet that dies in a saturated IP
memory without ever injecting leaves no trace records.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import TextIO

from repro.noc.signals import FlitMessage
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.observers import Observer


class TraceSink:
    """A bounded JSONL record writer.

    Args:
        stream: Text stream the records are written to; ``None``
            creates a disabled sink (every write is a no-op).
        limit: Maximum records written; further writes are counted in
            :attr:`records_dropped`.  ``None`` means unbounded.

    The sink is a context manager; :meth:`close` closes the stream
    only when the sink opened it itself (:meth:`to_path`).
    """

    def __init__(
        self,
        stream: TextIO | None,
        limit: int | None = None,
    ) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1 or None, got {limit}")
        self._stream = stream
        self._owns_stream = False
        self.limit = limit
        self.records_written = 0
        self.records_dropped = 0

    @classmethod
    def to_path(
        cls, path: str | pathlib.Path, limit: int | None = None
    ) -> "TraceSink":
        """A sink writing to *path* (created/truncated, closed by
        :meth:`close`)."""
        sink = cls(open(path, "w", encoding="utf-8"), limit=limit)
        sink._owns_stream = True
        return sink

    @classmethod
    def in_memory(cls, limit: int | None = None) -> "TraceSink":
        """A sink writing to an internal buffer (see :meth:`text`)."""
        return cls(io.StringIO(), limit=limit)

    @classmethod
    def disabled(cls) -> "TraceSink":
        """A sink that drops everything for free."""
        return cls(None)

    @property
    def enabled(self) -> bool:
        """Whether writes reach the stream.

        Producers with per-record cost beyond the ``write`` call
        itself (string formatting, dict building) should check this
        first — the zero-cost-when-disabled contract.
        """
        return self._stream is not None

    def write(self, record: dict) -> bool:
        """Write *record* as one JSONL line.

        Returns:
            True if the record reached the stream; False if the sink
            is disabled or the limit dropped it.
        """
        if self._stream is None:
            return False
        if (
            self.limit is not None
            and self.records_written >= self.limit
        ):
            self.records_dropped += 1
            return False
        self._stream.write(
            json.dumps(record, separators=(",", ":")) + "\n"
        )
        self.records_written += 1
        return True

    def text(self) -> str:
        """The buffered output of an :meth:`in_memory` sink.

        Raises:
            TypeError: for sinks not backed by an in-memory buffer.
        """
        if not isinstance(self._stream, io.StringIO):
            raise TypeError("text() requires an in_memory sink")
        return self._stream.getvalue()

    def close(self) -> None:
        """Flush, and close the stream if this sink opened it."""
        if self._stream is None:
            return
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FlitTracer(Observer):
    """Emits flit-lifecycle records for every flit of a network run.

    Args:
        network: The network to trace; the tracer registers itself
            with ``network.simulator`` immediately.
        sink: Destination for the records.  A disabled sink reduces
            the tracer to one ``isinstance`` check per event.
    """

    def __init__(self, network, sink: TraceSink) -> None:
        self.network = network
        self.sink = sink
        # arrival gate -> classification of the delivery.
        self._hop_of_gate: dict = {}
        self._inject_of_gate: dict = {}
        self._consume_of_gate: dict = {}
        for node, port_name, dst, gate in network.link_arrival_gates():
            self._hop_of_gate[gate] = (node, port_name, dst)
        for ni in network.interfaces:
            injection_gate = ni.data_out.peer
            if injection_gate is not None:
                self._inject_of_gate[injection_gate] = ni.node
            self._consume_of_gate[ni.data_in] = ni.node
        self._attached = True
        network.simulator.add_observer(self)
        network.add_drain_listener(self._on_drain_move)

    def _on_drain_move(
        self, kind: str, flit, src: int, dst: int, vc: int
    ) -> None:
        """Record a forced drain-recovery move (see module schema)."""
        if not self._attached or not self.sink.enabled:
            return
        packet = flit.packet
        self.sink.write(
            {
                "type": "flit",
                "ev": "drain",
                "t": self.network.simulator.now,
                "pkt": packet.packet_id,
                "flit": flit.index,
                "src": packet.src,
                "dst": packet.dst,
                "vc": vc,
                "node": dst,
                "from": src,
                "kind": kind,
            }
        )

    def detach(self) -> None:
        """Stop tracing (idempotent); the sink stays open."""
        if self._attached:
            self.network.simulator.remove_observer(self)
            self._attached = False

    def on_event_delivered(
        self, simulator: Simulator, event: Event
    ) -> None:
        message = event.message
        if not isinstance(message, FlitMessage):
            return
        sink = self.sink
        if not sink.enabled:
            return
        gate = message.arrival_gate
        flit = message.flit
        packet = flit.packet
        base = {
            "type": "flit",
            "t": event.time,
            "pkt": packet.packet_id,
            "flit": flit.index,
            "src": packet.src,
            "dst": packet.dst,
            "vc": message.wire_vc,
        }
        node = self._consume_of_gate.get(gate)
        if node is not None:
            sink.write({**base, "ev": "consume", "node": node})
            return
        node = self._inject_of_gate.get(gate)
        if node is not None:
            if flit.is_head:
                sink.write(
                    {
                        "type": "flit",
                        "ev": "generate",
                        "t": packet.created_at,
                        "pkt": packet.packet_id,
                        "flit": 0,
                        "src": packet.src,
                        "dst": packet.dst,
                    }
                )
            sink.write({**base, "ev": "inject", "node": node})
            return
        hop = self._hop_of_gate.get(gate)
        if hop is not None:
            upstream, port, downstream = hop
            sink.write(
                {
                    **base,
                    "ev": "hop",
                    "node": downstream,
                    "from": upstream,
                    "port": port,
                }
            )
