"""Observability layer: tracing, timelines and profiling as observers.

Everything in this package is a client of the kernel's observer
protocol (:mod:`repro.sim.observers`): the kernel is never subclassed
or patched, and with nothing attached it runs at full speed.

* :class:`TimelineObserver` — per-link, per-VC utilization and
  per-node buffer-occupancy **timelines** (windowed counters), the
  evidence the paper's congestion analysis rests on: *where and when*
  a hot link saturates, not just that it did.
* :class:`FlitTracer` + :class:`TraceSink` — flit-lifecycle tracing
  (generate → inject → per-hop → consume) streamed as bounded JSONL.
* :class:`KernelProfiler` — events/sec, future-event-set depth and
  per-module event counts of the kernel itself.

Quickstart::

    from repro import Network
    from repro.obs import TimelineObserver

    network = Network(topology, traffic=traffic, seed=1)
    timeline = TimelineObserver(network, window=100)
    network.run(cycles=2_000)
    print(timeline.timeline().heat_table())
"""

from repro.obs.profiling import KernelProfiler
from repro.obs.timeline import TimelineObserver
from repro.obs.trace import FlitTracer, TraceSink
from repro.sim.observers import Observer
from repro.stats.utilization import (
    LinkWindowSeries,
    OccupancySeries,
    UtilizationTimeline,
)

__all__ = [
    "FlitTracer",
    "KernelProfiler",
    "LinkWindowSeries",
    "Observer",
    "OccupancySeries",
    "TimelineObserver",
    "TraceSink",
    "UtilizationTimeline",
]
