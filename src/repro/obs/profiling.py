"""Kernel profiling: what the event loop itself is doing.

A :class:`KernelProfiler` measures the simulation substrate rather
than the model: delivered events per wall-clock second, the deepest
the pending-event heap got, and how deliveries distribute across
modules.  Its :meth:`summary` is what the ``trace`` CLI reports and
what :func:`repro.experiments.runner.run_simulation` stores in
``RunResult.extra["kernel"]`` when profiling is requested.

Wall-clock derived numbers (``wall_seconds``, ``events_per_second``)
are inherently machine- and load-dependent; everything else in the
summary is deterministic for a given simulation.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.observers import Observer


class KernelProfiler(Observer):
    """Counts kernel-level activity of one simulator.

    Args:
        simulator: The simulator to profile; the profiler registers
            itself immediately.
    """

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self.events = 0
        self.max_heap_depth = 0
        self.per_module: Counter[str] = Counter()
        self._wall_start: float | None = None
        self._wall_stop: float | None = None
        self._attached = True
        simulator.add_observer(self)

    def detach(self) -> None:
        """Stop profiling (idempotent); counters stay readable."""
        if self._attached:
            self.simulator.remove_observer(self)
            self._attached = False

    def on_event_delivered(
        self, simulator: Simulator, event: Event
    ) -> None:
        now = time.perf_counter()
        if self._wall_start is None:
            self._wall_start = now
        self._wall_stop = now
        self.events += 1
        depth = simulator.pending_event_count
        if depth > self.max_heap_depth:
            self.max_heap_depth = depth
        target = event.target
        self.per_module[
            target.name if target is not None else "<handler>"
        ] += 1

    @property
    def wall_seconds(self) -> float:
        """Wall-clock span from the first to the last delivery."""
        if self._wall_start is None or self._wall_stop is None:
            return 0.0
        return self._wall_stop - self._wall_start

    @property
    def events_per_second(self) -> float:
        """Delivered events per wall-clock second (0 until 2 events)."""
        wall = self.wall_seconds
        if wall <= 0:
            return 0.0
        return self.events / wall

    def summary(self, top_modules: int = 10) -> dict:
        """JSON-ready profile: events, rate, heap depth, top modules."""
        return {
            "events": self.events,
            "events_per_second": round(self.events_per_second, 1),
            "max_heap_depth": self.max_heap_depth,
            "wall_seconds": round(self.wall_seconds, 6),
            "per_module": dict(
                self.per_module.most_common(top_modules)
            ),
        }
