"""Kernel profiling: what the event loop itself is doing.

A :class:`KernelProfiler` measures the simulation substrate rather
than the model: delivered events per wall-clock second, the deepest
the future-event set got (split into the timing wheel's short-horizon
buckets and its far-future overflow heap — see
:mod:`repro.sim.events`), and how deliveries distribute across
modules.  Its :meth:`summary` is what the ``trace`` CLI reports and
what :func:`repro.experiments.runner.run_simulation` stores in
``RunResult.extra["kernel"]`` when profiling is requested.

Wall-clock derived numbers (``wall_seconds``, ``events_per_second``)
are inherently machine- and load-dependent; everything else in the
summary is deterministic for a given simulation.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.observers import Observer


class KernelProfiler(Observer):
    """Counts kernel-level activity of one simulator.

    Args:
        simulator: The simulator to profile; the profiler registers
            itself immediately.
    """

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self.events = 0
        self.max_pending_events = 0
        self.max_wheel_occupancy = 0
        self.max_overflow_occupancy = 0
        self.per_module: Counter[str] = Counter()
        self._wall_start: float | None = None
        self._wall_stop: float | None = None
        self._attached = True
        simulator.add_observer(self)

    def detach(self) -> None:
        """Stop profiling (idempotent); counters stay readable."""
        if self._attached:
            self.simulator.remove_observer(self)
            self._attached = False

    def on_event_delivered(
        self, simulator: Simulator, event: Event
    ) -> None:
        now = time.perf_counter()
        if self._wall_start is None:
            self._wall_start = now
        self._wall_stop = now
        self.events += 1
        occupancy = simulator.queue_occupancy()
        if occupancy["pending"] > self.max_pending_events:
            self.max_pending_events = occupancy["pending"]
        if occupancy["wheel"] > self.max_wheel_occupancy:
            self.max_wheel_occupancy = occupancy["wheel"]
        if occupancy["overflow"] > self.max_overflow_occupancy:
            self.max_overflow_occupancy = occupancy["overflow"]
        target = event.target
        self.per_module[
            target.name if target is not None else "<handler>"
        ] += 1

    @property
    def wall_seconds(self) -> float:
        """Wall-clock span from the first to the last delivery."""
        if self._wall_start is None or self._wall_stop is None:
            return 0.0
        return self._wall_stop - self._wall_start

    @property
    def events_per_second(self) -> float:
        """Delivered events per wall-clock second (0 until 2 events)."""
        wall = self.wall_seconds
        if wall <= 0:
            return 0.0
        return self.events / wall

    def summary(self, top_modules: int = 10) -> dict:
        """JSON-ready profile: events, rate, queue depths, top
        modules.  ``max_pending_events`` is the peak live-event count;
        the wheel/overflow pair shows which tier of the future-event
        set carried it (on the reference heap queue everything counts
        as overflow)."""
        return {
            "events": self.events,
            "events_per_second": round(self.events_per_second, 1),
            "max_pending_events": self.max_pending_events,
            "max_wheel_occupancy": self.max_wheel_occupancy,
            "max_overflow_occupancy": self.max_overflow_occupancy,
            "wall_seconds": round(self.wall_seconds, 6),
            "per_module": dict(
                self.per_module.most_common(top_modules)
            ),
        }
