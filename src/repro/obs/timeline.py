"""Utilization timelines: windowed per-link traffic, observed live.

A :class:`TimelineObserver` watches a :class:`~repro.noc.network
.Network`'s kernel and buckets every link traversal into fixed-size
time windows, per virtual channel.  It also samples each node's
buffer occupancy (router buffers + IP-memory backlog) as every window
closes.  The result is a :class:`~repro.stats.utilization
.UtilizationTimeline` — plain data that shows congestion forming and
draining over time, which end-of-run aggregates cannot.

The observer is pure kernel-side: it maps each flit delivery to its
link via the arrival gate, so routers and interfaces need no
instrumentation hooks and the model's behaviour is bit-identical with
or without a timeline attached.

Usage::

    network = Network(topology, traffic=traffic, seed=1)
    observer = TimelineObserver(network, window=100)
    network.run(cycles=2_000)
    timeline = observer.timeline()
    print(timeline.heat_table())
"""

from __future__ import annotations

from repro.noc.signals import FlitMessage
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.observers import Observer
from repro.stats.utilization import (
    LinkWindowSeries,
    OccupancySeries,
    UtilizationTimeline,
)


class TimelineObserver(Observer):
    """Accumulates windowed link counters and occupancy samples.

    Args:
        network: The network to observe; the observer registers
            itself with ``network.simulator`` immediately.
        window: Window width in cycles; per-link counts and occupancy
            samples are bucketed by ``time // window``.
        include_local: Also track the ejection links (router -> NI)
            when True; off by default to mirror
            :class:`~repro.stats.utilization.UtilizationReport`.
    """

    def __init__(
        self,
        network,
        window: int = 100,
        include_local: bool = False,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.network = network
        self.window = window
        self.include_local = include_local
        # arrival gate of a link -> (src node, src output port, dst).
        self._link_of_gate: dict = {
            gate: (node, port_name, dst)
            for node, port_name, dst, gate in network.link_arrival_gates(
                include_local=include_local
            )
        }
        # (node, port, dst, vc) -> {window index: flit count}.
        self._counts: dict[tuple[int, str, int, int], dict[int, int]] = {}
        # node -> [(window index, buffered flits)].
        self._occupancy: dict[int, list[tuple[int, int]]] = {
            router.node: [] for router in network.routers
        }
        # Forced drain-recovery moves (deadlock recovery) are not
        # ordinary link deliveries, so they get their own counter
        # instead of polluting the per-link windows.
        self.drain_events = 0
        self._attached = True
        network.simulator.add_observer(self)
        network.add_drain_listener(self._on_drain_move)

    def _on_drain_move(
        self, kind: str, flit, src: int, dst: int, vc: int
    ) -> None:
        if self._attached:
            self.drain_events += 1

    # -- observer hooks -----------------------------------------------

    def on_event_delivered(
        self, simulator: Simulator, event: Event
    ) -> None:
        message = event.message
        if not isinstance(message, FlitMessage):
            return
        link = self._link_of_gate.get(message.arrival_gate)
        if link is None:
            return
        node, port, dst = link
        key = (node, port, dst, message.wire_vc)
        windows = self._counts.setdefault(key, {})
        index = event.time // self.window
        windows[index] = windows.get(index, 0) + 1

    def on_time_advanced(
        self, simulator: Simulator, old_time: int, new_time: int
    ) -> None:
        old_window = old_time // self.window
        new_window = new_time // self.window
        if new_window <= old_window:
            return
        # Sample once per closed window.  During an idle gap nothing
        # moves, so the same sample stands for every skipped window.
        flits_in_flight = {
            router.node: router.total_buffered_flits()
            + self.network.interfaces[router.node].backlog_packets
            * self.network.config.packet_size_flits
            for router in self.network.routers
        }
        for index in range(old_window, new_window):
            for node, flits in flits_in_flight.items():
                self._occupancy[node].append((index, flits))

    # -- lifecycle ----------------------------------------------------

    def detach(self) -> None:
        """Stop observing (idempotent); collected data stays readable."""
        if self._attached:
            self.network.simulator.remove_observer(self)
            self._attached = False

    # -- export -------------------------------------------------------

    def timeline(self, cycles: int | None = None) -> UtilizationTimeline:
        """Freeze the counters into a :class:`UtilizationTimeline`.

        Args:
            cycles: Horizon the timeline covers; defaults to the
                network's completed run length (falling back to the
                simulator clock for partial runs).
        """
        if cycles is None:
            cycles = (
                self.network.cycles_run
                or self.network.simulator.now
            )
        if cycles < 1:
            raise ValueError(
                "timeline of an unstarted simulation (cycles < 1)"
            )
        num_windows = -(-cycles // self.window)
        links = []
        for key in sorted(self._counts):
            node, port, dst, vc = key
            windows = self._counts[key]
            attrs = self.network.link_attrs_of(node, port)
            links.append(
                LinkWindowSeries(
                    node=node,
                    port=port,
                    dst=dst,
                    vc=vc,
                    counts=tuple(
                        windows.get(index, 0)
                        for index in range(num_windows)
                    ),
                    kind=attrs.kind,
                    latency=attrs.latency,
                )
            )
        occupancy = tuple(
            OccupancySeries(
                node=node,
                samples=tuple(self._occupancy[node]),
            )
            for node in sorted(self._occupancy)
        )
        return UtilizationTimeline(
            window=self.window,
            cycles=cycles,
            links=tuple(links),
            occupancy=occupancy,
        )
