"""NoC topology library.

Provides the three topology families compared in the paper —
:class:`~repro.topology.ring.RingTopology`,
:class:`~repro.topology.spidergon.SpidergonTopology` and
:class:`~repro.topology.mesh.MeshTopology` (ideal, factorized and
irregular variants) — plus the extension families (torus, hypercube,
the circulant rings ``C(N; 1, s)`` generalizing both Ring and
Spidergon, and the 3D mesh/torus with TSV vertical links), on top of
a small dependency-free graph type with BFS-based shortest-path
metrics.  Links carry per-link attributes (latency, width, kind) via
:class:`~repro.topology.base.LinkAttrs` and the
:meth:`~repro.topology.base.Topology.link_attrs` hook.
"""

from repro.topology.base import (
    Link,
    LinkAttrs,
    Topology,
    TopologyError,
)
from repro.topology.circulant import CirculantTopology
from repro.topology.faults import FaultyTopology
from repro.topology.graph import Graph
from repro.topology.mesh import MeshTopology, best_factorization
from repro.topology.mesh3d import Mesh3DTopology, Torus3DTopology
from repro.topology.metrics import (
    all_pairs_distances,
    average_distance,
    diameter,
    distance_histogram,
    per_node_distance_sum,
)
from repro.topology.hypercube import HypercubeTopology
from repro.topology.ring import RingTopology
from repro.topology.spidergon import SpidergonTopology
from repro.topology.torus import TorusTopology

__all__ = [
    "CirculantTopology",
    "FaultyTopology",
    "Graph",
    "HypercubeTopology",
    "Link",
    "LinkAttrs",
    "Mesh3DTopology",
    "MeshTopology",
    "RingTopology",
    "Torus3DTopology",
    "SpidergonTopology",
    "Topology",
    "TopologyError",
    "TorusTopology",
    "all_pairs_distances",
    "average_distance",
    "best_factorization",
    "diameter",
    "distance_histogram",
    "per_node_distance_sum",
]
