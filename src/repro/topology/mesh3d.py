"""3D mesh and torus topologies with TSV vertical links.

The paper's three architectures are planar; stacked dies add a third
dimension whose vertical hops ride through-silicon vias (TSVs) —
physically short but electrically distinct channels, so their latency
and width are *first-class link attributes* rather than more of the
same wire.  Both topologies here assign ``kind="tsv"`` with a
configurable latency/width to every ``up``/``down`` link via the
:meth:`~repro.topology.base.Topology.link_attrs` hook; with the
default ``tsv_latency=1`` they degenerate to the uniform-link model
byte-for-byte (the regression suite pins this).

Nodes are addressed ``(x, y, z)`` — x varies fastest, z is the layer
index — and port names extend the 2D mesh compass: ``east``/``west``
move along x, ``south``/``north`` along y, ``up``/``down`` along z
(``up`` = higher layer).
"""

from __future__ import annotations

from repro.topology.base import (
    TSV,
    LinkAttrs,
    Topology,
    TopologyError,
)
from repro.topology.mesh import EAST, NORTH, SOUTH, WEST

UP = "up"
DOWN = "down"

#: (port, coordinate axis, direction) in dimension order x, y, z.
_PORT_STEPS = (
    (EAST, 0, 1),
    (WEST, 0, -1),
    (SOUTH, 1, 1),
    (NORTH, 1, -1),
    (UP, 2, 1),
    (DOWN, 2, -1),
)


class _Grid3DTopology(Topology):
    """Shared coordinate machinery of the 3D grid families."""

    def __init__(
        self,
        size_x: int,
        size_y: int,
        size_z: int,
        name: str,
        tsv_latency: int = 1,
        tsv_width: float = 1.0,
    ) -> None:
        if size_z < 2:
            raise TopologyError(
                f"a 3D topology needs >= 2 layers, got {size_z} "
                "(use MeshTopology/TorusTopology for planar designs)"
            )
        if tsv_latency >= 2:
            name = f"{name}@tsv{tsv_latency}"
        super().__init__(size_x * size_y * size_z, name)
        self.size_x = size_x
        self.size_y = size_y
        self.size_z = size_z
        self._tsv_attrs = LinkAttrs(
            latency=tsv_latency, width=tsv_width, kind=TSV
        )

    @property
    def sizes(self) -> tuple[int, int, int]:
        """Dimension extents ``(X, Y, Z)``."""
        return (self.size_x, self.size_y, self.size_z)

    @property
    def tsv_latency(self) -> int:
        """Traversal time of every vertical (TSV) link, in cycles."""
        return self._tsv_attrs.latency

    @property
    def tsv_width(self) -> float:
        """Width of every vertical (TSV) link, relative to planar."""
        return self._tsv_attrs.width

    def coordinates(self, node: int) -> tuple[int, int, int]:
        """Grid position ``(x, y, z)`` of *node*."""
        self.check_node(node)
        x = node % self.size_x
        y = (node // self.size_x) % self.size_y
        z = node // (self.size_x * self.size_y)
        return (x, y, z)

    def node_at(self, x: int, y: int, z: int) -> int:
        """Node id at ``(x, y, z)``.

        Raises:
            TopologyError: if the position is outside the grid.
        """
        if not (
            0 <= x < self.size_x
            and 0 <= y < self.size_y
            and 0 <= z < self.size_z
        ):
            raise TopologyError(
                f"{self.name}: no node at ({x}, {y}, {z})"
            )
        return (z * self.size_y + y) * self.size_x + x

    def link_attrs(self, src: int, port: str) -> LinkAttrs:
        if port in (UP, DOWN):
            return self._tsv_attrs
        return super().link_attrs(src, port)


class Mesh3DTopology(_Grid3DTopology):
    """An ``X x Y x Z`` 3D mesh; vertical links are TSVs.

    Args:
        size_x / size_y / size_z: Grid extents; ``size_z >= 2`` (a
            single layer is a plain 2D mesh), planar extents >= 1.
        tsv_latency: Traversal cycles of every vertical link (>= 1;
            1 reproduces the uniform-link model exactly).
        tsv_width: Vertical channel width relative to a planar link
            (cost-model input only).
    """

    def __init__(
        self,
        size_x: int,
        size_y: int,
        size_z: int,
        tsv_latency: int = 1,
        tsv_width: float = 1.0,
    ) -> None:
        if size_x < 1 or size_y < 1:
            raise TopologyError(
                f"mesh3d planar extents must be >= 1, got "
                f"{size_x}x{size_y}"
            )
        super().__init__(
            size_x,
            size_y,
            size_z,
            f"mesh3d{size_x}x{size_y}x{size_z}",
            tsv_latency,
            tsv_width,
        )

    @classmethod
    def cube(
        cls, side: int, tsv_latency: int = 1, tsv_width: float = 1.0
    ) -> "Mesh3DTopology":
        """The symmetric ``side x side x side`` mesh."""
        return cls(side, side, side, tsv_latency, tsv_width)

    def out_ports(self, node: int) -> dict[str, int]:
        position = self.coordinates(node)
        sizes = self.sizes
        ports = {}
        for port, axis, step in _PORT_STEPS:
            coordinate = position[axis] + step
            if 0 <= coordinate < sizes[axis]:
                moved = list(position)
                moved[axis] = coordinate
                ports[port] = self.node_at(*moved)
        return ports


class Torus3DTopology(_Grid3DTopology):
    """An ``X x Y x Z`` 3D torus (every dimension wraps).

    Every dimension must be >= 3 so wrap links never duplicate mesh
    links, matching :class:`~repro.topology.torus.TorusTopology`.
    Vertical links — including the z wrap — are TSVs.
    """

    def __init__(
        self,
        size_x: int,
        size_y: int,
        size_z: int,
        tsv_latency: int = 1,
        tsv_width: float = 1.0,
    ) -> None:
        if size_x < 3 or size_y < 3 or size_z < 3:
            raise TopologyError(
                f"torus3d dimensions must be >= 3 (wraparound links "
                f"would duplicate mesh links), got "
                f"{size_x}x{size_y}x{size_z}"
            )
        super().__init__(
            size_x,
            size_y,
            size_z,
            f"torus3d{size_x}x{size_y}x{size_z}",
            tsv_latency,
            tsv_width,
        )

    @classmethod
    def cube(
        cls, side: int, tsv_latency: int = 1, tsv_width: float = 1.0
    ) -> "Torus3DTopology":
        """The symmetric ``side x side x side`` torus."""
        return cls(side, side, side, tsv_latency, tsv_width)

    def out_ports(self, node: int) -> dict[str, int]:
        position = self.coordinates(node)
        sizes = self.sizes
        ports = {}
        for port, axis, step in _PORT_STEPS:
            moved = list(position)
            moved[axis] = (position[axis] + step) % sizes[axis]
            ports[port] = self.node_at(*moved)
        return ports

    def ring_distance(self, size: int, a: int, b: int) -> int:
        """Shortest wrap distance between coordinates on one dimension."""
        forward = (b - a) % size
        return min(forward, size - forward)
