"""The circulant-ring topology family C(N; 1, s).

A circulant ``C(N; 1, s)`` is a bidirectional ring of ``N`` nodes
augmented with *chord* links connecting each node ``i`` to
``(i + s) mod N`` and ``(i - s) mod N``.  The family interpolates
between the paper's two ring-based topologies:

* with no chord it degenerates to the **Ring**;
* with ``s = N/2`` the two chords coincide (``i + s == i - s`` mod N)
  and the result is exactly the **Spidergon** — same node degree 3,
  same ``across`` port name, same ``3N`` links;
* for ``2 <= s < N/2`` the degree is constant 4 and there are ``4N``
  unidirectional links.

Romanov et al. study this family as the natural question the source
paper stops short of: which chord length dominates the Spidergon's
diametral chord at equal cost (arXiv 1904.09495)?  The special case
``N = s^2`` is the two-dimensional *multiplicative circulant* of
arXiv 1902.03314, for which an analytic digit-decomposition routing
exists (:class:`repro.routing.circulant.MultiplicativeCirculantRouting`).

The chord links of one rotation sense partition the nodes into
``gcd(N, s)`` disjoint *chord cycles* (``i, i+s, i+2s, ...``), each of
length ``N / gcd(N, s)``.  Routing uses one dateline per chord cycle
for deadlock freedom (see docs/deadlock.md), so the cycle structure is
exposed here as first-class queries (:meth:`chord_cycle_min`,
:meth:`chord_cycle_length`).
"""

from __future__ import annotations

import math

from repro.topology.base import Topology, TopologyError
from repro.topology.ring import CLOCKWISE, COUNTERCLOCKWISE
from repro.topology.spidergon import ACROSS

#: Chord port advancing ``s`` positions clockwise (toward ``i + s``).
CHORD_CLOCKWISE = "chord-cw"
#: Chord port advancing ``s`` positions counterclockwise (``i - s``).
CHORD_COUNTERCLOCKWISE = "chord-ccw"


def minimal_decomposition(
    num_nodes: int, skip: int, offset: int
) -> tuple[int, int]:
    """Minimal (chords, steps) pair covering *offset* on ``C(N;1,s)``.

    Returns signed counts: positive = clockwise.  ``chords * skip +
    steps ≡ offset (mod N)`` and ``|chords| + |steps|`` equals the BFS
    shortest-path distance (any minimal route has an equivalent form
    with all chord hops of one sign and all unit steps of one sign —
    mixed signs cancel in pairs at cost 2 apiece).

    The search is deterministic: ties break toward fewer chord hops,
    then the clockwise chord, then the clockwise step — so every
    caller (table routing, analytic formulas, tests) sees the same
    canonical decomposition.  ``|chords|`` never reaches the chord
    cycle length ``N / gcd(N, s)`` (a full extra lap of a chord cycle
    is displacement zero), which is what bounds dateline crossings to
    one per packet (docs/deadlock.md).
    """
    offset %= num_nodes
    cycle = num_nodes // math.gcd(num_nodes, skip)
    best: tuple[tuple, int, int] | None = None
    for chords in range(-(cycle - 1), cycle):
        remainder = (offset - chords * skip) % num_nodes
        if remainder <= num_nodes - remainder:
            steps = remainder
        else:
            steps = remainder - num_nodes
        cost = abs(chords) + abs(steps)
        key = (cost, abs(chords), chords < 0, steps < 0)
        if best is None or key < best[0]:
            best = (key, chords, steps)
    assert best is not None
    return best[1], best[2]


class CirculantTopology(Topology):
    """Circulant ring ``C(N; 1, s)`` over *num_nodes* nodes.

    Port names are ``"cw"``, ``"ccw"`` and — for ``s < N/2`` —
    ``"chord-cw"`` / ``"chord-ccw"``; the diametral case ``s = N/2``
    exposes the single self-inverse chord as ``"across"``, matching
    the Spidergon.

    The chord length is canonical: ``2 <= skip <= N // 2``.  Specs
    like ``C(16; 1, 12)`` describe the same graph as ``C(16; 1, 4)``;
    requiring the canonical form keeps topology names (and with them
    campaign cache keys) unambiguous.
    """

    def __init__(self, num_nodes: int, skip: int) -> None:
        if num_nodes < 4:
            raise TopologyError(
                f"a circulant needs at least 4 nodes, got {num_nodes}"
            )
        if not 2 <= skip <= num_nodes // 2:
            raise TopologyError(
                f"circulant skip must be in [2, N//2] = "
                f"[2, {num_nodes // 2}], got {skip} "
                f"(C(N; 1, s) and C(N; 1, N-s) are the same graph; "
                f"use the canonical s <= N/2)"
            )
        super().__init__(num_nodes, f"circulant{num_nodes}s{skip}")
        self.skip = skip
        #: True when the chord is its own inverse (``2s == N``): the
        #: Spidergon case, degree 3 instead of 4.
        self.has_diametral_chord = 2 * skip == num_nodes

    @classmethod
    def multiplicative(cls, base: int) -> "CirculantTopology":
        """The multiplicative circulant ``C(base^2; 1, base)``.

        The two-generator member of the arXiv 1902.03314 family
        ``C(s^k; 1, s, ..., s^(k-1))``, for which the analytic
        digit-decomposition routing applies.

        Raises:
            TopologyError: if *base* < 2.
        """
        if base < 2:
            raise TopologyError(
                f"multiplicative circulant base must be >= 2, got {base}"
            )
        return cls(base * base, base)

    @property
    def is_multiplicative(self) -> bool:
        """True when ``N == s^2`` (the arXiv 1902.03314 special case)."""
        return self.skip * self.skip == self.num_nodes

    def out_ports(self, node: int) -> dict[str, int]:
        self.check_node(node)
        ports = {
            CLOCKWISE: (node + 1) % self.num_nodes,
            COUNTERCLOCKWISE: (node - 1) % self.num_nodes,
        }
        if self.has_diametral_chord:
            ports[ACROSS] = (node + self.skip) % self.num_nodes
        else:
            ports[CHORD_CLOCKWISE] = (node + self.skip) % self.num_nodes
            ports[CHORD_COUNTERCLOCKWISE] = (
                node - self.skip
            ) % self.num_nodes
        return ports

    def chord_port(self, direction: int) -> str:
        """Chord port name for rotation sense *direction* (+1 / -1)."""
        if self.has_diametral_chord:
            return ACROSS
        return CHORD_CLOCKWISE if direction > 0 else CHORD_COUNTERCLOCKWISE

    def ring_distance(self, src: int, dst: int) -> int:
        """Distance between *src* and *dst* on the external ring only."""
        self.check_node(src)
        self.check_node(dst)
        clockwise = (dst - src) % self.num_nodes
        return min(clockwise, self.num_nodes - clockwise)

    # -- chord cycle structure ----------------------------------------

    def chord_cycle_length(self) -> int:
        """Length of every chord cycle: ``N / gcd(N, s)``."""
        return self.num_nodes // math.gcd(self.num_nodes, self.skip)

    def chord_cycle_nodes(self, node: int) -> tuple[int, ...]:
        """The chord cycle through *node*, in ``+s`` traversal order."""
        self.check_node(node)
        nodes = [node]
        current = (node + self.skip) % self.num_nodes
        while current != node:
            nodes.append(current)
            current = (current + self.skip) % self.num_nodes
        return tuple(nodes)

    def chord_cycle_min(self, node: int) -> int:
        """Smallest node id on the chord cycle through *node*.

        The ``chord-cw`` hop *into* this node is its cycle's dateline
        (the unique traversal-order-decreasing edge).
        """
        return min(self.chord_cycle_nodes(node))

    def chord_cycle_max(self, node: int) -> int:
        """Largest node id on the chord cycle through *node*.

        The ``chord-ccw`` dateline, mirroring :meth:`chord_cycle_min`.
        """
        return max(self.chord_cycle_nodes(node))

    # -- analytic distances -------------------------------------------

    def analytic_distance(self, src: int, dst: int) -> int:
        """Shortest-path hops via the number-theoretic decomposition.

        Equals the BFS distance (property-tested in
        ``tests/topology/test_circulant.py``) without touching the
        graph: ``min |a| + |b|`` over ``a*s + b ≡ dst - src (mod N)``.
        """
        self.check_node(src)
        self.check_node(dst)
        chords, steps = minimal_decomposition(
            self.num_nodes, self.skip, dst - src
        )
        return abs(chords) + abs(steps)
