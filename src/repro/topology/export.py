"""Topology export: Graphviz DOT and adjacency listings.

No plotting stack is assumed — the DOT text can be rendered elsewhere
(``dot -Tsvg``), and :func:`to_adjacency_text` gives a greppable
plain-text form used in docs and debugging sessions.

Links with non-default attributes (latency != 1, width != 1 or a
non-planar kind) carry them in both formats; uniform topologies
render exactly as before the heterogeneous-link model.
"""

from __future__ import annotations

from repro.topology.base import DEFAULT_LINK_ATTRS, Link, Topology
from repro.topology.mesh import MeshTopology


def _attr_note(link: Link) -> str:
    """Compact attribute annotation, empty for a default link."""
    if link.attrs == DEFAULT_LINK_ATTRS:
        return ""
    parts = [link.kind]
    if link.latency != 1:
        parts.append(f"lat={link.latency}")
    if link.width != 1.0:
        parts.append(f"w={link.width:g}")
    return " ".join(parts)


def to_dot(topology: Topology, name: str | None = None) -> str:
    """Graphviz DOT for *topology*.

    Paired unidirectional links are emitted as one undirected edge
    labelled with the forward port name (plus the link's attributes
    when non-default — TSVs additionally render dashed); meshes and
    3D grids get grid positions so ``neato -n`` reproduces the
    floorplan, with 3D layers laid out side by side.
    """
    from repro.topology.mesh3d import Mesh3DTopology, Torus3DTopology

    graph_name = (name or topology.name).replace("-", "_")
    lines = [f"graph {graph_name} {{"]
    lines.append("  node [shape=circle];")
    if isinstance(topology, MeshTopology):
        for node in range(topology.num_nodes):
            row, col = topology.coordinates(node)
            lines.append(
                f'  n{node} [label="{node}", pos="{col},{-row}!"];'
            )
    elif isinstance(topology, (Mesh3DTopology, Torus3DTopology)):
        for node in range(topology.num_nodes):
            x, y, z = topology.coordinates(node)
            lines.append(
                f'  n{node} [label="{node}", '
                f'pos="{x + z * (topology.size_x + 1)},{-y}!"];'
            )
    else:
        for node in range(topology.num_nodes):
            lines.append(f'  n{node} [label="{node}"];')
    seen = set()
    for link in topology.links():
        key = frozenset((link.src, link.dst))
        if key in seen:
            continue
        seen.add(key)
        note = _attr_note(link)
        label = f"{link.port} [{note}]" if note else link.port
        style = ', style=dashed' if link.kind == "tsv" else ""
        lines.append(
            f'  n{link.src} -- n{link.dst} [label="{label}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_adjacency_text(topology: Topology) -> str:
    """One line per node: ``node: port->neighbor ...``.

    Non-default link attributes follow the neighbor in parentheses,
    e.g. ``up->20 (tsv lat=2)``.
    """
    lines = [f"# {topology.name}: {topology.num_nodes} nodes, "
             f"{topology.num_links} links"]
    for node in range(topology.num_nodes):
        parts = []
        for port in sorted(topology.out_ports(node)):
            link = topology.link(node, port)
            note = _attr_note(link)
            suffix = f" ({note})" if note else ""
            parts.append(f"{port}->{link.dst}{suffix}")
        lines.append(f"{node}: {' '.join(parts)}")
    return "\n".join(lines) + "\n"
