"""Topology export: Graphviz DOT and adjacency listings.

No plotting stack is assumed — the DOT text can be rendered elsewhere
(``dot -Tsvg``), and :func:`to_adjacency_text` gives a greppable
plain-text form used in docs and debugging sessions.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.topology.mesh import MeshTopology


def to_dot(topology: Topology, name: str | None = None) -> str:
    """Graphviz DOT for *topology*.

    Paired unidirectional links are emitted as one undirected edge
    labelled with the forward port name; meshes get grid positions so
    ``neato -n`` reproduces the floorplan.
    """
    graph_name = (name or topology.name).replace("-", "_")
    lines = [f"graph {graph_name} {{"]
    lines.append("  node [shape=circle];")
    if isinstance(topology, MeshTopology):
        for node in range(topology.num_nodes):
            row, col = topology.coordinates(node)
            lines.append(
                f'  n{node} [label="{node}", pos="{col},{-row}!"];'
            )
    else:
        for node in range(topology.num_nodes):
            lines.append(f'  n{node} [label="{node}"];')
    seen = set()
    for link in topology.links():
        key = frozenset((link.src, link.dst))
        if key in seen:
            continue
        seen.add(key)
        lines.append(
            f'  n{link.src} -- n{link.dst} [label="{link.port}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_adjacency_text(topology: Topology) -> str:
    """One line per node: ``node: port->neighbor ...``."""
    lines = [f"# {topology.name}: {topology.num_nodes} nodes, "
             f"{topology.num_links} links"]
    for node in range(topology.num_nodes):
        ports = topology.out_ports(node)
        parts = " ".join(
            f"{port}->{dst}" for port, dst in sorted(ports.items())
        )
        lines.append(f"{node}: {parts}")
    return "\n".join(lines) + "\n"
