"""Exact graph-based topology metrics.

These BFS-based computations are the ground truth against which the
paper's closed-form expressions (:mod:`repro.analysis.formulas`) are
checked.  The paper's E[D] convention divides the distance sum by N
(including the zero self-distance), so :func:`average_distance` follows
the same convention; :func:`average_distance` with
``include_self=False`` gives the textbook mean over distinct pairs.
"""

from __future__ import annotations

from collections import Counter

from repro.topology.base import Topology


def all_pairs_distances(topology: Topology) -> list[list[int]]:
    """Matrix ``d[u][v]`` of hop distances (BFS from every node)."""
    graph = topology.to_graph()
    return [graph.bfs_distances(node) for node in range(topology.num_nodes)]


def per_node_distance_sum(topology: Topology, node: int) -> int:
    """Sum of hop distances from *node* to every node (self included).

    Raises:
        ValueError: if any node is unreachable.
    """
    distances = topology.to_graph().bfs_distances(node)
    if any(d == -1 for d in distances):
        raise ValueError(f"{topology.name}: disconnected from node {node}")
    return sum(distances)


def diameter(topology: Topology) -> int:
    """Maximum shortest-path length over all node pairs (paper's ND)."""
    worst = 0
    for row in all_pairs_distances(topology):
        if any(d == -1 for d in row):
            raise ValueError(f"{topology.name}: network is disconnected")
        worst = max(worst, max(row))
    return worst


def average_distance(
    topology: Topology, include_self: bool = True
) -> float:
    """Mean shortest-path length over all ordered pairs (paper's E[D]).

    Args:
        include_self: With True (the paper's convention) the N zero
            self-distances participate in the denominator; with False
            the mean is over the ``N*(N-1)`` distinct ordered pairs.
    """
    total = 0
    n = topology.num_nodes
    for row in all_pairs_distances(topology):
        if any(d == -1 for d in row):
            raise ValueError(f"{topology.name}: network is disconnected")
        total += sum(row)
    pairs = n * n if include_self else n * (n - 1)
    return total / pairs


def distance_histogram(topology: Topology) -> dict[int, int]:
    """Count of ordered node pairs at each positive hop distance."""
    counts: Counter[int] = Counter()
    for row in all_pairs_distances(topology):
        for d in row:
            if d > 0:
                counts[d] += 1
    return dict(sorted(counts.items()))
