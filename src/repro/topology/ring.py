"""The Ring topology (paper figure 1.b).

Every node ``i`` has a clockwise link to ``(i+1) mod N`` and a
counterclockwise link to ``(i-1) mod N``; degree is constant 2 and the
number of unidirectional links is ``2N``.
"""

from __future__ import annotations

from repro.topology.base import Topology, TopologyError

CLOCKWISE = "cw"
COUNTERCLOCKWISE = "ccw"


class RingTopology(Topology):
    """Bidirectional ring of *num_nodes* nodes.

    Port names are ``"cw"`` (toward ``i+1``) and ``"ccw"``
    (toward ``i-1``).
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 3:
            raise TopologyError(
                f"a ring needs at least 3 nodes, got {num_nodes}"
            )
        super().__init__(num_nodes, f"ring{num_nodes}")

    def out_ports(self, node: int) -> dict[str, int]:
        self.check_node(node)
        return {
            CLOCKWISE: (node + 1) % self.num_nodes,
            COUNTERCLOCKWISE: (node - 1) % self.num_nodes,
        }

    def ring_distance(self, src: int, dst: int) -> int:
        """Shortest hop distance between *src* and *dst* on the ring."""
        self.check_node(src)
        self.check_node(dst)
        clockwise = (dst - src) % self.num_nodes
        return min(clockwise, self.num_nodes - clockwise)

    def clockwise_distance(self, src: int, dst: int) -> int:
        """Hops from *src* to *dst* travelling clockwise only."""
        self.check_node(src)
        self.check_node(dst)
        return (dst - src) % self.num_nodes
