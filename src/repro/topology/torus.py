"""2D Torus topology — extension beyond the paper.

The paper's future work lists "additional NoC topologies".  The torus
(a mesh with wraparound links) is the natural next candidate: it keeps
the mesh's constant degree-4 routers and restores the vertex symmetry
the paper prizes in the Spidergon, at the cost of long wrap links.

Both dimensions wrap, so every node has exactly four neighbors and
an ``m x n`` torus has ``4mn`` unidirectional links.
"""

from __future__ import annotations

from repro.topology.base import Topology, TopologyError
from repro.topology.mesh import EAST, NORTH, SOUTH, WEST


class TorusTopology(Topology):
    """An ``rows x cols`` 2D torus, both dimensions >= 3.

    Nodes are numbered row-major; port names match the mesh
    (``north``/``south``/``east``/``west``) with wraparound at the
    edges.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 3 or cols < 3:
            raise TopologyError(
                f"torus dimensions must be >= 3 (wraparound links "
                f"would duplicate mesh links), got {rows}x{cols}"
            )
        super().__init__(rows * cols, f"torus{rows}x{cols}")
        self.rows = rows
        self.cols = cols

    def coordinates(self, node: int) -> tuple[int, int]:
        """Grid cell ``(row, col)`` of *node*."""
        self.check_node(node)
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        """Node id at (row, col), coordinates taken modulo the size."""
        return (row % self.rows) * self.cols + (col % self.cols)

    def out_ports(self, node: int) -> dict[str, int]:
        row, col = self.coordinates(node)
        return {
            NORTH: self.node_at(row - 1, col),
            SOUTH: self.node_at(row + 1, col),
            EAST: self.node_at(row, col + 1),
            WEST: self.node_at(row, col - 1),
        }

    def ring_distance(self, size: int, a: int, b: int) -> int:
        """Shortest wrap distance between coordinates on one dimension."""
        forward = (b - a) % size
        return min(forward, size - forward)
