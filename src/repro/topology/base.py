"""Topology base class and the directed-link abstraction.

A topology describes the static wiring of the NoC: which nodes exist,
which unidirectional links connect them, and the *output-port names*
routers use to refer to those links (``"cw"``, ``"across"``, ``"east"``
...).  The flit-level model in :mod:`repro.noc` builds one router per
node and one channel per directed link from this description, and the
routing algorithms in :mod:`repro.routing` return port names chosen
from the same namespace.

Links are *attribute carriers*, not bare triples: every link has a
latency (cycles), a width (relative to the standard planar channel)
and a kind (``"planar"``, ``"tsv"``...).  The topology owns link
timing through the overridable :meth:`Topology.link_attrs` hook —
uniform one-cycle links by default, so the paper's three
architectures need nothing — and :meth:`Network.build
<repro.noc.network.Network>` consumes the per-link latency, scaled by
``config.link_delay`` as a global multiplier.  Heterogeneous families
(the 3D mesh/torus with through-silicon-via vertical links) override
the hook instead of faking non-uniform timing with the global knob.

Following the paper, channels are unidirectional pairs: every physical
connection contributes two directed links, so a Ring has ``2N`` links,
a Spidergon ``3N`` and an ``m*n`` mesh ``2(m-1)n + 2(n-1)m``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.topology.graph import Graph


class TopologyError(ValueError):
    """Raised on invalid topology parameters (odd Spidergon size...)."""


#: Link kind of ordinary in-plane wiring.
PLANAR = "planar"
#: Link kind of vertical through-silicon-via connections (3D stacks).
TSV = "tsv"


@dataclass(frozen=True, slots=True)
class LinkAttrs:
    """Physical attributes of one directed link.

    Attributes:
        latency: Traversal time in cycles (>= 1).  The network builder
            multiplies it by the global ``config.link_delay`` knob.
        width: Channel width relative to a standard planar link
            (> 0).  Purely a cost-model input today — the flit-level
            model moves one flit per link per cycle regardless.
        kind: Link technology tag, e.g. ``"planar"`` or ``"tsv"``;
            free-form, surfaced in exports, traces and cost models.
    """

    latency: int = 1
    width: float = 1.0
    kind: str = PLANAR

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise TopologyError(
                f"link latency must be >= 1, got {self.latency}"
            )
        if not self.width > 0:
            raise TopologyError(
                f"link width must be > 0, got {self.width}"
            )


#: The uniform one-cycle link every paper topology uses.
DEFAULT_LINK_ATTRS = LinkAttrs()


@dataclass(frozen=True, slots=True)
class Link:
    """A unidirectional link ``src -> dst`` leaving *src* via *port*.

    Carries its physical attributes inline (defaulting to the uniform
    one-cycle planar link), so consumers — the network builder, wire
    cost models, graph exports — never re-derive them.
    """

    src: int
    dst: int
    port: str
    latency: int = 1
    width: float = 1.0
    kind: str = PLANAR

    @property
    def attrs(self) -> LinkAttrs:
        """The link's attributes as a standalone :class:`LinkAttrs`."""
        return LinkAttrs(self.latency, self.width, self.kind)

    @property
    def is_uniform(self) -> bool:
        """True when the link *behaves* like the default one-cycle
        full-width channel the paper assumes everywhere.

        ``kind`` is an advisory technology tag and deliberately not
        part of the predicate: a latency-1 full-width TSV is
        indistinguishable from a planar link to the flit model and
        must not, e.g., trigger the mixed-timing deprecation warning.
        """
        return self.latency == 1 and self.width == 1.0


class Topology(ABC):
    """Abstract base for NoC topologies.

    Subclasses implement :meth:`out_ports`; everything else is derived.
    Node ids are ``0 .. num_nodes-1``.
    """

    def __init__(self, num_nodes: int, name: str) -> None:
        if num_nodes < 2:
            raise TopologyError(
                f"a NoC needs at least 2 nodes, got {num_nodes}"
            )
        self.num_nodes = num_nodes
        self.name = name

    @abstractmethod
    def out_ports(self, node: int) -> dict[str, int]:
        """Map each output-port name of *node* to the neighbor node."""

    # -- link attributes ----------------------------------------------

    def link_attrs(self, src: int, port: str) -> LinkAttrs:
        """Physical attributes of the link leaving *src* via *port*.

        The topology is the single owner of link timing: subclasses
        with heterogeneous links (e.g. TSV vertical hops in a 3D
        stack) override this hook, and every consumer — the network
        builder, wire-cost models, exports, observers — reads through
        it.  The default is the paper's uniform one-cycle planar link.
        """
        return DEFAULT_LINK_ATTRS

    @property
    def is_uniform(self) -> bool:
        """True when every link behaves like the default channel
        (latency 1, full width; see :attr:`Link.is_uniform`)."""
        return all(link.is_uniform for link in self.links())

    def link(self, src: int, port: str) -> Link:
        """The full :class:`Link` leaving *src* via *port*.

        Raises:
            TopologyError: if *src* has no such port.
        """
        dst = self.out_ports(src).get(port)
        if dst is None:
            raise TopologyError(
                f"{self.name}: node {src} has no port {port!r}"
            )
        attrs = self.link_attrs(src, port)
        return Link(
            src, dst, port, attrs.latency, attrs.width, attrs.kind
        )

    # -- derived structure --------------------------------------------

    def check_node(self, node: int) -> None:
        """Raise :class:`TopologyError` if *node* is out of range."""
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node {node} out of range [0, {self.num_nodes})"
            )

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Neighbor node ids of *node*, in port-definition order."""
        return tuple(self.out_ports(node).values())

    def degree(self, node: int) -> int:
        """Number of outgoing links of *node* (excluding the local port)."""
        return len(self.out_ports(node))

    def port_to(self, node: int, neighbor: int) -> str:
        """Name of the output port of *node* that reaches *neighbor*.

        Raises:
            TopologyError: if the nodes are not adjacent.
        """
        for port, dst in self.out_ports(node).items():
            if dst == neighbor:
                return port
        raise TopologyError(
            f"{self.name}: nodes {node} and {neighbor} are not adjacent"
        )

    def links(self) -> list[Link]:
        """Every directed link, ordered by source node then port name,
        carrying the attributes :meth:`link_attrs` assigns."""
        result = []
        for node in range(self.num_nodes):
            ports = self.out_ports(node)
            for port in sorted(ports):
                attrs = self.link_attrs(node, port)
                result.append(
                    Link(
                        node,
                        ports[port],
                        port,
                        attrs.latency,
                        attrs.width,
                        attrs.kind,
                    )
                )
        return result

    @property
    def num_links(self) -> int:
        """Total number of unidirectional links."""
        return sum(
            len(self.out_ports(node)) for node in range(self.num_nodes)
        )

    def to_graph(self) -> Graph:
        """Directed :class:`Graph` over the same nodes and links."""
        graph = Graph(self.num_nodes)
        for link in self.links():
            graph.add_edge(link.src, link.dst)
        return graph

    def validate(self) -> None:
        """Check structural invariants shared by all paper topologies.

        * every link's reverse link exists (channels come in pairs),
        * the network is connected,
        * no port maps a node to itself.

        Raises:
            TopologyError: on any violation.
        """
        for link in self.links():
            if link.src == link.dst:
                raise TopologyError(
                    f"{self.name}: node {link.src} links to itself"
                )
        graph = self.to_graph()
        for link in self.links():
            if not graph.has_edge(link.dst, link.src):
                raise TopologyError(
                    f"{self.name}: link {link.src}->{link.dst} has no "
                    "reverse link"
                )
        if not graph.is_strongly_connected():
            raise TopologyError(f"{self.name}: network is not connected")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_nodes={self.num_nodes})"
