"""Topology base class and the directed-link abstraction.

A topology describes the static wiring of the NoC: which nodes exist,
which unidirectional links connect them, and the *output-port names*
routers use to refer to those links (``"cw"``, ``"across"``, ``"east"``
...).  The flit-level model in :mod:`repro.noc` builds one router per
node and one channel per directed link from this description, and the
routing algorithms in :mod:`repro.routing` return port names chosen
from the same namespace.

Following the paper, channels are unidirectional pairs: every physical
connection contributes two directed links, so a Ring has ``2N`` links,
a Spidergon ``3N`` and an ``m*n`` mesh ``2(m-1)n + 2(n-1)m``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.topology.graph import Graph


class TopologyError(ValueError):
    """Raised on invalid topology parameters (odd Spidergon size...)."""


@dataclass(frozen=True, slots=True)
class Link:
    """A unidirectional link ``src -> dst`` leaving *src* via *port*."""

    src: int
    dst: int
    port: str


class Topology(ABC):
    """Abstract base for NoC topologies.

    Subclasses implement :meth:`out_ports`; everything else is derived.
    Node ids are ``0 .. num_nodes-1``.
    """

    def __init__(self, num_nodes: int, name: str) -> None:
        if num_nodes < 2:
            raise TopologyError(
                f"a NoC needs at least 2 nodes, got {num_nodes}"
            )
        self.num_nodes = num_nodes
        self.name = name

    @abstractmethod
    def out_ports(self, node: int) -> dict[str, int]:
        """Map each output-port name of *node* to the neighbor node."""

    # -- derived structure --------------------------------------------

    def check_node(self, node: int) -> None:
        """Raise :class:`TopologyError` if *node* is out of range."""
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node {node} out of range [0, {self.num_nodes})"
            )

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Neighbor node ids of *node*, in port-definition order."""
        return tuple(self.out_ports(node).values())

    def degree(self, node: int) -> int:
        """Number of outgoing links of *node* (excluding the local port)."""
        return len(self.out_ports(node))

    def port_to(self, node: int, neighbor: int) -> str:
        """Name of the output port of *node* that reaches *neighbor*.

        Raises:
            TopologyError: if the nodes are not adjacent.
        """
        for port, dst in self.out_ports(node).items():
            if dst == neighbor:
                return port
        raise TopologyError(
            f"{self.name}: nodes {node} and {neighbor} are not adjacent"
        )

    def links(self) -> list[Link]:
        """Every directed link, ordered by source node then port name."""
        result = []
        for node in range(self.num_nodes):
            ports = self.out_ports(node)
            for port in sorted(ports):
                result.append(Link(node, ports[port], port))
        return result

    @property
    def num_links(self) -> int:
        """Total number of unidirectional links."""
        return sum(
            len(self.out_ports(node)) for node in range(self.num_nodes)
        )

    def to_graph(self) -> Graph:
        """Directed :class:`Graph` over the same nodes and links."""
        graph = Graph(self.num_nodes)
        for link in self.links():
            graph.add_edge(link.src, link.dst)
        return graph

    def validate(self) -> None:
        """Check structural invariants shared by all paper topologies.

        * every link's reverse link exists (channels come in pairs),
        * the network is connected,
        * no port maps a node to itself.

        Raises:
            TopologyError: on any violation.
        """
        for link in self.links():
            if link.src == link.dst:
                raise TopologyError(
                    f"{self.name}: node {link.src} links to itself"
                )
        graph = self.to_graph()
        for link in self.links():
            if not graph.has_edge(link.dst, link.src):
                raise TopologyError(
                    f"{self.name}: link {link.src}->{link.dst} has no "
                    "reverse link"
                )
        if not graph.is_strongly_connected():
            raise TopologyError(f"{self.name}: network is not connected")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_nodes={self.num_nodes})"
