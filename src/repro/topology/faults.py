"""Link-fault injection: degraded topologies.

Manufacturing defects and wear-out leave SoC interconnects with dead
links; the irregular-mesh motivation of the paper ("regular meshes
cannot be always assumed") extends naturally to *regular topologies
minus faulty links*.  :class:`FaultyTopology` wraps any base topology
and removes chosen bidirectional links; table-driven routing
(:class:`~repro.routing.table.TableRouting`, the automatic fallback of
``routing_for``) then routes around the damage as long as the network
stays connected.

The specialised algorithms (XY, across-first...) assume intact
structure and must not be used on a faulty topology — ``routing_for``
handles this automatically because :class:`FaultyTopology` is its own
type.
"""

from __future__ import annotations

from repro.sim.rng import RngStream
from repro.topology.base import Topology, TopologyError


def _normalise(pair: tuple[int, int]) -> tuple[int, int]:
    a, b = pair
    return (a, b) if a <= b else (b, a)


class FaultyTopology(Topology):
    """A base topology with a set of failed bidirectional links."""

    def __init__(
        self,
        base: Topology,
        failed_links: list[tuple[int, int]],
    ) -> None:
        failed = {_normalise(pair) for pair in failed_links}
        for a, b in failed:
            base.check_node(a)
            base.check_node(b)
            if b not in base.neighbors(a):
                raise TopologyError(
                    f"cannot fail non-existent link {a}<->{b} of "
                    f"{base.name}"
                )
        super().__init__(
            base.num_nodes, f"{base.name}-faulty{len(failed)}"
        )
        self.base = base
        self.failed_links = frozenset(failed)
        # A degraded network is only usable if it stays connected.
        if not self.to_graph().is_strongly_connected():
            raise TopologyError(
                f"{self.name}: failing {sorted(failed)} disconnects "
                "the network"
            )

    @classmethod
    def with_random_faults(
        cls, base: Topology, count: int, seed: int = 0
    ) -> "FaultyTopology":
        """Fail *count* random links, retrying picks that would
        disconnect the network.

        Raises:
            TopologyError: if no connected configuration is found in
                a bounded number of attempts.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        rng = RngStream(seed, f"faults:{base.name}:{count}")
        candidates = sorted(
            {
                _normalise((link.src, link.dst))
                for link in base.links()
            }
        )
        if count > len(candidates):
            raise TopologyError(
                f"{base.name} has only {len(candidates)} links; "
                f"cannot fail {count}"
            )
        for _ in range(200):
            picks = list(candidates)
            rng.shuffle(picks)
            try:
                return cls(base, picks[:count])
            except TopologyError:
                continue
        raise TopologyError(
            f"no connected configuration with {count} failed links "
            f"found for {base.name}"
        )

    def out_ports(self, node: int) -> dict[str, int]:
        return {
            port: dst
            for port, dst in self.base.out_ports(node).items()
            if _normalise((node, dst)) not in self.failed_links
        }

    def link_attrs(self, src: int, port: str):
        # Surviving links keep the base topology's physical
        # attributes (a fault removes wires, it does not retime them).
        return self.base.link_attrs(src, port)
