"""2D Mesh topologies (paper figure 1.c), regular and irregular.

The paper distinguishes three mesh notions:

* the **ideal** mesh ``sqrt(N) x sqrt(N)``, only defined when N is a
  perfect square;
* the **real** mesh for arbitrary N, obtained by the best balanced
  factorization ``m * n = N`` — for awkward N (e.g. ``N = 2p`` with p
  prime) this degenerates toward a ``2 x N/2`` strip whose diameter
  approaches the Ring's, which is exactly the fluctuation figure 2
  shows;
* the **irregular** mesh: a partially filled bounding grid (the last
  row holds fewer cells), which is the paper's "realistic topologies"
  motivation — regular meshes cannot always be assumed.

All three are instances of :class:`MeshTopology`, which models an
arbitrary subset of grid cells numbered row-major.
"""

from __future__ import annotations

import math

from repro.topology.base import Topology, TopologyError

NORTH = "north"
SOUTH = "south"
EAST = "east"
WEST = "west"


def best_factorization(num_nodes: int) -> tuple[int, int]:
    """Most balanced pair ``(rows, cols)`` with ``rows*cols == num_nodes``.

    ``rows <= cols`` and ``rows`` is the largest divisor of *num_nodes*
    not exceeding ``sqrt(num_nodes)``.  For prime N this is ``(1, N)``.
    """
    if num_nodes < 1:
        raise TopologyError(f"num_nodes must be >= 1, got {num_nodes}")
    rows = 1
    for candidate in range(1, int(math.isqrt(num_nodes)) + 1):
        if num_nodes % candidate == 0:
            rows = candidate
    return rows, num_nodes // rows


class MeshTopology(Topology):
    """A 2D mesh over an arbitrary subset of an ``rows x cols`` grid.

    Port names are ``"north"`` (row-1), ``"south"`` (row+1),
    ``"east"`` (col+1) and ``"west"`` (col-1); a port exists only when
    the neighboring cell is present.  Nodes are numbered row-major over
    the present cells, matching the paper's figure 1.c numbering for
    full grids.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        cells: list[tuple[int, int]] | None = None,
    ) -> None:
        if rows < 1 or cols < 1:
            raise TopologyError(
                f"mesh dimensions must be >= 1, got {rows}x{cols}"
            )
        if cells is None:
            cells = [(r, c) for r in range(rows) for c in range(cols)]
        else:
            cells = sorted(set(cells))
            for row, col in cells:
                if not (0 <= row < rows and 0 <= col < cols):
                    raise TopologyError(
                        f"cell ({row}, {col}) outside {rows}x{cols} grid"
                    )
        if rows * cols == len(cells):
            name = f"mesh{rows}x{cols}"
        else:
            name = f"mesh{rows}x{cols}-irregular{len(cells)}"
        super().__init__(len(cells), name)
        self.rows = rows
        self.cols = cols
        self._cells = cells
        self._node_of = {cell: node for node, cell in enumerate(cells)}

    # -- constructors ---------------------------------------------------

    @classmethod
    def ideal(cls, num_nodes: int) -> "MeshTopology":
        """Square ``sqrt(N) x sqrt(N)`` mesh.

        Raises:
            TopologyError: if *num_nodes* is not a perfect square.
        """
        side = math.isqrt(num_nodes)
        if side * side != num_nodes:
            raise TopologyError(
                f"ideal mesh needs a perfect square, got {num_nodes}"
            )
        return cls(side, side)

    @classmethod
    def factorized(cls, num_nodes: int) -> "MeshTopology":
        """The paper's "real" mesh: best balanced ``m x n = N`` grid."""
        rows, cols = best_factorization(num_nodes)
        if rows == 1 and num_nodes > 1:
            # A 1 x N strip: still a valid (degenerate) mesh.
            return cls(1, cols)
        return cls(rows, cols)

    @classmethod
    def irregular(cls, num_nodes: int) -> "MeshTopology":
        """Partially filled near-square grid holding *num_nodes* cells.

        Uses ``cols = ceil(sqrt(N))`` columns, fills rows top to
        bottom; the last row may be partial.  Connectivity is
        guaranteed because every cell in a partial row has its north
        neighbor present.
        """
        if num_nodes < 2:
            raise TopologyError(
                f"irregular mesh needs >= 2 nodes, got {num_nodes}"
            )
        cols = math.isqrt(num_nodes)
        if cols * cols != num_nodes:
            cols += 1
        rows = (num_nodes + cols - 1) // cols
        cells = []
        remaining = num_nodes
        for row in range(rows):
            for col in range(min(cols, remaining)):
                cells.append((row, col))
            remaining -= min(cols, remaining)
        return cls(rows, cols, cells)

    # -- structure ------------------------------------------------------

    @property
    def is_regular(self) -> bool:
        """True when every cell of the bounding grid is present."""
        return self.num_nodes == self.rows * self.cols

    def coordinates(self, node: int) -> tuple[int, int]:
        """Grid cell ``(row, col)`` of *node*."""
        self.check_node(node)
        return self._cells[node]

    def node_at(self, row: int, col: int) -> int:
        """Node id at cell ``(row, col)``.

        Raises:
            TopologyError: if the cell is absent.
        """
        node = self._node_of.get((row, col))
        if node is None:
            raise TopologyError(
                f"{self.name}: no node at cell ({row}, {col})"
            )
        return node

    def has_cell(self, row: int, col: int) -> bool:
        return (row, col) in self._node_of

    def out_ports(self, node: int) -> dict[str, int]:
        row, col = self.coordinates(node)
        ports = {}
        for port, (dr, dc) in (
            (NORTH, (-1, 0)),
            (SOUTH, (1, 0)),
            (EAST, (0, 1)),
            (WEST, (0, -1)),
        ):
            neighbor = self._node_of.get((row + dr, col + dc))
            if neighbor is not None:
                ports[port] = neighbor
        return ports

    def center_node(self) -> int:
        """Node closest to the grid center (paper's "middle" target)."""
        mid_row = (self.rows - 1) / 2
        mid_col = (self.cols - 1) / 2
        return min(
            range(self.num_nodes),
            key=lambda n: (
                abs(self._cells[n][0] - mid_row)
                + abs(self._cells[n][1] - mid_col),
                n,
            ),
        )
